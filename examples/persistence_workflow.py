#!/usr/bin/env python3
"""Encode once, persist, reopen, query — the storage lifecycle.

A library a downstream user adopts needs persistence: this example
encodes an XMark-like document, materialises its element sets, saves a
disk image, then reopens the image in a *fresh* process state and runs
containment joins against it (no XML, no re-encoding — pure storage
engine work, CRC-verified pages).
"""

import os
import tempfile

from repro import BufferManager, DiskManager, ElementSet, JoinSink, binarize
from repro.join.pipeline import PathPipeline
from repro.join.stacktree import StackTreeDescJoin
from repro.storage.persist import load_image, save_image
from repro.workloads import xmark

TAGS = ["item", "description", "parlist", "listitem", "text",
        "open_auction", "bidder", "increase"]


def build_and_save(path: str) -> None:
    tree = xmark.generate_tree(scale=0.3, seed=21)
    encoding = binarize(tree)
    disk = DiskManager(page_size=1024)
    bufmgr = BufferManager(disk, 64)
    element_sets = {}
    for tag in TAGS:
        element_sets[tag] = ElementSet.from_tree_tag(
            bufmgr, tree, tag, encoding.tree_height, name=tag
        )
    bufmgr.flush_all()
    save_image(disk, path, element_sets)
    size_kib = os.path.getsize(path) / 1024
    print(
        f"saved {len(element_sets)} element sets "
        f"({sum(len(s) for s in element_sets.values()):,} elements, "
        f"{disk.num_allocated} pages, {size_kib:.0f} KiB image)"
    )


def reopen_and_query(path: str) -> None:
    image = load_image(path, buffer_pages=32)
    print(f"\nreopened: {sorted(image.element_sets)}")

    # single join straight off the image
    items = image.element_sets["item"]
    listitems = image.element_sets["listitem"]
    sink = JoinSink("count")
    report = StackTreeDescJoin().run(items, listitems, sink)
    print(
        f"//item <| //listitem: {sink.count:,} pairs "
        f"({report.total_pages} page I/Os, sort charged: "
        f"{report.prep_io.total})"
    )

    # a planned multi-step pipeline
    steps = [image.element_sets[tag] for tag in
             ("open_auction", "bidder", "increase")]
    result = PathPipeline(image.bufmgr).execute(steps)
    print(
        f"//open_auction//bidder//increase: {len(result.codes):,} matches, "
        f"direction={result.direction}, {result.total_io} page I/Os"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "auctions.pbit")
        build_and_save(path)
        reopen_and_query(path)


if __name__ == "__main__":
    main()
