#!/usr/bin/env python3
"""Containment + proximity over a text document (paper Sections 1/2.2).

The paper motivates tree-structured data with *textual documents* and
notes its binarization heuristic "will assist processing containment
and proximity queries".  This example generates a book-shaped document
and runs:

* a nested-ancestor containment join (//section <| //section);
* word-level proximity: pairs of terms within w words of each other
  (window join on region Starts);
* same-sentence co-occurrence via the common-ancestor equijoin.
"""

from repro import BufferManager, DiskManager, ElementSet, JoinSink, binarize
from repro.core import pbitree
from repro.join.proximity import common_ancestor_join, window_join
from repro.join.stacktree import StackTreeDescJoin
from repro.workloads import textdoc


def main() -> None:
    tree = textdoc.generate_tree(num_parts=3, chapters_per_part=5, seed=42)
    encoding = binarize(tree)
    counts = tree.tag_counts()
    print(
        f"book: {len(tree):,} nodes, {counts.get('section', 0)} sections, "
        f"{counts.get('sentence', 0):,} sentences, PBiTree H={encoding.tree_height}\n"
    )

    # --- containment: nested sections ------------------------------------
    disk = DiskManager()
    bufmgr = BufferManager(disk, 64)
    sections = ElementSet.from_tree_tag(
        bufmgr, tree, "section", encoding.tree_height
    )
    sink = JoinSink("collect")
    report = StackTreeDescJoin().run(sections, sections, sink)
    print(
        f"//section <| //section: {report.result_count} nested pairs "
        f"({report.total_pages} page I/Os)"
    )
    deepest = max(
        (pbitree.level_of(d, encoding.tree_height) for _a, d in sink.pairs),
        default=0,
    )
    print(f"deepest nested section sits at PBiTree level {deepest}\n")

    # --- proximity: terms within a window ---------------------------------
    # window_join distances are in Start units (leaf positions of the
    # PBiTree); one word step is about 2**(h+1) of those, where h is the
    # word height, so scale the word-count window accordingly
    word_height = _typical_height(tree, encoding, "w3")
    stride = 1 << (word_height + 2)
    for query in textdoc.default_term_queries():
        left = textdoc.term_codes(tree, query.left_term)
        right = textdoc.term_codes(tree, query.right_term)
        pairs = list(window_join(left, right, query.window * stride))
        print(
            f"{query.name}: '{query.left_term}' within ~{query.window} words "
            f"of '{query.right_term}': {len(pairs)} pairs "
            f"(|L|={len(left)}, |R|={len(right)})"
        )

    # --- proximity: same sentence ------------------------------------------
    left = textdoc.term_codes(tree, "w3")
    right = textdoc.term_codes(tree, "w7")
    sentence_height = _typical_height(tree, encoding, "sentence") + 2
    same = list(common_ancestor_join(left, right, sentence_height))
    print(
        f"\n'w3' and 'w7' sharing an ancestor at height {sentence_height} "
        f"(~same sentence): {len(same)} pairs"
    )


def _typical_height(tree, encoding, tag: str) -> int:
    from repro.core import pbitree as pt

    node = next(tree.iter_by_tag(tag))
    return pt.height_of(tree.codes[node])


if __name__ == "__main__":
    main()
