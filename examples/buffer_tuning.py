#!/usr/bin/env python3
"""How buffer memory changes the algorithm trade-off (Figure 6(e) story).

Sweeps the buffer pool size over a large single-height dataset and
shows the paper's observation: the region-code algorithms stop
benefiting from extra memory once their external sorts stabilise,
while the partitioning algorithms keep converting memory into fewer
passes — until the smaller input fits entirely and the join collapses
to a single scan of each side.
"""

from repro.experiments.harness import run_lineup
from repro.experiments.report import format_table
from repro.workloads import synthetic as syn

SWEEP_PERCENT = [0.5, 1, 2, 5, 10, 25, 50, 100]
PAGE_SIZE = 1024


def main() -> None:
    spec = syn.spec_by_name("SLLL", large=40_000, small=400)
    dataset = syn.generate(spec, seed=5)
    per_page = (PAGE_SIZE - 8) // 8
    smaller_pages = -(-min(spec.a_size, spec.d_size) // per_page)
    print(
        f"dataset {spec.name}: |A|={spec.a_size:,} |D|={spec.d_size:,} "
        f"({dataset.num_results:,} results); "
        f"smaller set = {smaller_pages} pages\n"
    )

    rows = []
    for percent in SWEEP_PERCENT:
        buffer_pages = max(3, int(smaller_pages * percent / 100))
        lineup = run_lineup(
            f"P={percent}%",
            dataset.a_codes,
            dataset.d_codes,
            dataset.tree_height,
            buffer_pages=buffer_pages,
            page_size=PAGE_SIZE,
            single_height=True,
        )
        rows.append(
            [
                f"{percent}%",
                buffer_pages,
                lineup.min_rgn_io,
                lineup.by_name("SHCJ").total_io,
                lineup.by_name("VPJ").total_io,
            ]
        )

    print(
        format_table(
            ["P (of smaller set)", "buffer pages", "MIN_RGN io",
             "SHCJ io", "VPJ io"],
            rows,
            title="page I/O vs buffer size (cf. Figure 6(e))",
        )
    )
    print(
        "\nreading the table: MIN_RGN is dominated by its external sorts and\n"
        "flattens early; SHCJ/VPJ keep improving and end at one scan of each\n"
        "input once the smaller set fits in memory."
    )


if __name__ == "__main__":
    main()
