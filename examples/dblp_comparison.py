#!/usr/bin/env python3
"""Algorithm shoot-out on DBLP-like bibliography joins.

Recreates the paper's Section 4.2 protocol at example scale: a
DBLP-shaped document, ten containment joins D1-D10, and — starting from
unsorted, unindexed element sets behind a small buffer pool — a
comparison of every algorithm in the framework, including the on-the-fly
sort/index cost the region-code algorithms must pay.

Prints one table per join and a final summary of how often each
algorithm won.
"""

from collections import Counter

from repro.core.binarize import binarize
from repro.datatree.paths import select_by_tag
from repro.experiments.harness import (
    Workbench,
    make_algorithm,
    materialize,
    run_algorithm,
)
from repro.experiments.report import format_table
from repro.workloads import dblp

ALGORITHMS = ["INLJN", "STACKTREE", "ADB+", "MHCJ+Rollup", "VPJ"]
BUFFER_PAGES = 24


def main() -> None:
    tree = dblp.generate_tree(num_publications=8000, seed=1)
    encoding = binarize(tree)
    print(
        f"DBLP-like document: {len(tree):,} nodes "
        f"({tree.tag_counts().get('article', 0):,} articles)\n"
    )

    wins: Counter = Counter()
    for join in dblp.DBLP_JOINS:
        a_codes = select_by_tag(tree, join.anc_tag)
        d_codes = select_by_tag(tree, join.desc_tag)
        bench = Workbench.create(buffer_pages=BUFFER_PAGES, page_size=1024)
        a_set = materialize(bench.bufmgr, a_codes, encoding.tree_height, "A")
        d_set = materialize(bench.bufmgr, d_codes, encoding.tree_height, "D")

        rows = []
        best = None
        for name in ALGORITHMS:
            report = run_algorithm(make_algorithm(name), a_set, d_set)
            rows.append(
                [
                    name,
                    report.result_count,
                    report.prep_io.total,
                    report.join_io.total,
                    report.total_pages,
                    f"{report.wall_seconds * 1e3:.1f} ms",
                ]
            )
            if best is None or report.total_pages < best[1]:
                best = (name, report.total_pages)
        wins[best[0]] += 1

        title = (
            f"{join.name}: //{join.anc_tag} <| //{join.desc_tag}   "
            f"(|A|={len(a_codes):,} |D|={len(d_codes):,}) — {join.description}"
        )
        print(
            format_table(
                ["algorithm", "#results", "prep io", "join io", "total io", "time"],
                rows,
                title=title,
            )
        )
        print(f"  -> cheapest: {best[0]}\n")

    print("wins by algorithm (lowest total page I/O):")
    for name, count in wins.most_common():
        print(f"  {name:<12} {count}")


if __name__ == "__main__":
    main()
