#!/usr/bin/env python3
"""The extended toolkit: cost-based planning and in-place updates.

Demonstrates the two Section-6 "future work" directions this library
implements beyond the paper's evaluated core:

1. the **cost-based optimizer** — EXPLAIN-style ranking of all
   candidate join algorithms from PBiTree statistics;
2. **updates through virtual nodes** — inserting new publications into
   a live document without rebuilding the coding, then re-running the
   same query.
"""

from repro.db import ContainmentDatabase
from repro.workloads import dblp


def main() -> None:
    db = ContainmentDatabase(buffer_pages=32, optimizer="cost")
    tree = dblp.generate_tree(num_publications=3000, seed=11)
    doc = db.load_tree(tree, name="dblp")
    print(f"loaded {doc}: {len(tree):,} nodes\n")

    # --- EXPLAIN ---------------------------------------------------------
    path = "//article//author"
    print(f"EXPLAIN {path}")
    print(db.explain(doc, path))

    result = db.query(doc, path)
    print(
        f"\nexecuted: {len(result):,} matches, "
        f"{result.reports[0].algorithm} chosen, "
        f"{result.total_io} page I/Os\n"
    )

    # --- updates ----------------------------------------------------------
    print("inserting 500 new articles (virtual-node fast path) ...")
    for i in range(500):
        article = db.insert_element(doc, tree.root, "article")
        db.insert_element(doc, article, "title")
        db.insert_element(doc, article, "author")
    stats = doc.updatable.stats
    print(
        f"  update stats: {stats.inserts} inserts, "
        f"{stats.local_relabels} local relabels "
        f"({stats.relabelled_nodes} nodes touched), "
        f"{stats.tree_growths} tree growths"
    )

    before = len(result)
    result = db.query(doc, path)
    print(
        f"re-ran {path}: {len(result):,} matches "
        f"(+{len(result) - before} from the inserted articles)"
    )

    # --- deletes -----------------------------------------------------------
    victim = next(tree.iter_by_tag("article"))
    removed = db.delete_element(doc, victim)
    result = db.query(doc, path)
    print(f"deleted one article subtree ({removed} elements); "
          f"query now returns {len(result):,} matches")


if __name__ == "__main__":
    main()
