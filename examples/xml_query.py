#!/usr/bin/env python3
"""Evaluate a descendant-axis path query as a chain of containment joins.

Generates an XMark-like auction site document, then answers

    //open_auctions//bidder//increase

twice: navigationally (the slow, pointer-chasing ground truth) and as
two containment joins through the storage engine, the way an XML query
processor built on the paper's framework would.  Prints per-step
planner choices and I/O costs, and verifies both answers agree.
"""

import time

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    PathQuery,
    PBiTreeJoinFramework,
    binarize,
)
from repro.workloads import xmark

QUERY = "//open_auctions//bidder//increase"


def main() -> None:
    tree = xmark.generate_tree(scale=0.5, seed=7)
    encoding = binarize(tree)
    print(
        f"XMark-like document: {len(tree):,} nodes, height {tree.height()}, "
        f"PBiTree H = {encoding.tree_height}"
    )

    disk = DiskManager(page_size=1024)
    bufmgr = BufferManager(disk, num_pages=64)
    framework = PBiTreeJoinFramework()
    query = PathQuery(QUERY)

    # --- navigational ground truth --------------------------------------
    start = time.perf_counter()
    expected = sorted(query.evaluate_navigational(tree))
    nav_seconds = time.perf_counter() - start
    print(f"\nnavigational evaluation: {len(expected)} matches "
          f"in {nav_seconds * 1e3:.1f} ms")

    # --- join-based evaluation ------------------------------------------
    print(f"\njoin-based evaluation of {QUERY}:")
    step = 0

    def join(a_codes, d_codes):
        nonlocal step
        step += 1
        a_set = ElementSet.from_codes(
            bufmgr, a_codes, encoding.tree_height, f"step{step}.A"
        )
        d_set = ElementSet.from_codes(
            bufmgr, d_codes, encoding.tree_height, f"step{step}.D"
        )
        algorithm = framework.plan(a_set, d_set)
        report, pairs = framework.join(a_set, d_set)
        print(
            f"  step {step}: |A|={len(a_set):>6,} |D|={len(d_set):>6,} "
            f"-> {report.result_count:>6,} pairs  "
            f"[{report.algorithm}, {report.total_pages} page I/Os, "
            f"false hits {report.false_hits}]"
        )
        a_set.destroy()
        d_set.destroy()
        return pairs

    start = time.perf_counter()
    got = query.evaluate_with_joins(tree, join)
    join_seconds = time.perf_counter() - start
    print(f"join evaluation: {len(got)} matches in {join_seconds * 1e3:.1f} ms")

    assert got == expected, "join-based answer diverged from navigation!"
    print("\nanswers agree ✓")
    print(
        f"total simulated disk traffic: {disk.stats.reads} page reads, "
        f"{disk.stats.writes} page writes"
    )


if __name__ == "__main__":
    main()
