#!/usr/bin/env python3
"""Quickstart: encode an XML document and run a containment join.

Walks the full pipeline of the paper on its own motivating query:

    //Section[Title="Introduction"]//Figure

1. parse the document into a data tree;
2. embed it into a PBiTree (BinarizeTree, Algorithm 1) — every element
   gets a single integer code;
3. build element sets for ``Section`` and ``Figure`` on the paged
   storage engine;
4. let the framework pick a join algorithm and run it;
5. decode the matched codes back to elements.
"""

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    PBiTreeJoinFramework,
    binarize,
    parse_xml,
)
from repro.core import pbitree

DOCUMENT = """
<article>
  <Section>
    <Title>Introduction</Title>
    <para>Containment joins are the core of XML query processing.</para>
    <Figure name="architecture"/>
    <Section>
      <Title>Motivation</Title>
      <Figure name="example-query"/>
    </Section>
  </Section>
  <Section>
    <Title>Related Work</Title>
    <para>Region codes, prefix codes, ...</para>
  </Section>
  <appendix>
    <Figure name="proofs"/>
  </appendix>
</article>
"""


def main() -> None:
    # 1-2. parse and encode
    tree = parse_xml(DOCUMENT)
    encoding = binarize(tree)
    print(f"document: {len(tree)} nodes, PBiTree height H = {encoding.tree_height}")
    print(f"coding space: [1, {encoding.coding_space[1]}]\n")

    for node in tree.iter_by_tag("Figure"):
        code = tree.codes[node]
        region = pbitree.region_of(code)
        print(
            f"  <Figure> node {node}: code {code}, height "
            f"{pbitree.height_of(code)}, region {tuple(region)}"
        )

    # 3. storage: a simulated disk behind a small buffer pool
    disk = DiskManager(page_size=1024)
    bufmgr = BufferManager(disk, num_pages=16)
    sections = ElementSet.from_tree_tag(bufmgr, tree, "Section", encoding.tree_height)
    figures = ElementSet.from_tree_tag(bufmgr, tree, "Figure", encoding.tree_height)
    print(f"\nancestor set {sections}: descendant set {figures}")

    # 4. plan and execute (unsorted, unindexed inputs -> a partitioning
    # algorithm from the paper is chosen)
    framework = PBiTreeJoinFramework()
    algorithm = framework.plan(sections, figures)
    print(f"planner chose: {algorithm.name}")
    report, pairs = framework.join(sections, figures)
    print(
        f"join produced {report.result_count} pairs "
        f"({report.total_pages} page I/Os, {report.wall_seconds * 1e3:.2f} ms)\n"
    )

    # 5. decode the results back into the document
    for a_code, d_code in sorted(pairs):
        section = encoding.node_of(a_code)
        figure = encoding.node_of(d_code)
        title = next(
            (
                tree.texts[grandchild]
                for child in tree.children[section]
                if tree.tags[child] == "Title"
                for grandchild in tree.children[child]
            ),
            "?",
        )
        name = next(
            (
                tree.texts[child]
                for child in tree.children[figure]
                if tree.tags[child] == "@name"
            ),
            "?",
        )
        print(f'  Section "{title}"  contains  Figure "{name}"')


if __name__ == "__main__":
    main()
