"""Differential tests for the flat-array static indexes.

:class:`~repro.index.flat.FlatStartIndex` and
:class:`~repro.index.flat.FlatIntervalTree` rebuild the probe paths of
the pointer B+-tree and interval tree over flat per-page columns.  The
pointer classes stay alive as the differential oracle, and this suite
pins the contract from both directions:

* **results** — every probe (range scan with all bound combinations,
  point search, stabbing query) returns the same items in the same
  order as the pointer index over hypothesis-generated corpora;
* **accounting** — INLJN runs and whole Figure 6(b) line-ups produce
  field-for-field identical :class:`JoinReport` objects (I/O counters,
  buffer hits/misses, result counts) with flat indexes on or off,
  serially and with ``workers=2``;
* **faults** — chaos-seed transient read faults replay identically
  through flat probes (retries absorbed, results unchanged);
* **discipline** — flat probes leave nothing pinned, even when a lazy
  scan is abandoned mid-page, and the pin-discipline checker finds no
  violations in the module's source.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BufferManager,
    DiskManager,
    FaultConfig,
    FaultInjector,
    JoinSink,
    RetryPolicy,
    binarize,
    random_tree,
)
from repro.core import batch, pbitree as pt
from repro.experiments.harness import (
    Workbench,
    make_lineup,
    materialize,
    run_algorithm,
    run_lineup,
)
from repro.index import flat
from repro.index.bptree import BPlusTree
from repro.index.flat import FlatIntervalTree, FlatStartIndex
from repro.index.interval_tree import IntervalTree
from repro.join.inljn import (
    IndexNestedLoopJoin,
    build_interval_index,
    build_start_index,
)
from repro.storage.record import MAX_CODE_BITS

MAX_CODE = (1 << MAX_CODE_BITS) - 1

#: edges of the coding space (same lineup as tests/test_batch.py)
BOUNDARY_CODES = [1, 2, 3, 1 << 62, (1 << 62) + (1 << 61), MAX_CODE]

code_arrays = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=MAX_CODE),
        st.sampled_from(BOUNDARY_CODES),
    ),
    min_size=1,
    max_size=80,
)


def make_bufmgr(buffer_pages=16, page_size=256):
    return BufferManager(DiskManager(page_size=page_size), buffer_pages)


def build_tree_pair(codes, bufmgr, fill_factor=1.0):
    """Pointer and flat B+-trees bulk-loaded from the same entries."""
    entries = sorted((pt.start_of(c), c) for c in codes)
    pointer = BPlusTree.bulk_load(
        bufmgr, entries, name="ptr", fill_factor=fill_factor
    )
    flat_idx = FlatStartIndex.bulk_load(
        bufmgr, entries, name="flat", fill_factor=fill_factor
    )
    return pointer, flat_idx


def build_interval_pair(codes, bufmgr):
    """Pointer and flat interval trees built from the same regions."""
    intervals = [(*pt.region_of(c), c) for c in codes]
    pointer = IntervalTree.build(bufmgr, intervals, name="ptr")
    flat_idx = FlatIntervalTree.build(bufmgr, intervals, name="flat")
    return pointer, flat_idx


# ----------------------------------------------------------------------
# the oracle switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_default_off(self):
        assert flat.flat_enabled() is False

    def test_scope_nesting_restores(self):
        with flat.flat_scope(True):
            assert flat.flat_enabled() is True
            with flat.flat_scope(False):
                assert flat.flat_enabled() is False
            assert flat.flat_enabled() is True
        assert flat.flat_enabled() is False

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with flat.flat_scope(True):
                raise RuntimeError("boom")
        assert flat.flat_enabled() is False

    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("1", True), ("true", True), ("ON", True), ("yes", True),
            ("0", False), ("false", False), ("off", False), ("No", False),
            ("", None), ("maybe", None),
        ],
    )
    def test_env_parsing(self, raw, expected, monkeypatch):
        monkeypatch.setenv("REPRO_FLAT_INDEX", raw)
        assert flat._env_flat_enabled() is expected

    def test_builders_follow_switch(self):
        bufmgr = make_bufmgr()
        wb = Workbench.create(16, 256)
        elements = materialize(wb.bufmgr, [1, 2, 3], 62, "E")
        with flat.flat_scope(True):
            assert isinstance(
                build_start_index(elements, wb.bufmgr, "s"), FlatStartIndex
            )
            assert isinstance(
                build_interval_index(elements, wb.bufmgr, "i"),
                FlatIntervalTree,
            )
        with flat.flat_scope(False):
            d_index = build_start_index(elements, wb.bufmgr, "s2")
            a_index = build_interval_index(elements, wb.bufmgr, "i2")
            assert type(d_index) is BPlusTree
            assert type(a_index) is IntervalTree
        del bufmgr


# ----------------------------------------------------------------------
# flat B+-tree vs pointer oracle
# ----------------------------------------------------------------------
class TestFlatStartIndexDifferential:
    @given(codes=code_arrays, probes=st.lists(st.integers(0, MAX_CODE),
                                              min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_search_and_first_geq(self, codes, probes):
        bufmgr = make_bufmgr()
        pointer, flat_idx = build_tree_pair(codes, bufmgr)
        for key in probes + [pt.start_of(c) for c in codes[:5]]:
            assert flat_idx.search(key) == pointer.search(key)
            assert flat_idx.first_geq(key) == pointer.first_geq(key)
        assert bufmgr.num_pinned == 0

    @given(
        codes=code_arrays,
        bounds=st.tuples(st.integers(0, MAX_CODE), st.integers(0, MAX_CODE)),
        include_lo=st.booleans(),
        include_hi=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_scan(self, codes, bounds, include_lo, include_hi):
        bufmgr = make_bufmgr()
        pointer, flat_idx = build_tree_pair(codes, bufmgr)
        lo, hi = min(bounds), max(bounds)
        expected = list(pointer.range_scan(lo, hi, include_lo, include_hi))
        got = list(flat_idx.range_scan(lo, hi, include_lo, include_hi))
        assert got == expected
        # the bulk probe is the same scan with slice extraction
        if include_lo and include_hi:
            assert flat_idx.range_values(lo, hi) == [v for _k, v in expected]
        assert bufmgr.num_pinned == 0

    @given(codes=code_arrays)
    @settings(max_examples=30, deadline=None)
    def test_scan_all(self, codes):
        bufmgr = make_bufmgr()
        pointer, flat_idx = build_tree_pair(codes, bufmgr)
        assert list(flat_idx.scan_all()) == list(pointer.scan_all())

    @pytest.mark.parametrize("fill_factor", [0.5, 0.7, 1.0])
    def test_fill_factor_layouts(self, fill_factor):
        rng = random.Random(5)
        codes = [rng.randrange(1, MAX_CODE) for _ in range(400)]
        bufmgr = make_bufmgr(buffer_pages=32)
        pointer, flat_idx = build_tree_pair(codes, bufmgr, fill_factor)
        assert flat_idx.height == pointer.height
        for c in rng.sample(codes, 40):
            start, end = pt.region_of(c)
            assert list(flat_idx.range_scan(start, end)) == list(
                pointer.range_scan(start, end)
            )

    def test_insert_raises(self):
        bufmgr = make_bufmgr()
        _, flat_idx = build_tree_pair([1, 2, 3], bufmgr)
        with pytest.raises(TypeError, match="static"):
            flat_idx.insert(7, 7)

    def test_abandoned_scan_leaves_nothing_pinned(self):
        rng = random.Random(6)
        codes = [rng.randrange(1, MAX_CODE) for _ in range(300)]
        bufmgr = make_bufmgr(buffer_pages=32)
        _, flat_idx = build_tree_pair(codes, bufmgr)
        scan = flat_idx.range_scan(0, MAX_CODE)
        next(scan)
        scan.close()
        assert bufmgr.num_pinned == 0


# ----------------------------------------------------------------------
# flat interval tree vs pointer oracle
# ----------------------------------------------------------------------
class TestFlatIntervalTreeDifferential:
    @given(codes=code_arrays, extra=st.lists(st.integers(0, MAX_CODE),
                                             max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_stab(self, codes, extra):
        bufmgr = make_bufmgr()
        pointer, flat_idx = build_interval_pair(codes, bufmgr)
        points = [pt.start_of(c) for c in codes[:10]] + extra
        for point in points:
            expected = list(pointer.stab(point))
            assert list(flat_idx.stab(point)) == expected
            # the bulk probe extracts the same payload column
            assert flat_idx.stab_codes(point) == [a for _s, _e, a in expected]
        assert bufmgr.num_pinned == 0

    def test_abandoned_stab_leaves_nothing_pinned(self):
        # stab materializes under the probe guard (the whole probe is
        # atomic against mark_stale), so even an abandoned, partially
        # consumed result holds no pins.
        rng = random.Random(8)
        codes = [rng.randrange(1, MAX_CODE) for _ in range(300)]
        bufmgr = make_bufmgr(buffer_pages=32)
        _, flat_idx = build_interval_pair(codes, bufmgr)
        deepest = max(codes, key=pt.height_of)
        scan = flat_idx.stab(pt.start_of(deepest))
        next(scan, None)
        del scan
        assert bufmgr.num_pinned == 0


# ----------------------------------------------------------------------
# INLJN reports are field-for-field identical
# ----------------------------------------------------------------------
def normalize(report):
    return dataclasses.replace(report, wall_seconds=0.0, trace=None)


def corpus_codes():
    tree = random_tree(300, max_fanout=5, seed=23)
    encoding = binarize(tree)
    rng = random.Random(9)
    a_codes = rng.sample(tree.codes, 160)
    d_codes = rng.sample(tree.codes, 200)
    return a_codes, d_codes, encoding.tree_height


class TestINLJNDifferential:
    @pytest.mark.parametrize("force_outer", ["A", "D"])
    @pytest.mark.parametrize("batch_size", [0, 1024])
    def test_reports_identical(self, force_outer, batch_size):
        a_codes, d_codes, tree_height = corpus_codes()
        reports = {}
        pairs = {}
        for enabled in (False, True):
            wb = Workbench.create(16, 256)
            ancestors = materialize(wb.bufmgr, a_codes, tree_height, "A")
            descendants = materialize(wb.bufmgr, d_codes, tree_height, "D")
            sink = JoinSink("collect")
            with batch.batch_scope(batch_size), flat.flat_scope(enabled):
                reports[enabled] = run_algorithm(
                    IndexNestedLoopJoin(force_outer=force_outer),
                    ancestors,
                    descendants,
                    sink,
                )
            pairs[enabled] = sink.pairs
            assert wb.bufmgr.num_pinned == 0
        assert normalize(reports[True]) == normalize(reports[False])
        assert pairs[True] == pairs[False]


# ----------------------------------------------------------------------
# whole line-up, serial and parallel
# ----------------------------------------------------------------------
class TestLineupDifferential:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_flat_lineup_reports_identical(self, workers):
        a_codes, d_codes, tree_height = corpus_codes()
        runs = {}
        for enabled in (False, True):
            runs[enabled] = run_lineup(
                "flatdiff",
                a_codes,
                d_codes,
                tree_height,
                buffer_pages=8,
                page_size=128,
                algorithms=make_lineup(False),
                collect=True,
                workers=workers,
                flat_index=enabled,
            )
        oracle, flatrun = runs[False], runs[True]
        assert flatrun.result_count == oracle.result_count
        for o_result, f_result in zip(oracle.results, flatrun.results):
            assert f_result.name == o_result.name
            assert normalize(f_result.report) == normalize(o_result.report), (
                f"{o_result.name} diverges between pointer and flat runs"
            )


# ----------------------------------------------------------------------
# chaos: transient faults replay identically through flat probes
# ----------------------------------------------------------------------
class TestFaultReplay:
    @pytest.mark.parametrize("force_outer", ["A", "D"])
    def test_flat_probes_absorb_transient_faults(self, force_outer):
        a_codes, d_codes, tree_height = corpus_codes()

        def run(enabled, faults):
            # a whole join reads far more pages than the cursor-scan
            # chaos test, so give the 10% fault rate enough attempts
            # that no page degenerates to a permanent error
            wb = Workbench.create(
                16, 256, faults=faults, retry=RetryPolicy(max_attempts=12)
            )
            ancestors = materialize(wb.bufmgr, a_codes, tree_height, "A")
            descendants = materialize(wb.bufmgr, d_codes, tree_height, "D")
            sink = JoinSink("collect")
            with batch.batch_scope(1024), flat.flat_scope(enabled):
                report = run_algorithm(
                    IndexNestedLoopJoin(force_outer=force_outer),
                    ancestors,
                    descendants,
                    sink,
                )
            return sink.pairs, report

        quiet_pairs, _ = run(True, None)
        chaos = FaultInjector(
            FaultConfig(seed=3, read_error_rate=0.1, torn_page_rate=0.05)
        )
        noisy_pairs, noisy_report = run(True, chaos)
        oracle_pairs, _ = run(False, None)
        assert noisy_pairs == quiet_pairs == oracle_pairs
        assert noisy_report.total_io.retries > 0


# ----------------------------------------------------------------------
# pin discipline of the new module itself
# ----------------------------------------------------------------------
def test_flat_module_passes_pin_discipline():
    from pathlib import Path

    from repro.analysis import all_checkers, run_checks

    flat_path = Path(flat.__file__)
    checkers = [c for c in all_checkers() if c.name == "pin-discipline"]
    assert checkers
    findings, errors = run_checks([flat_path], checkers)
    assert not errors
    assert findings == []
