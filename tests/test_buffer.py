"""Tests for the buffer pool: pinning, replacement, write-back."""

import pytest

from repro.storage.buffer import (
    BufferManager,
    BufferPoolExhaustedError,
    BufferPoolFullError,
)
from repro.storage.disk import DiskManager


def make_pool(frames=3, policy="lru"):
    disk = DiskManager(page_size=128)
    return disk, BufferManager(disk, frames, policy)


class TestPinning:
    def test_pin_faults_in_once(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        pool.pin(pid)
        pool.unpin(pid)
        pool.pin(pid)
        pool.unpin(pid)
        assert disk.stats.reads == 1
        assert pool.hits == 1 and pool.misses == 1

    def test_unpin_unknown_rejected(self):
        _disk, pool = make_pool()
        with pytest.raises(ValueError):
            pool.unpin(5)

    def test_double_unpin_rejected(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        pool.pin(pid)
        pool.unpin(pid)
        with pytest.raises(ValueError):
            pool.unpin(pid)

    def test_nested_pins(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        pool.pin(pid)
        pool.pin(pid)
        assert pool.num_pinned == 1
        pool.unpin(pid)
        assert pool.num_pinned == 1  # still held once
        pool.unpin(pid)
        assert pool.num_pinned == 0


class TestNewPage:
    def test_new_page_charges_no_read(self):
        disk, pool = make_pool()
        frame = pool.new_page()
        pool.unpin(frame.page_id, dirty=True)
        assert disk.stats.reads == 0
        pool.flush_all()
        assert disk.stats.writes == 1

    def test_new_page_zero_filled_and_dirty(self):
        _disk, pool = make_pool()
        frame = pool.new_page()
        assert bytes(frame.data) == bytes(128)
        assert frame.dirty


class TestEviction:
    def test_dirty_victim_written_back(self):
        disk, pool = make_pool(frames=2)
        a = disk.allocate()
        b = disk.allocate()
        c = disk.allocate()
        frame = pool.pin(a)
        frame.data[0] = 0xAB
        pool.unpin(a, dirty=True)
        pool.pin(b); pool.unpin(b)
        pool.pin(c); pool.unpin(c)  # evicts a (LRU)
        assert disk.stats.writes == 1
        assert disk.read(a)[0] == 0xAB

    def test_clean_victim_not_written(self):
        disk, pool = make_pool(frames=1)
        a, b = disk.allocate(), disk.allocate()
        pool.pin(a); pool.unpin(a)
        pool.pin(b); pool.unpin(b)
        assert disk.stats.writes == 0

    def test_all_pinned_raises(self):
        disk, pool = make_pool(frames=2)
        pids = [disk.allocate() for _ in range(3)]
        pool.pin(pids[0])
        pool.pin(pids[1])
        with pytest.raises(BufferPoolFullError):
            pool.pin(pids[2])

    def test_lru_order(self):
        disk, pool = make_pool(frames=2)
        a, b, c = (disk.allocate() for _ in range(3))
        pool.pin(a); pool.unpin(a)
        pool.pin(b); pool.unpin(b)
        pool.pin(a); pool.unpin(a)  # a becomes most recent
        pool.pin(c); pool.unpin(c)  # should evict b, not a
        assert pool.is_resident(a) and not pool.is_resident(b)

    def test_clock_evicts_unreferenced(self):
        disk, pool = make_pool(frames=2, policy="clock")
        a, b, c = (disk.allocate() for _ in range(3))
        pool.pin(a); pool.unpin(a)
        pool.pin(b); pool.unpin(b)
        pool.pin(c); pool.unpin(c)  # one of a/b evicted, pool keeps working
        assert pool.num_resident == 2
        assert pool.is_resident(c)

    def test_clock_skips_pinned(self):
        disk, pool = make_pool(frames=2, policy="clock")
        a, b, c = (disk.allocate() for _ in range(3))
        pool.pin(a)                # stays pinned
        pool.pin(b); pool.unpin(b)
        pool.pin(c)                # must evict b
        assert pool.is_resident(a) and pool.is_resident(c)
        assert not pool.is_resident(b)


class TestPoolExhaustion:
    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_all_pinned_raises_typed_error(self, policy):
        """Regression: the clock policy used to spin forever when every
        frame was pinned; both policies now fail with a typed error
        carrying the pool size and policy."""
        disk, pool = make_pool(frames=2, policy=policy)
        pids = [disk.allocate() for _ in range(3)]
        pool.pin(pids[0])
        pool.pin(pids[1])
        with pytest.raises(BufferPoolExhaustedError) as excinfo:
            pool.pin(pids[2])
        assert excinfo.value.num_pages == 2
        assert excinfo.value.policy == policy

    def test_exhaustion_is_a_pool_full_error(self):
        # existing `except BufferPoolFullError` handlers keep working
        assert issubclass(BufferPoolExhaustedError, BufferPoolFullError)

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_recovers_after_unpin(self, policy):
        disk, pool = make_pool(frames=2, policy=policy)
        pids = [disk.allocate() for _ in range(3)]
        pool.pin(pids[0])
        pool.pin(pids[1])
        with pytest.raises(BufferPoolExhaustedError):
            pool.pin(pids[2])
        pool.unpin(pids[0])
        pool.pin(pids[2])  # a free frame exists again
        assert pool.is_resident(pids[2])

    def test_hit_rate_property(self):
        disk, pool = make_pool()
        assert pool.hit_rate == 0.0
        pid = disk.allocate()
        pool.pin(pid); pool.unpin(pid)
        pool.pin(pid); pool.unpin(pid)
        assert pool.hit_rate == 0.5


class TestFlushing:
    def test_flush_all_clears_dirty(self):
        disk, pool = make_pool()
        frame = pool.new_page()
        pool.unpin(frame.page_id, dirty=True)
        pool.flush_all()
        pool.flush_all()  # second flush writes nothing
        assert disk.stats.writes == 1

    def test_evict_all_drops_unpinned_only(self):
        disk, pool = make_pool()
        a, b = disk.allocate(), disk.allocate()
        pool.pin(a)
        pool.pin(b); pool.unpin(b)
        pool.evict_all()
        assert pool.is_resident(a) and not pool.is_resident(b)
        pool.unpin(a)

    def test_discard_page(self):
        disk, pool = make_pool()
        frame = pool.new_page()
        pool.unpin(frame.page_id)
        pool.discard_page(frame.page_id)
        assert disk.stats.writes == 0  # dropped without write-back

    def test_discard_pinned_rejected(self):
        disk, pool = make_pool()
        frame = pool.new_page()
        with pytest.raises(ValueError):
            pool.discard_page(frame.page_id)
        pool.unpin(frame.page_id)


class TestValidation:
    def test_zero_frames_rejected(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferManager(disk, 0)

    def test_unknown_policy_rejected(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferManager(disk, 4, policy="fifo")
