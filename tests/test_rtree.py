"""Tests for the disk-based R-tree and the spatial containment joins."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    JoinSink,
    RTreeProbeJoin,
    SynchronizedRTreeJoin,
    binarize,
    brute_force_join,
    random_tree,
)
from repro.index.rtree import Rect, RTree
from repro.join.spatial import build_point_rtree, point_of, probe_window


def make_env(frames=32, page_size=512):
    disk = DiskManager(page_size=page_size)
    return disk, BufferManager(disk, frames)


@st.composite
def rect_lists(draw):
    n = draw(st.integers(0, 150))
    out = []
    for i in range(n):
        x = draw(st.integers(0, 1000))
        y = draw(st.integers(0, 1000))
        out.append((Rect(x, y, x + draw(st.integers(0, 80)),
                         y + draw(st.integers(0, 80))), i))
    return out


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 4, 10)

    def test_point(self):
        point = Rect.point(3, 7)
        assert point.as_tuple() == (3, 7, 3, 7)
        assert point.area() == 0

    def test_intersects(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(5, 5, 15, 15))
        assert a.intersects(Rect(10, 10, 20, 20))  # touching counts
        assert not a.intersects(Rect(11, 0, 20, 10))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 8))

    def test_enlarged_and_enlargement(self):
        a = Rect(0, 0, 4, 4)
        grown = a.enlarged(Rect(6, 6, 8, 8))
        assert grown.as_tuple() == (0, 0, 8, 8)
        assert a.enlargement(Rect(1, 1, 2, 2)) == 0


class TestRTreeQueries:
    @given(rect_lists(), st.lists(st.tuples(
        st.integers(0, 1100), st.integers(0, 1100),
        st.integers(0, 200), st.integers(0, 200)), max_size=15))
    @settings(max_examples=20, deadline=None)
    def test_bulk_load_matches_brute_force(self, entries, windows):
        _disk, bufmgr = make_env()
        tree = RTree.bulk_load(bufmgr, entries)
        assert len(tree) == len(entries)
        for x, y, w, h in windows:
            window = Rect(x, y, x + w, y + h)
            want = sorted(
                (rect.as_tuple(), payload)
                for rect, payload in entries
                if window.intersects(rect)
            )
            got = sorted(
                (rect.as_tuple(), payload)
                for rect, payload in tree.search(window)
            )
            assert got == want

    @given(rect_lists())
    @settings(max_examples=20, deadline=None)
    def test_insert_matches_bulk_load(self, entries):
        _disk, bufmgr = make_env()
        bulk = RTree.bulk_load(bufmgr, entries)
        incremental = RTree(bufmgr)
        for rect, payload in entries:
            incremental.insert(rect, payload)
        assert sorted(
            (r.as_tuple(), p) for r, p in incremental.scan_all()
        ) == sorted((r.as_tuple(), p) for r, p in bulk.scan_all())

    def test_empty_tree(self):
        _disk, bufmgr = make_env()
        tree = RTree.bulk_load(bufmgr, [])
        assert list(tree.search(Rect(0, 0, 10, 10))) == []
        assert list(tree.scan_all()) == []

    def test_search_contained(self):
        _disk, bufmgr = make_env()
        tree = RTree.bulk_load(
            bufmgr, [(Rect(0, 0, 5, 5), 1), (Rect(3, 3, 20, 20), 2)]
        )
        inside = list(tree.search_contained(Rect(0, 0, 10, 10)))
        assert [payload for _r, payload in inside] == [1]

    def test_height_grows(self):
        _disk, bufmgr = make_env(page_size=512)
        entries = [(Rect.point(i, i), i) for i in range(3000)]
        tree = RTree.bulk_load(bufmgr, entries)
        assert tree.height >= 2
        probe = list(tree.search(Rect(100, 100, 110, 110)))
        assert len(probe) == 11

    def test_cold_probe_charges_io(self):
        disk, bufmgr = make_env(frames=4)
        entries = [(Rect.point(i, i), i) for i in range(2000)]
        tree = RTree.bulk_load(bufmgr, entries)
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()
        list(tree.search(Rect(500, 500, 510, 510)))
        assert disk.stats.reads > 0

    def test_small_page_rejected(self):
        disk = DiskManager(page_size=64)
        bufmgr = BufferManager(disk, 4)
        with pytest.raises(ValueError):
            RTree(bufmgr)


class TestSpatialMapping:
    def test_point_of_uses_region(self):
        # node 20 in the H=5 example tree: region (17, 23)
        assert point_of(20).as_tuple() == (17, 23, 17, 23)

    def test_probe_window_covers_descendants(self):
        window = probe_window(20)
        for code in (17, 18, 19, 21, 22, 23):
            assert window.intersects(point_of(code)), code
        assert not window.intersects(point_of(25))


class TestSpatialJoins:
    @pytest.mark.parametrize(
        "algorithm_cls", [RTreeProbeJoin, SynchronizedRTreeJoin],
        ids=lambda c: c.__name__,
    )
    def test_matches_brute_force(self, algorithm_cls):
        rng = random.Random(17)
        for trial in range(4):
            tree = random_tree(
                rng.randrange(50, 800), max_fanout=rng.choice([3, 12]), seed=trial
            )
            encoding = binarize(tree)
            a_codes = rng.sample(tree.codes, rng.randrange(1, len(tree) // 2 + 1))
            d_codes = rng.sample(tree.codes, rng.randrange(1, len(tree) // 2 + 1))
            _disk, bufmgr = make_env()
            a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
            d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height)
            sink = JoinSink("collect")
            algorithm_cls().run(a_set, d_set, sink)
            assert sorted(sink.pairs) == sorted(
                brute_force_join(a_codes, d_codes)
            ), trial

    def test_prebuilt_index_skips_prep(self):
        tree = random_tree(300, seed=4)
        encoding = binarize(tree)
        _disk, bufmgr = make_env()
        a_set = ElementSet.from_codes(bufmgr, tree.codes[:100], encoding.tree_height)
        d_set = ElementSet.from_codes(bufmgr, tree.codes[100:], encoding.tree_height)
        index = build_point_rtree(d_set, bufmgr)
        report = RTreeProbeJoin(d_index=index).run(a_set, d_set, JoinSink("count"))
        assert report.prep_io.total == 0

    @pytest.mark.parametrize(
        "algorithm_cls", [RTreeProbeJoin, SynchronizedRTreeJoin],
        ids=lambda c: c.__name__,
    )
    def test_empty_inputs(self, algorithm_cls):
        tree = random_tree(50, seed=5)
        encoding = binarize(tree)
        _disk, bufmgr = make_env()
        empty = ElementSet.from_codes(bufmgr, [], encoding.tree_height)
        full = ElementSet.from_codes(bufmgr, tree.codes, encoding.tree_height)
        sink = JoinSink("collect")
        algorithm_cls().run(empty, full, sink)
        assert sink.pairs == []
        sink = JoinSink("collect")
        algorithm_cls().run(full, empty, sink)
        assert sink.pairs == []
