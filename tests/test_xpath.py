"""Tests for extended path queries (child axis, predicates, EA-joins)."""

import random

import pytest

from repro.core import pbitree as pt
from repro.core.binarize import binarize
from repro.datatree.builder import random_tree, tree_from_spec
from repro.datatree.paths import brute_force_join
from repro.datatree.xpath import (
    Predicate,
    Step,
    XPath,
    XPathSyntaxError,
    is_parent_code,
)
from repro.datatree.xml_parser import parse_xml


def doc():
    tree = parse_xml(
        """
        <lib>
          <shelf><book><title/><author/></book><book><title/></book></shelf>
          <shelf><box><book><title/></book></box></shelf>
          <title/>
        </lib>
        """
    )
    binarize(tree)
    return tree


class TestParsing:
    def test_descendant_chain(self):
        xpath = XPath("//a//b//c")
        assert [s.axis for s in xpath.steps] == ["descendant"] * 3
        assert xpath.tags == ["a", "b", "c"]

    def test_mixed_axes(self):
        xpath = XPath("//a/b//c/d")
        assert [s.axis for s in xpath.steps] == [
            "descendant", "child", "descendant", "child"
        ]

    def test_predicates(self):
        xpath = XPath("//book[title][.//author]/chapter")
        assert xpath.steps[0].predicates == (
            Predicate("title", "child"),
            Predicate("author", "descendant"),
        )
        assert xpath.steps[1] == Step("child", "chapter")

    def test_wildcard(self):
        assert XPath("//*//b").steps[0].tag == "*"

    @pytest.mark.parametrize(
        "bad", ["", "a//b", "/a", "//a[", "//a]b", "//a[b=c]", "//"]
    )
    def test_rejects_bad_syntax(self, bad):
        with pytest.raises(XPathSyntaxError):
            XPath(bad)


class TestIsParentCode:
    def test_direct_parent(self):
        tree = tree_from_spec(("a", [("b", [("c", [])])]))
        binarize(tree)
        occupied = set(tree.codes)
        a, b, c = tree.codes
        assert is_parent_code(occupied, a, b)
        assert is_parent_code(occupied, b, c)
        assert not is_parent_code(occupied, a, c)  # grandparent
        assert not is_parent_code(occupied, b, a)

    def test_random_trees(self):
        for seed in range(4):
            tree = random_tree(250, seed=seed)
            binarize(tree)
            occupied = set(tree.codes)
            rng = random.Random(seed)
            for _ in range(300):
                u = rng.randrange(len(tree))
                v = rng.randrange(len(tree))
                want = tree.parents[v] == u
                assert is_parent_code(
                    occupied, tree.codes[u], tree.codes[v]
                ) == want


class TestNavigationalEvaluation:
    def test_child_axis(self):
        tree = doc()
        # //shelf/book: excludes the boxed book
        result = XPath("//shelf/book").evaluate_navigational(tree)
        assert len(result) == 2

    def test_descendant_axis_includes_boxed(self):
        tree = doc()
        assert len(XPath("//shelf//book").evaluate_navigational(tree)) == 3

    def test_child_predicate(self):
        tree = doc()
        # books with an author child: one
        assert len(XPath("//book[author]").evaluate_navigational(tree)) == 1

    def test_descendant_predicate(self):
        tree = doc()
        # shelves with any descendant author: one
        assert len(XPath("//shelf[.//author]").evaluate_navigational(tree)) == 1

    def test_wildcard_step(self):
        tree = doc()
        # any element directly containing a title
        result = XPath("//*[title]").evaluate_navigational(tree)
        tags = sorted(tree.tags[n] for n in result)
        assert tags == ["book", "book", "book", "lib"]


class TestJoinEvaluation:
    @pytest.mark.parametrize(
        "path",
        [
            "//a//b",
            "//a/b",
            "//a/b//c",
            "//a[b]",
            "//a[.//c]/b",
            "//*[c]",
            "//a//b[c]",
        ],
    )
    def test_matches_navigational_on_random_trees(self, path):
        for seed in range(4):
            tree = random_tree(400, seed=seed, tags=("a", "b", "c"))
            binarize(tree)
            xpath = XPath(path)
            expected = sorted(
                tree.codes[n] for n in xpath.evaluate_navigational(tree)
            )
            got = xpath.evaluate_with_joins(tree, brute_force_join)
            assert got == expected, (seed, path)

    def test_realistic_document(self):
        tree = doc()
        for path in ("//shelf/book", "//shelf//book", "//lib/shelf/box/book",
                     "//shelf[box]//title"):
            xpath = XPath(path)
            expected = sorted(
                tree.codes[n] for n in xpath.evaluate_navigational(tree)
            )
            assert xpath.evaluate_with_joins(tree, brute_force_join) == expected

    def test_framework_join_function(self):
        """The join hook also works with a real disk-backed algorithm."""
        from repro import (
            BufferManager, DiskManager, ElementSet, JoinSink,
            StackTreeDescJoin,
        )

        tree = random_tree(300, seed=9, tags=("a", "b", "c"))
        encoding = binarize(tree)
        disk = DiskManager()
        bufmgr = BufferManager(disk, 16)

        def join(a_codes, d_codes):
            a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
            d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height)
            sink = JoinSink("collect")
            StackTreeDescJoin().run(a_set, d_set, sink)
            a_set.destroy()
            d_set.destroy()
            return sink.pairs

        xpath = XPath("//a/b[c]")
        expected = sorted(
            tree.codes[n] for n in xpath.evaluate_navigational(tree)
        )
        assert xpath.evaluate_with_joins(tree, join) == expected
