"""Property tests for updates: Lemma 3/4 invariants survive relabels.

tests/test_update.py covers the mechanics of each update path (free
slot, sibling overflow, growth, delete).  This suite pins the *coding
invariants* instead: whatever sequence of inserts, deletes, local
relabels and tree growths hypothesis generates, the surviving nodes'
codes must still agree with the data tree under all three equivalent
formulations of containment —

* Lemma 1: ``is_ancestor`` (the F-function test),
* Lemma 3: proper region containment (``Region.contains``),
* Lemma 4: the prefix-code bit-prefix relation —

and document order among survivors must never change (the "durable
numbering" property that makes PBiTree updates cheap).
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.core.binarize import binarize
from repro.core.codec import NestedIntervalCodec, PBiTreeCodec
from repro.core.update import UpdatableEncoding
from repro.datatree.builder import random_tree

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def prefix_ancestor_or_self(a: int, d: int) -> bool:
    """Lemma 4 as documented on :func:`repro.core.pbitree.prefix_of`."""
    ha, hd = pt.height_of(a), pt.height_of(d)
    return ha >= hd and (
        pt.prefix_of(d) >> (ha - hd + 1) == pt.prefix_of(a) >> 1
    )


def storm(updatable, tree, rng, steps):
    """Random insert/delete mix (same shape as test_update's storm)."""
    for _ in range(steps):
        live = [n for n in range(len(tree)) if updatable.is_alive(n)]
        if rng.random() < 0.7 or len(live) < 3:
            updatable.insert_child(rng.choice(live), "n")
        else:
            non_root = [n for n in live if tree.parents[n] >= 0]
            if non_root:
                updatable.delete_subtree(rng.choice(non_root))


class TestLemmaEquivalence:
    @given(seed=st.integers(0, 1000), initial=st.integers(2, 50))
    @settings(max_examples=15, deadline=None)
    def test_storm_preserves_all_three_formulations(self, seed, initial):
        tree = random_tree(initial, seed=seed)
        updatable = UpdatableEncoding(binarize(tree))
        rng = random.Random(seed)
        storm(updatable, tree, rng, 100)
        updatable.validate()
        live = [n for n in range(len(tree)) if updatable.is_alive(n)]
        for _ in range(200):
            u, v = rng.choice(live), rng.choice(live)
            cu, cv = tree.codes[u], tree.codes[v]
            truth = tree.is_ancestor(u, v)
            assert pt.is_ancestor(cu, cv) == truth
            assert pt.region_of(cu).contains(pt.region_of(cv)) == truth
            assert prefix_ancestor_or_self(cu, cv) == (
                truth or u == v
            )

    @given(seed=st.integers(0, 500), initial=st.integers(2, 40))
    @settings(max_examples=15, deadline=None)
    def test_storm_preserves_document_order(self, seed, initial):
        tree = random_tree(initial, seed=seed)
        updatable = UpdatableEncoding(binarize(tree))
        rng = random.Random(seed)
        survivors = list(range(len(tree)))
        before = {n: tree.codes[n] for n in survivors}
        order_before = sorted(survivors, key=lambda n: pt.doc_order_key(before[n]))
        storm(updatable, tree, rng, 80)
        alive = [n for n in survivors if updatable.is_alive(n)]
        order_after = sorted(
            alive, key=lambda n: pt.doc_order_key(tree.codes[n])
        )
        assert order_after == [n for n in order_before if n in set(alive)]


class TestRoundTrips:
    @given(seed=st.integers(0, 500), initial=st.integers(3, 40))
    @settings(max_examples=15, deadline=None)
    def test_fast_path_insert_delete_restores_codes(self, seed, initial):
        """A free-slot insert touches no other code; deleting it again
        restores the exact pre-insert assignment and frees its slot."""
        tree = random_tree(initial, seed=seed)
        updatable = UpdatableEncoding(binarize(tree))
        rng = random.Random(seed)
        before = {
            n: tree.codes[n]
            for n in range(len(tree))
            if updatable.is_alive(n)
        }
        relabels_before = (
            updatable.stats.local_relabels + updatable.stats.global_relabels
        )
        parent = rng.choice(sorted(before))
        node = updatable.insert_child(parent, "x")
        relabelled = (
            updatable.stats.local_relabels + updatable.stats.global_relabels
        ) > relabels_before
        if not relabelled:
            # the fast path: everyone else's code is untouched
            for n, code in before.items():
                assert tree.codes[n] == code
            new_code = tree.codes[node]
            assert updatable.node_of(new_code) == node
            updatable.delete_subtree(node)
            assert updatable.node_of(new_code) is None
            for n, code in before.items():
                assert tree.codes[n] == code
            updatable.validate()

    @given(seed=st.integers(0, 500), fanout=st.integers(3, 10))
    @settings(max_examples=15, deadline=None)
    def test_forced_relabel_keeps_invariants(self, seed, fanout):
        """Overflowing one parent's sibling level forces local relabels
        (and possibly growth); containment among the pre-existing nodes
        must be exactly what it was."""
        tree = random_tree(20, max_fanout=3, seed=seed)
        updatable = UpdatableEncoding(binarize(tree))
        rng = random.Random(seed)
        originals = list(range(len(tree)))
        truth = {
            (u, v): tree.is_ancestor(u, v)
            for u in originals
            for v in originals
        }
        parent = rng.choice(originals)
        for _ in range(2 ** fanout + 1):
            updatable.insert_child(parent, "kid")
        assert (
            updatable.stats.local_relabels + updatable.stats.tree_growths > 0
        )
        updatable.validate()
        for (u, v), expected in truth.items():
            assert (
                pt.is_ancestor(tree.codes[u], tree.codes[v]) == expected
            )
            assert (
                pt.region_of(tree.codes[u]).contains(
                    pt.region_of(tree.codes[v])
                )
                == expected
            )

    @given(seed=st.integers(0, 500), delta=st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_growth_is_a_pure_shift(self, seed, delta):
        """Growing by ``delta`` multiplies every live code by 2**delta —
        heights shift uniformly, so Lemma 3/4 relations are literally
        unchanged bit patterns."""
        tree = random_tree(30, seed=seed)
        updatable = UpdatableEncoding(binarize(tree))
        before = {
            n: tree.codes[n]
            for n in range(len(tree))
            if updatable.is_alive(n)
        }
        updatable._grow_tree(delta)
        for n, code in before.items():
            assert tree.codes[n] == code << delta
            assert pt.height_of(tree.codes[n]) == pt.height_of(code) + delta
        updatable.validate()


# ----------------------------------------------------------------------
# the storage-backed path: update log + page patches, joined mid-storm
# ----------------------------------------------------------------------
def _join_pairs(bufmgr, a_codes, d_codes, tree_height):
    """Containment-join two code lists through the paged operators."""
    from repro import ElementSet, JoinSink, StackTreeDescJoin

    a_set = ElementSet.from_codes(bufmgr, list(a_codes), tree_height, "so.A")
    d_set = ElementSet.from_codes(bufmgr, list(d_codes), tree_height, "so.D")
    sink = JoinSink("collect")
    StackTreeDescJoin().run(a_set, d_set, sink)
    a_set.destroy()
    d_set.destroy()
    return sorted(sink.pairs)


@pytest.mark.parametrize(
    "codec", [PBiTreeCodec(), NestedIntervalCodec()], ids=lambda c: c.name
)
class TestStorageBackedStorm:
    """Inserts/deletes/growth interleaved with containment joins over
    the persisted element sets, differentially checked against a
    from-scratch rebuild after every burst."""

    def test_joins_between_bursts_match_rebuild(self, codec):
        from repro import BufferManager, DiskManager, JoinSink, StackTreeDescJoin
        from repro.storage import DocumentStore, ElementSet

        tree = random_tree(50, seed=31, tags=("a", "b", "c"))
        encoding = codec.encode(tree, min_height=8)
        bufmgr = BufferManager(DiskManager(page_size=512), 48)
        store = DocumentStore(bufmgr, encoding, name="storm")
        for tag in ("a", "b", "c"):
            store.element_set(tag)
        rng = random.Random(CHAOS_SEED + 31)
        for burst in range(6):
            storm(encoding, tree, rng, 40)
            encoding.validate()
            for tag in ("a", "b"):
                store.verify(tag)
            # join through the incrementally maintained sets ...
            a_set = store.element_set("a")
            d_set = store.element_set("b")
            sink = JoinSink("collect")
            StackTreeDescJoin().run(a_set, d_set, sink)
            # ... and through sets rebuilt from the live encoding
            expected = _join_pairs(
                bufmgr,
                (
                    tree.codes[n]
                    for n in tree.iter_by_tag("a")
                    if encoding.is_alive(n)
                ),
                (
                    tree.codes[n]
                    for n in tree.iter_by_tag("b")
                    if encoding.is_alive(n)
                ),
                encoding.tree_height,
            )
            assert sorted(sink.pairs) == expected, f"burst {burst} diverged"

    def test_chaos_faults_mid_update_storm(self, codec):
        """Transient read/write faults while the update log is being
        applied: the buffer pool retries absorb every fault and the
        patched pages stay byte-equivalent to a clean rebuild."""
        from repro.storage import (
            BufferManager,
            DiskManager,
            DocumentStore,
            FaultConfig,
            FaultInjector,
            RetryPolicy,
        )

        tree = random_tree(40, seed=17, tags=("a", "b"))
        encoding = codec.encode(tree, min_height=8)
        injector = FaultInjector(
            FaultConfig(
                seed=CHAOS_SEED + 17,
                read_error_rate=0.05,
                write_error_rate=0.03,
                torn_page_rate=0.03,
            )
        )
        # floor of one guaranteed mid-update fault, whatever the seed
        injector.schedule("read-error", at=3)
        # tiny pages + tiny pool: evictions force real disk traffic
        # mid-apply, so the probabilistic faults have operations to land on
        disk = DiskManager(page_size=64, checksums=True, faults=injector)
        bufmgr = BufferManager(disk, 4, retry=RetryPolicy(max_attempts=6))
        store = DocumentStore(bufmgr, encoding, name="chaos")
        for tag in ("a", "b"):
            store.element_set(tag)
        rng = random.Random(CHAOS_SEED + 17)
        for _ in range(5):
            storm(encoding, tree, rng, 30)
            store.flush()  # log application runs under injection
        encoding.validate()
        for tag in ("a", "b"):
            store.verify(tag)
            assert sorted(store.element_set(tag).scan()) == sorted(
                tree.codes[n]
                for n in tree.iter_by_tag(tag)
                if encoding.is_alive(n)
            )
        assert injector.stats.total_injected > 0, (
            f"chaos run injected nothing (seed {CHAOS_SEED + 17})"
        )
        assert disk.stats.retries > 0
        assert disk.stats.giveups == 0
