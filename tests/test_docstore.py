"""Tests for the storage-backed incremental update pipeline."""

import dataclasses
import random

import pytest

from repro.core import pbitree as pt
from repro.core.codec import NestedIntervalCodec, PBiTreeCodec
from repro.datatree.builder import random_tree, tree_from_spec
from repro.experiments.harness import run_lineup
from repro.index import StaleIndexError
from repro.index.bptree import BPlusTree
from repro.index.flat import FlatStartIndex, flat_scope
from repro.obs import MetricsRegistry
from repro.storage import (
    BufferManager,
    DiskManager,
    DocumentStore,
    ElementSet,
    UpdateLogRecord,
)

ALL_CODECS = [PBiTreeCodec(), NestedIntervalCodec()]


def make_bench(page_size=256, num_pages=64):
    return BufferManager(DiskManager(page_size=page_size), num_pages=num_pages)


def make_store(codec, num_nodes=60, seed=11, min_height=8, page_size=256):
    tree = random_tree(num_nodes, seed=seed)
    encoding = codec.encode(tree, min_height=min_height)
    bufmgr = make_bench(page_size=page_size)
    return tree, encoding, DocumentStore(bufmgr, encoding, name="doc")


def live_codes_by_tag(tree, encoding, tag):
    return [
        tree.codes[node]
        for node in tree.iter_by_tag(tag)
        if encoding.is_alive(node)
    ]


def run_storm(tree, encoding, rng, steps):
    """Random insert/delete mix biased to trigger relabels and growth."""
    for _ in range(steps):
        live = [n for n in range(len(tree)) if encoding.is_alive(n)]
        if rng.random() < 0.6 or len(live) < 5:
            encoding.insert_child(rng.choice(live), rng.choice("abcd"))
        else:
            non_root = [n for n in live if tree.parents[n] >= 0]
            encoding.delete_subtree(rng.choice(non_root))


class TestMaterialization:
    def test_matches_tree_tag_content_and_order(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        for tag in sorted(set(tree.tags)):
            elements = store.element_set(tag)
            assert elements.to_list() == live_codes_by_tag(tree, encoding, tag)
            assert elements.tree_height == encoding.tree_height
            store.verify(tag)

    def test_known_heights_exact(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        elements = store.element_set("a")
        expected = {pt.height_of(c) for c in live_codes_by_tag(tree, encoding, "a")}
        assert elements.heights() == expected

    def test_tag_materialized_after_updates_catches_up(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        run_storm(tree, encoding, random.Random(5), 60)
        # never touched before the storm: built from the current state
        for tag in sorted(set(tree.tags)):
            assert store.element_set(tag).to_list() == live_codes_by_tag(
                tree, encoding, tag
            )


class TestPagePatches:
    def test_insert_appends_one_record(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        elements = store.element_set("a")
        before = len(elements)
        node = encoding.insert_child(tree.root, "a")
        assert store.pending_updates("a") >= 1
        assert len(store.element_set("a")) == before + 1
        assert tree.codes[node] in store.element_set("a").to_list()
        store.verify("a")

    def test_delete_is_one_page_local_and_keeps_pages_dense(self):
        tree, encoding, store = make_store(PBiTreeCodec(), num_nodes=120)
        elements = store.element_set("a")
        pages_before = elements.num_pages
        victims = [
            n
            for n in tree.iter_by_tag("a")
            if tree.parents[n] >= 0 and not tree.children[n]
        ]
        encoding.delete_subtree(victims[0])
        elements = store.element_set("a")
        # empty slack lives only at page tails: every page's scan length
        # matches its header count, and no record moved across pages
        assert elements.num_pages == pages_before
        store.verify("a")

    def test_relabel_patches_in_place(self):
        # a chain keeps sibling groups tiny: inserting second children
        # forces local relabels without growing the file
        spec = ("r", [("a", [("a", [("a", [])])])])
        tree = tree_from_spec(spec)
        encoding = PBiTreeCodec().encode(tree, min_height=10)
        store = DocumentStore(make_bench(), encoding, name="doc")
        elements = store.element_set("a")
        pages_before = elements.num_pages
        for _ in range(6):
            encoding.insert_child(tree.root, "a")
        assert encoding.stats.local_relabels > 0
        store.verify("a")
        assert store.element_set("a").num_pages >= pages_before

    def test_grow_rewrites_pages_without_adding_any(self):
        tree, encoding, store = make_store(PBiTreeCodec(), num_nodes=120)
        elements = store.element_set("a")
        pages_before = elements.num_pages
        height_before = elements.tree_height
        codes_before = elements.to_list()
        deltas = []
        encoding.listeners.append(
            lambda e: deltas.append(e.delta) if e.kind == "grow" else None
        )
        while not deltas:  # deepen until the code space must grow
            deepest = max(
                (n for n in range(len(tree)) if encoding.is_alive(n)),
                key=lambda n: pt.level_of(tree.codes[n], encoding.tree_height),
            )
            encoding.insert_child(deepest, "x")
        store.flush()
        delta = sum(deltas)
        elements = store.element_set("a")
        assert elements.num_pages == pages_before
        assert elements.tree_height == height_before + delta
        assert elements.to_list() == [c << delta for c in codes_before]
        store.verify("a")

    def test_grow_past_code_space_raises(self):
        tree = tree_from_spec(("r", [("a", [])]))
        encoding = PBiTreeCodec().encode(tree, min_height=60)
        store = DocumentStore(make_bench(page_size=1024), encoding, name="doc")
        store.element_set("a")
        # a growth that would push codes past the 63-bit record format
        store._tags["a"].pending.append(UpdateLogRecord("grow", delta=5))
        with pytest.raises(ValueError, match="63-bit"):
            store.flush()


class TestIndexMaintenance:
    def test_pointer_bptree_is_patched_in_place(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        index = store.start_index("a")
        assert isinstance(index, BPlusTree)
        node = encoding.insert_child(tree.root, "a")
        code = tree.codes[node]
        assert store.start_index("a") is index
        assert code in list(index.search(pt.start_of(code)))
        encoding.delete_subtree(node)
        assert store.start_index("a") is index
        assert code not in list(index.search(pt.start_of(code)))

    def test_growth_retires_pointer_bptree(self):
        tree, encoding, store = make_store(PBiTreeCodec(), min_height=4)
        index = store.start_index("a")
        grew = []
        encoding.listeners.append(
            lambda e: grew.append(e) if e.kind == "grow" else None
        )
        while not grew:
            deepest = max(
                (n for n in range(len(tree)) if encoding.is_alive(n)),
                key=lambda n: pt.level_of(tree.codes[n], encoding.tree_height),
            )
            encoding.insert_child(deepest, "x")
        fresh = store.start_index("a")
        assert fresh is not index
        with pytest.raises(StaleIndexError):
            index.search(0)

    def test_interval_index_retired_on_any_update(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        index = store.interval_index("a")
        node = encoding.insert_child(tree.root, "a")
        fresh = store.interval_index("a")
        assert fresh is not index
        with pytest.raises(StaleIndexError):
            list(index.stab(pt.start_of(tree.codes[node])))
        # the rebuilt index covers the new element
        start = pt.start_of(tree.codes[node])
        assert any(p == tree.codes[node] for _s, _e, p in fresh.stab(start))

    def test_flat_start_index_retired_on_any_update(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        with flat_scope(True):
            index = store.start_index("a")
            assert isinstance(index, FlatStartIndex)
            encoding.insert_child(tree.root, "a")
            fresh = store.start_index("a")
            assert fresh is not index
            with pytest.raises(StaleIndexError):
                index.search(0)

    def test_rebuild_counters_recorded(self):
        metrics = MetricsRegistry()
        tree = random_tree(60, seed=11)
        encoding = PBiTreeCodec().encode(tree, min_height=8)
        store = DocumentStore(
            make_bench(), encoding, name="doc", metrics=metrics
        )
        store.interval_index("a")
        encoding.insert_child(tree.root, "a")
        store.element_set("a")
        values = metrics.as_dict()
        assert values["docstore.applied.insert"] >= 1
        assert values["docstore.index_rebuilds.interval"] == 1


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestStormOracle:
    """Differential oracle: the maintained store vs a fresh rebuild."""

    def test_storm_store_matches_encoding(self, codec):
        tree, encoding, store = make_store(codec, num_nodes=40, seed=3)
        for tag in sorted(set(tree.tags)):
            store.element_set(tag)
        run_storm(tree, encoding, random.Random(7), 200)
        encoding.validate()
        for tag in store.tags():
            store.verify(tag)
            assert sorted(store.element_set(tag).scan()) == sorted(
                live_codes_by_tag(tree, encoding, tag)
            )

    def test_compact_restores_fresh_layout(self, codec):
        tree, encoding, store = make_store(codec, num_nodes=40, seed=3)
        for tag in sorted(set(tree.tags)):
            store.element_set(tag)
        run_storm(tree, encoding, random.Random(9), 150)
        store.compact()
        for tag in store.tags():
            elements = store.element_set(tag)
            fresh = ElementSet.from_codes(
                elements.bufmgr,
                live_codes_by_tag(tree, encoding, tag),
                encoding.tree_height,
                name="fresh",
            )
            assert list(elements.scan_pages()) == list(fresh.scan_pages())
            assert elements.known_heights == fresh.known_heights

    def test_lineup_reports_identical_to_rebuild(self, codec):
        """Figure 6(b) acceptance: after an update storm, the standard
        algorithm line-up produces field-for-field identical JoinReports
        whether the inputs come from the incrementally-maintained store
        or a from-scratch rebuild."""
        tree, encoding, store = make_store(codec, num_nodes=50, seed=21)
        for tag in sorted(set(tree.tags)):
            store.element_set(tag)
        run_storm(tree, encoding, random.Random(21), 120)
        store.flush()
        store.compact()

        maintained = {
            tag: store.element_set(tag).to_list() for tag in ("a", "b")
        }
        rebuilt = {
            tag: live_codes_by_tag(tree, encoding, tag) for tag in ("a", "b")
        }

        def normalize(result):
            return [
                dataclasses.replace(r.report, wall_seconds=0.0, trace=None)
                for r in result.results
            ]

        lineup_kwargs = dict(
            buffer_pages=40, page_size=512, single_height=False
        )
        from_store = run_lineup(
            "store",
            maintained["a"],
            maintained["b"],
            encoding.tree_height,
            **lineup_kwargs,
        )
        from_rebuild = run_lineup(
            "rebuild",
            rebuilt["a"],
            rebuilt["b"],
            encoding.tree_height,
            **lineup_kwargs,
        )
        assert from_store.result_count == from_rebuild.result_count
        assert normalize(from_store) == normalize(from_rebuild)


class TestLogLifecycle:
    def test_flush_drains_all_tags(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        for tag in sorted(set(tree.tags)):
            store.element_set(tag)
        encoding.insert_child(tree.root, "a")
        encoding.insert_child(tree.root, "b")
        assert store.pending_updates() >= 2
        applied = store.flush()
        assert applied >= 2
        assert store.pending_updates() == 0

    def test_detach_stops_logging(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        store.element_set("a")
        store.detach()
        encoding.insert_child(tree.root, "a")
        assert store.pending_updates() == 0

    def test_repr_mentions_pending(self):
        tree, encoding, store = make_store(PBiTreeCodec())
        store.element_set("a")
        encoding.insert_child(tree.root, "a")
        assert "pending=1" in repr(store)
