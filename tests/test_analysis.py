"""Tests for the repro.analysis invariant checker suite.

The pin-discipline, code-domain, and annotations checkers deliberately
skip files that live under a ``tests`` directory, so the known-bad
fixtures are copied into a neutral temporary project before checking.
The exports checker runs everywhere and is exercised in place.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import all_checkers, run_checks
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def checkers_named(*names: str):
    picked = [checker for checker in all_checkers() if checker.name in names]
    assert len(picked) == len(names)
    return picked


def copy_fixtures(tmp_path: Path, *names: str) -> Path:
    """Copy fixtures into a directory whose path triggers no exemptions."""
    proj = tmp_path / "proj"
    proj.mkdir(exist_ok=True)
    for name in names:
        shutil.copy(FIXTURES / name, proj / name)
    return proj


def locations(findings, checker: str) -> set[tuple[int, int]]:
    return {(f.line, f.col) for f in findings if f.checker == checker}


# ---------------------------------------------------------------------------
# pin-discipline


def test_pin_bad_exact_locations(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "pin_bad.py")
    findings, errors = run_checks([proj], checkers_named("pin-discipline"))
    assert not errors
    assert locations(findings, "pin-discipline") == {
        (5, 12),
        (12, 12),
        (21, 16),
        (28, 12),
    }


def test_pin_good_is_clean(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "pin_good.py")
    findings, errors = run_checks([proj], checkers_named("pin-discipline"))
    assert not errors
    assert findings == []


def test_pin_checker_skips_test_files(tmp_path: Path) -> None:
    nested = tmp_path / "tests"
    nested.mkdir()
    shutil.copy(FIXTURES / "pin_bad.py", nested / "pin_bad.py")
    findings, _ = run_checks([nested], checkers_named("pin-discipline"))
    assert findings == []


def test_pin_regression_pr1_new_node_shape(tmp_path: Path) -> None:
    # The pre-fix _new_node from the B+-tree: new_page pinned, counter
    # bumped, frame returned with the unpin on the straight-line path
    # only.  The checker must flag the new_page call.
    source = (
        "class Tree:\n"
        "    def _new_node(self, is_leaf):\n"
        "        frame = self.bufmgr.new_page()\n"
        "        self.num_nodes += 1\n"
        "        node = (frame.page_id, is_leaf)\n"
        "        self.bufmgr.unpin(frame.page_id, dirty=True)\n"
        "        return node\n"
    )
    path = tmp_path / "regress.py"
    path.write_text(source)
    findings, errors = run_checks([path], checkers_named("pin-discipline"))
    assert not errors
    assert len(findings) == 1
    assert (findings[0].line, findings[0].col) == (3, 16)


# ---------------------------------------------------------------------------
# view-escape


def test_view_bad_exact_locations(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "view_bad.py")
    findings, errors = run_checks([proj], checkers_named("view-escape"))
    assert not errors
    assert locations(findings, "view-escape") == {
        (7, 8),    # attribute store of a raw view
        (11, 8),   # attribute store of a derived sub-view (slice)
        (15, 4),   # returned from a non-producer
        (20, 8),   # yielded from a non-producer
        (25, 8),   # .append() into a container
        (29, 11),  # list() over a borrowed-view scan
        (33, 11),  # comprehension collecting views
        (39, 8),   # closure capturing the loop view
        (48, 4),   # subscript store through an alias
    }


def test_view_good_is_clean(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "view_good.py")
    findings, errors = run_checks([proj], checkers_named("view-escape"))
    assert not errors
    assert findings == []


def test_view_checker_skips_test_files(tmp_path: Path) -> None:
    nested = tmp_path / "tests"
    nested.mkdir()
    shutil.copy(FIXTURES / "view_bad.py", nested / "view_bad.py")
    findings, _ = run_checks([nested], checkers_named("view-escape"))
    assert findings == []


def test_view_regression_cursor_cache_shape(tmp_path: Path) -> None:
    # The bug class the sanitizer exists for: SetCursor._load_page
    # caching the *raw* page view instead of read_page_array's copy.
    # The checker must flag the attribute store.
    source = (
        "class Cursor:\n"
        "    def _load_page(self, heap, codec, frame):\n"
        "        self._page = read_record_array(frame.data, codec)\n"
    )
    path = tmp_path / "cursor_impl.py"
    path.write_text(source)
    findings, _ = run_checks([tmp_path], checkers_named("view-escape"))
    assert locations(findings, "view-escape") == {(3, 8)}


# ---------------------------------------------------------------------------
# span-discipline


def test_span_bad_exact_locations(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "span_bad.py")
    findings, errors = run_checks([proj], checkers_named("span-discipline"))
    assert not errors
    assert locations(findings, "span-discipline") == {
        (5, 4),    # dropped on the floor
        (9, 11),   # manual __enter__ with a straight-line __exit__
        (17, 15),  # self.trace(...) result never entered
    }


def test_span_good_is_clean(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "span_good.py")
    findings, errors = run_checks([proj], checkers_named("span-discipline"))
    assert not errors
    assert findings == []


# ---------------------------------------------------------------------------
# code-domain


def test_domain_bad_exact_lines(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "domain_bad.py")
    findings, errors = run_checks([proj], checkers_named("code-domain"))
    assert not errors
    assert {f.line for f in findings} == {6, 12, 17, 21}


def test_domain_good_is_clean(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "domain_good.py")
    findings, errors = run_checks([proj], checkers_named("code-domain"))
    assert not errors
    assert findings == []


def test_domain_checker_exempts_core(tmp_path: Path) -> None:
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    shutil.copy(FIXTURES / "domain_bad.py", core / "pbitree_impl.py")
    findings, _ = run_checks([core], checkers_named("code-domain"))
    assert findings == []


# ---------------------------------------------------------------------------
# exports (runs on test files too, so no copy needed)


def test_exports_bad_exact_locations() -> None:
    findings, errors = run_checks(
        [FIXTURES / "exports_bad.py"], checkers_named("exports")
    )
    assert not errors
    assert {(f.line, f.checker) for f in findings} == {
        (3, "exports"),
        (10, "exports"),
    }
    messages = sorted(f.message for f in findings)
    assert "ghost_name" in messages[0]
    assert "undeclared_fn" in messages[1]


# ---------------------------------------------------------------------------
# annotations


def test_annotations_bad_exact_lines(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "annotations_bad.py")
    findings, errors = run_checks([proj], checkers_named("annotations"))
    assert not errors
    assert {f.line for f in findings} == {4, 8, 13}
    partial = next(f for f in findings if f.line == 8)
    assert "height" in partial.message
    assert "code" not in partial.message.split(":")[-1]


# ---------------------------------------------------------------------------
# suppression comments


def test_wildcard_suppression(tmp_path: Path) -> None:
    path = tmp_path / "wild.py"
    path.write_text(
        "def f(bufmgr, page_id, code):\n"
        "    frame = bufmgr.pin(page_id)  # repro: allow[*]\n"
        "    return frame, code >> 1  # repro: allow[code-domain]\n"
    )
    findings, errors = run_checks(
        [path], checkers_named("pin-discipline", "code-domain")
    )
    assert not errors
    assert findings == []


def test_suppression_is_line_scoped(tmp_path: Path) -> None:
    path = tmp_path / "scoped.py"
    path.write_text(
        "def f(bufmgr, a, b):  # repro: allow[pin-discipline]\n"
        "    frame = bufmgr.pin(a)\n"
        "    return frame\n"
    )
    findings, _ = run_checks([path], checkers_named("pin-discipline"))
    assert len(findings) == 1
    assert findings[0].line == 2


# ---------------------------------------------------------------------------
# the real tree must be clean


def test_src_tree_has_no_findings() -> None:
    findings, errors = run_checks([REPO_ROOT / "src"], all_checkers())
    assert errors == []
    assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# CLI


def test_cli_clean_tree_exits_zero(tmp_path: Path) -> None:
    proj = copy_fixtures(tmp_path, "pin_good.py", "domain_good.py")
    argv = ["--checker", "pin-discipline", "--checker", "code-domain", str(proj)]
    assert main(argv) == 0


def test_cli_findings_exit_one(tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
    proj = copy_fixtures(tmp_path, "pin_bad.py")
    assert main(["--checker", "pin-discipline", str(proj)]) == 1
    captured = capsys.readouterr()
    assert "pin_bad.py:5:12" in captured.out
    assert "4 findings" in captured.err


def test_cli_missing_path_exits_two(tmp_path: Path) -> None:
    assert main([str(tmp_path / "does-not-exist")]) == 2


def test_cli_unknown_checker_exits_two(tmp_path: Path) -> None:
    assert main(["--checker", "nonsense", str(tmp_path)]) == 2


def test_cli_parse_error_exits_two(tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    assert main([str(bad)]) == 2
    assert "broken.py" in capsys.readouterr().err


def test_cli_list_checkers(capsys: pytest.CaptureFixture) -> None:
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("pin-discipline", "code-domain", "exports", "annotations"):
        assert name in out


# ---------------------------------------------------------------------------
# mypy gate (only when the tool is available; the container may not have it)


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_rejects_domain_misuse() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", str(FIXTURES / "typing_misuse.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode != 0
    assert result.stdout.count("error:") >= 3
