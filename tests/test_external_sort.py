"""Tests for external merge sort."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.sort.external_sort import (
    external_sort,
    external_sort_set,
    merge_cost_estimate,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager
from repro.storage.elementset import ElementSet, SortOrder
from repro.storage.heapfile import HeapFile
from repro.storage.record import CODE


def make_env(frames=4, page_size=128):
    disk = DiskManager(page_size=page_size)
    return disk, BufferManager(disk, frames)


class TestExternalSort:
    @given(st.lists(st.integers(0, 2**40), max_size=800), st.integers(3, 8))
    @settings(max_examples=20, deadline=None)
    def test_matches_builtin_sorted(self, values, frames):
        _disk, bufmgr = make_env(frames=frames)
        heap = HeapFile.from_records(bufmgr, CODE, [(v,) for v in values])
        result = external_sort(heap, key=lambda r: r[0])
        assert [r[0] for r in result.scan()] == sorted(values)

    def test_multi_pass_merge(self):
        """Enough runs to force more than one merge pass (fan-in 2)."""
        _disk, bufmgr = make_env(frames=3, page_size=128)
        values = list(range(1000, 0, -1))
        heap = HeapFile.from_records(bufmgr, CODE, [(v,) for v in values])
        result = external_sort(heap, key=lambda r: r[0], buffer_pages=3)
        assert [r[0] for r in result.scan()] == sorted(values)

    def test_stability_on_equal_keys(self):
        from repro.storage.record import PAIR
        _disk, bufmgr = make_env()
        records = [(1, i) for i in range(100)] + [(0, i) for i in range(100)]
        heap = HeapFile.from_records(bufmgr, PAIR, records)
        result = external_sort(heap, key=lambda r: r[0])
        got = list(result.scan())
        assert got[:100] == [(0, i) for i in range(100)]
        assert got[100:] == [(1, i) for i in range(100)]

    def test_empty_input(self):
        _disk, bufmgr = make_env()
        heap = HeapFile(bufmgr, CODE)
        result = external_sort(heap, key=lambda r: r[0])
        assert list(result.scan()) == []

    def test_destroy_input(self):
        disk, bufmgr = make_env()
        heap = HeapFile.from_records(bufmgr, CODE, [(v,) for v in range(200)])
        result = external_sort(heap, key=lambda r: r[0], destroy_input=True)
        assert heap.num_pages == 0
        assert len(result) == 200
        # only the sorted output remains allocated
        assert disk.num_allocated == result.num_pages

    def test_too_few_buffers_rejected(self):
        _disk, bufmgr = make_env(frames=4)
        heap = HeapFile(bufmgr, CODE)
        with pytest.raises(ValueError):
            external_sort(heap, key=lambda r: r[0], buffer_pages=2)

    def test_io_charged(self):
        """Sorting from cold data costs at least 2 x pages (read+write)."""
        disk, bufmgr = make_env(frames=3, page_size=128)
        heap = HeapFile.from_records(bufmgr, CODE, [(v,) for v in range(600)])
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()
        external_sort(heap, key=lambda r: r[0], buffer_pages=3)
        snapshot = disk.stats.snapshot()
        assert snapshot.reads >= heap.num_pages
        assert snapshot.writes >= heap.num_pages


class TestExternalSortSet:
    def test_document_order(self):
        _disk, bufmgr = make_env()
        codes = [20, 1, 16, 18, 24, 17, 3]
        elements = ElementSet.from_codes(bufmgr, codes, 5)
        result = external_sort_set(elements)
        assert result.to_list() == sorted(codes, key=pt.doc_order_key)
        assert result.sorted_by == SortOrder.START

    def test_ancestors_precede_descendants_on_tied_start(self):
        _disk, bufmgr = make_env()
        # 16 (root), 8, 4, 2, 1 all share Start = 1
        elements = ElementSet.from_codes(bufmgr, [1, 4, 16, 2, 8], 5)
        result = external_sort_set(elements)
        assert result.to_list() == [16, 8, 4, 2, 1]


class TestCostEstimate:
    def test_zero_pages(self):
        assert merge_cost_estimate(0, 10) == 0

    def test_single_pass(self):
        # fits in the buffer: one read+write pass
        assert merge_cost_estimate(8, 10) == 16

    def test_two_pass(self):
        # 90 pages, 10 buffers -> 9 runs -> one merge pass (fan-in 9)
        assert merge_cost_estimate(90, 10) == 2 * 90 * 2

    def test_three_pass(self):
        # 100 pages, 10 buffers -> 10 runs > fan-in 9 -> two merge passes
        assert merge_cost_estimate(100, 10) == 2 * 100 * 3

    def test_grows_with_less_memory(self):
        assert merge_cost_estimate(1000, 5) > merge_cost_estimate(1000, 50)
