"""Tests for the ContainmentDatabase façade and the CLI."""

import pytest

from repro.db import ContainmentDatabase
from repro.datatree.builder import tree_from_spec
from repro.workloads import dblp

XML = """
<library>
  <shelf id="top">
    <book><title>Alpha</title><author>X</author></book>
    <book><title>Beta</title></book>
  </shelf>
  <shelf id="bottom">
    <box><book><title>Gamma</title></book></box>
  </shelf>
</library>
"""


class TestLoading:
    def test_load_xml(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        assert len(doc.tree) > 10
        assert db.document("lib") is doc

    def test_duplicate_name_rejected(self):
        db = ContainmentDatabase()
        db.load_xml(XML, name="lib")
        with pytest.raises(ValueError):
            db.load_xml(XML, name="lib")

    def test_bad_optimizer_mode_rejected(self):
        with pytest.raises(ValueError):
            ContainmentDatabase(optimizer="magic")


class TestElementSets:
    def test_sets_are_cached(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        first = db.element_set(doc, "book")
        second = db.element_set(doc, "book")
        assert first is second
        assert len(first) == 3

    def test_missing_tag_gives_empty_set(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        assert len(db.element_set(doc, "nothing")) == 0


class TestQueries:
    def test_two_step_query(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        result = db.query(doc, "//shelf//title")
        titles = sorted(
            child.text
            for node in result
            for child in node.children
            if child.tag == "#text"
        )
        assert titles == ["Alpha", "Beta", "Gamma"]
        assert len(result.reports) == 1

    def test_three_step_query(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        result = db.query(doc, "//shelf//box//book")
        assert len(result) == 1
        assert result.reports and result.total_io >= 0

    def test_query_matches_navigation(self):
        db = ContainmentDatabase(buffer_pages=16)
        tree = dblp.generate_tree(num_publications=300, seed=7)
        doc = db.load_tree(tree, name="dblp")
        from repro.datatree.paths import PathQuery

        for path in ("//article//author", "//inproceedings//cite//label"):
            expected = sorted(PathQuery(path).evaluate_navigational(tree))
            got = sorted(node.code for node in db.query(doc, path))
            assert got == expected, path

    def test_forced_direction(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        top_down = db.query(doc, "//shelf//box//book", direction="top-down")
        bottom_up = db.query(doc, "//shelf//box//book", direction="bottom-up")
        assert sorted(n.code for n in top_down) == sorted(
            n.code for n in bottom_up
        )

    def test_cost_based_mode(self):
        db = ContainmentDatabase(optimizer="cost")
        doc = db.load_xml(XML, name="lib")
        result = db.query(doc, "//shelf//book")
        assert len(result) == 3

    def test_indexes_steer_the_planner(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        db.create_start_index(doc, "title")
        result = db.query(doc, "//book//title")
        assert result.reports[0].algorithm == "INLJN"

    def test_explain_text(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        text = db.explain(doc, "//shelf//book//title")
        assert text.count("step //") == 2
        assert "VPJ" in text


class TestUpdatesThroughDb:
    def test_insert_then_query(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        assert len(db.query(doc, "//shelf//book")) == 3
        shelf = next(doc.tree.iter_by_tag("shelf"))
        book = db.insert_element(doc, shelf, "book")
        db.insert_element(doc, book, "title")
        assert len(db.query(doc, "//shelf//book")) == 4

    def test_delete_then_query(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        victim = next(doc.tree.iter_by_tag("box"))
        removed = db.delete_element(doc, victim)
        assert removed >= 2
        assert len(db.query(doc, "//shelf//book")) == 2

    def test_update_maintains_start_index(self):
        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        index = db.create_start_index(doc, "book")
        shelf = next(doc.tree.iter_by_tag("shelf"))
        db.insert_element(doc, shelf, "book")
        # the pointer B+-tree is patched in place, not rebuilt, and the
        # query sees the 4th book through it
        assert db.create_start_index(doc, "book") is index
        assert len(db.query(doc, "//shelf//book")) == 4

    def test_update_retires_interval_index(self):
        from repro.index import StaleIndexError

        db = ContainmentDatabase()
        doc = db.load_xml(XML, name="lib")
        index = db.create_interval_index(doc, "book")
        shelf = next(doc.tree.iter_by_tag("shelf"))
        db.insert_element(doc, shelf, "book")
        # static by contract: old reference raises, accessor rebuilds
        assert db.create_interval_index(doc, "book") is not index
        with pytest.raises(StaleIndexError):
            list(index.stab(1))
        assert len(db.query(doc, "//shelf//book")) == 4

    def test_codec_selection_per_database_and_document(self):
        db = ContainmentDatabase(codec="nested-intervals")
        doc = db.load_xml(XML, name="lib")
        assert type(doc.updatable).__name__ == "NestedIntervalEncoding"
        doc2 = db.load_xml(XML, name="lib2", codec="pbitree")
        assert type(doc2.updatable).__name__ == "UpdatableEncoding"
        for d in (doc, doc2):
            assert len(db.query(d, "//shelf//book")) == 3

    def test_updates_through_db_on_nested_intervals(self):
        db = ContainmentDatabase(codec="nested-intervals")
        doc = db.load_xml(XML, name="lib")
        shelf = next(doc.tree.iter_by_tag("shelf"))
        book = db.insert_element(doc, shelf, "book")
        db.insert_element(doc, book, "title")
        assert doc.updatable.stats.relabelled_nodes == 0
        assert len(db.query(doc, "//shelf//book")) == 4
        db.delete_element(doc, book)
        assert len(db.query(doc, "//shelf//book")) == 3


class TestCLI:
    @pytest.fixture()
    def xml_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(XML)
        return str(path)

    def test_encode(self, xml_file, capsys):
        from repro.__main__ import main

        assert main(["encode", xml_file, "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "PBiTree height" in out and "library" in out

    def test_query(self, xml_file, capsys):
        from repro.__main__ import main

        assert main(["query", xml_file, "//shelf//title"]) == 0
        out = capsys.readouterr().out
        assert out.count("<title>") == 3

    def test_explain(self, xml_file, capsys):
        from repro.__main__ import main

        assert main(["explain", xml_file, "//shelf//book"]) == 0
        assert "plan" in capsys.readouterr().out

    def test_stats(self, xml_file, capsys):
        from repro.__main__ import main

        assert main(["stats", xml_file]) == 0
        out = capsys.readouterr().out
        assert "coding space" in out and "occupancy" in out

    def test_save_and_image_query(self, xml_file, tmp_path, capsys):
        from repro.__main__ import main

        image = str(tmp_path / "lib.pbit")
        assert main(["save", xml_file, image]) == 0
        capsys.readouterr()
        assert main(["image-query", image, "//shelf//title"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3  # three titles

    def test_save_selected_tags(self, xml_file, tmp_path, capsys):
        from repro.__main__ import main

        image = str(tmp_path / "partial.pbit")
        assert main(["save", xml_file, image, "--tags", "book,title"]) == 0
        capsys.readouterr()
        assert main(["image-query", image, "//book//title"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_image_query_unknown_tag_fails_cleanly(
        self, xml_file, tmp_path, capsys
    ):
        from repro.__main__ import main

        image = str(tmp_path / "lib.pbit")
        main(["save", xml_file, image, "--tags", "book"])
        capsys.readouterr()
        assert main(["image-query", image, "//book//nothing"]) == 1
        assert "not in the image" in capsys.readouterr().err

    def test_extended_query_through_cli(self, xml_file, capsys):
        from repro.__main__ import main

        assert main(["query", xml_file, "//shelf/book"]) == 0
        out = capsys.readouterr().out
        assert out.count("<book>") == 2  # boxed book excluded

    def test_update_bench(self, tmp_path, capsys):
        import json

        from repro.__main__ import main
        from repro.obs.export import validate_bench_summary

        out_path = tmp_path / "BENCH_updates.json"
        assert main([
            "update-bench", "--updates", "120", "--nodes", "80",
            "--bench-out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        # one table row per registered codec, both backends present
        assert "pbitree" in out and "nested-intervals" in out
        summary = json.loads(out_path.read_text())
        assert validate_bench_summary(summary) == []
        assert summary["metrics"]["updates.pbitree.operations"] == 120.0

    def test_update_bench_unknown_codec(self, capsys):
        from repro.__main__ import main

        assert main(["update-bench", "--codec", "nope"]) == 1
        assert "nope" in capsys.readouterr().err


class TestIOVisibility:
    def test_io_stats_property(self):
        db = ContainmentDatabase(buffer_pages=4, page_size=128)
        tree = tree_from_spec(
            ("r", [("a", [("b", [])]) for _ in range(200)])
        )
        doc = db.load_tree(tree, name="big")
        db.query(doc, "//a//b")
        assert db.io_stats.total >= 0
        assert "ContainmentDatabase" in repr(db)
