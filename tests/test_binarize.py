"""Tests for BinarizeTree (Algorithm 1) and the embedding contract."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.core.binarize import binarize, levels_for_tree, placement_k
from repro.core.encoding import EncodingError
from repro.datatree.builder import random_tree, tree_from_spec
from repro.datatree.node import DataTree


class TestPlacementK:
    def test_matches_paper_example(self):
        # "suppose a node A has three child nodes ... two levels below"
        assert placement_k(3) == 2

    def test_single_child_still_descends(self):
        # the child must sit strictly below its parent
        assert placement_k(1) == 1

    def test_powers_of_two(self):
        assert placement_k(2) == 1
        assert placement_k(4) == 2
        assert placement_k(5) == 3
        assert placement_k(8) == 3
        assert placement_k(9) == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            placement_k(0)


class TestPaperFigure3:
    """The worked binarization of Figure 1(b) -> Figure 3."""

    def tree(self) -> DataTree:
        # &1 with three children &2, &3, &4 (shapes of Figure 1(b))
        return tree_from_spec(
            ("person", [  # &1
                ("name", []),     # &2
                ("age", []),      # &3
                ("contact", []),  # &4
            ])
        )

    def test_root_code_is_16(self):
        tree = self.tree()
        encoding = binarize(tree, min_height=5)
        # "the PBiTree code for the root node is G(0,0) = 16"
        assert tree.codes[0] == 16
        assert encoding.tree_height == 5

    def test_children_two_levels_down(self):
        tree = self.tree()
        binarize(tree, min_height=5)
        # children at top-down codes (2,0), (2,1), (2,2): G -> 4, 12, 20
        assert tree.codes[1:] == [4, 12, 20]
        assert tree.codes[1:] == [
            pt.g_code(0, 2, 5), pt.g_code(1, 2, 5), pt.g_code(2, 2, 5)
        ]


class TestLevelsForTree:
    def test_root_only(self):
        tree = DataTree()
        tree.add_root("r")
        levels, alphas, height = levels_for_tree(tree)
        assert levels == [0] and alphas == [0] and height == 1

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            levels_for_tree(DataTree())

    def test_chain_tree_height(self):
        tree = DataTree()
        node = tree.add_root("r")
        for _ in range(9):
            node = tree.add_child(node, "c")
        _levels, _alphas, height = levels_for_tree(tree)
        assert height == 10  # one level per chain link

    def test_sibling_alphas_contiguous(self):
        tree = DataTree()
        root = tree.add_root("r")
        for _ in range(4):
            tree.add_child(root, "c")
        _levels, alphas, _height = levels_for_tree(tree)
        assert alphas[1:] == [0, 1, 2, 3]


class TestBinarizeContract:
    @given(st.integers(min_value=1, max_value=400), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_random_trees_validate(self, num_nodes, seed):
        tree = random_tree(num_nodes, seed=seed)
        encoding = binarize(tree, validate=True)  # raises on violation
        assert encoding.tree_height >= 1

    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(0, 5),
        st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_ancestor_relation_preserved_exactly(self, num_nodes, seed, fanout):
        """The embedding h preserves ancestorship in both directions."""
        tree = random_tree(num_nodes, max_fanout=fanout, seed=seed)
        binarize(tree)
        import random
        rng = random.Random(seed)
        for _ in range(min(300, num_nodes * 3)):
            u = rng.randrange(num_nodes)
            v = rng.randrange(num_nodes)
            assert tree.is_ancestor(u, v) == pt.is_ancestor(
                tree.codes[u], tree.codes[v]
            )

    @given(st.integers(min_value=1, max_value=300), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_codes_are_distinct(self, num_nodes, seed):
        tree = random_tree(num_nodes, seed=seed)
        binarize(tree)
        assert len(set(tree.codes)) == num_nodes

    def test_min_height_padding(self):
        tree = tree_from_spec(("a", [("b", [])]))
        encoding = binarize(tree, min_height=20)
        assert encoding.tree_height == 20
        assert tree.codes[0] == pt.root_code(20)

    def test_deep_chain_does_not_recurse(self):
        """The iterative binarizer survives a 50k-deep chain."""
        tree = DataTree()
        node = tree.add_root("r")
        for _ in range(50_000):
            node = tree.add_child(node, "c")
        encoding = binarize(tree)
        assert encoding.tree_height == 50_001

    def test_document_order_matches_doc_order_key(self):
        """Pre-order of the data tree == doc_order_key order of codes."""
        tree = random_tree(300, seed=7)
        binarize(tree)
        preorder_codes = [tree.codes[n] for n in tree.iter_preorder()]
        assert preorder_codes == sorted(preorder_codes, key=pt.doc_order_key)


class TestEncodingValidation:
    def test_detects_duplicate_codes(self):
        tree = tree_from_spec(("a", [("b", []), ("c", [])]))
        encoding = binarize(tree)
        tree.codes[2] = tree.codes[1]
        with pytest.raises(EncodingError):
            encoding.validate()

    def test_detects_non_dominating_parent(self):
        tree = tree_from_spec(("a", [("b", [])]))
        encoding = binarize(tree)
        tree.codes[1] = tree.codes[0]  # child "above" its parent
        with pytest.raises(EncodingError):
            encoding.validate()

    def test_detects_interloper_on_path(self):
        # c's PBiTree path to its parent (the root) must not pass through
        # its *sibling* b — move c's code under b's subtree to violate it
        tree = tree_from_spec(("a", [("b", []), ("c", [])]))
        encoding = binarize(tree, min_height=6)
        assert pt.height_of(tree.codes[1]) > 0
        tree.codes[2] = pt.left_child_of(tree.codes[1])
        with pytest.raises(EncodingError):
            encoding.validate()
