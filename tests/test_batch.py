"""Differential tests for the batched execution hot path.

The batched kernels (:mod:`repro.core.batch`), the zero-copy page
decode (:meth:`RecordCodec.unpack_array`, ``scan_code_arrays``) and the
batched cursor API (``next_batch`` / ``iter_batches`` / ``seek``) all
keep their scalar counterparts alive as a differential oracle.  This
suite pins the contract: *identical* results — same values, same order,
same JoinReport accounting — whether batching is on or off.

Boundary codes (height 0 leaves at the far right of the coding space,
the height-62 root of a maximal tree) ride along in every random array
so the 63-bit packing tricks are exercised at their edges.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    FaultConfig,
    FaultInjector,
    JoinSink,
    RetryPolicy,
    binarize,
    random_tree,
)
from repro.core import batch, pbitree as pt
from repro.experiments.harness import make_lineup, run_lineup
from repro.storage import sanitize
from repro.join.cursor import SetCursor
from repro.storage.record import CODE, MAX_CODE_BITS, PAIR, RecordCodec

MAX_CODE = (1 << MAX_CODE_BITS) - 1

#: edges of the coding space: the smallest leaf, the lowest inner nodes,
#: the root of a height-62 (maximal) tree, and the rightmost leaf
BOUNDARY_CODES = [1, 2, 3, 1 << 62, (1 << 62) + (1 << 61), MAX_CODE]

code_arrays = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=MAX_CODE),
        st.sampled_from(BOUNDARY_CODES),
    ),
    max_size=50,
)


# ----------------------------------------------------------------------
# kernel vs scalar pbitree oracle
# ----------------------------------------------------------------------
class TestKernelsMatchScalar:
    @given(codes=code_arrays)
    @settings(max_examples=60, deadline=None)
    def test_unary_kernels(self, codes):
        assert batch.heights(codes) == [pt.height_of(c) for c in codes]
        assert batch.starts(codes) == [pt.start_of(c) for c in codes]
        assert batch.ends(codes) == [pt.end_of(c) for c in codes]
        assert batch.regions(codes) == [pt.region_of(c) for c in codes]
        assert batch.prefixes(codes) == [pt.prefix_of(c) for c in codes]

    @given(codes=code_arrays, height=st.integers(0, 62))
    @settings(max_examples=60, deadline=None)
    def test_rollup_kernels(self, codes, height):
        eligible = [c for c in codes if pt.height_of(c) <= height]
        assert batch.rollup(eligible, height) == [
            pt.f_ancestor(c, height) for c in eligible
        ]
        assert batch.rollup_pairs(codes, height) == [
            (pt.f_ancestor(c, height), c)
            if pt.height_of(c) < height
            else (c, c)
            for c in codes
        ]
        # SHCJ probe keys: F(c, height) below the class, 0 (no key) at
        # or above it — the scalar key function returns None there
        assert batch.probe_keys(codes, height) == [
            pt.f_ancestor(c, height) if pt.height_of(c) < height else 0
            for c in codes
        ]

    @given(codes=code_arrays)
    @settings(max_examples=60, deadline=None)
    def test_doc_order_keys_are_order_equivalent(self, codes):
        packed = batch.doc_order_keys(codes)
        tuples = [pt.doc_order_key(c) for c in codes]
        for (pa, ta), (pb, tb) in zip(
            zip(packed, tuples), list(zip(packed, tuples))[1:]
        ):
            assert (pa < pb) == (ta < tb)
            assert (pa == pb) == (ta == tb)

    @given(codes=code_arrays)
    @settings(max_examples=60, deadline=None)
    def test_sort_doc_order(self, codes):
        assert batch.sort_doc_order(codes) == sorted(
            codes, key=pt.doc_order_key
        )

    @given(codes=code_arrays, anchor=st.integers(1, MAX_CODE))
    @settings(max_examples=60, deadline=None)
    def test_containment_kernels(self, codes, anchor):
        descendants = [c for c in codes if pt.is_ancestor(anchor, c)]
        ancestors = [c for c in codes if pt.is_ancestor(c, anchor)]
        assert batch.descendants_in(anchor, codes) == descendants
        assert batch.ancestors_in(anchor, codes) == ancestors
        assert batch.count_matches(anchor, codes) == len(descendants)

    @given(
        codes=code_arrays,
        low=st.integers(0, MAX_CODE),
        high=st.integers(0, MAX_CODE),
    )
    @settings(max_examples=30, deadline=None)
    def test_range_filter(self, codes, low, high):
        assert batch.range_filter(codes, low, high) == [
            c for c in codes if low <= c <= high
        ]


# ----------------------------------------------------------------------
# zero-copy record decode
# ----------------------------------------------------------------------
class TestRecordDecode:
    @given(
        codes=st.lists(st.integers(0, MAX_CODE), max_size=40),
        arity=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_many_unpack_array_roundtrip(self, codes, arity):
        codec = RecordCodec(arity)
        records = [
            tuple(codes[i : i + arity])
            for i in range(0, len(codes) - arity + 1, arity)
        ]
        payload = codec.pack_many(records)
        assert payload == b"".join(codec.pack(r) for r in records)
        flat = codec.unpack_array(payload, len(records))
        assert list(flat) == [field for r in records for field in r]

    def test_unpack_array_is_a_view(self):
        payload = bytearray(CODE.pack_many([(7,), (9,)]))
        view = CODE.unpack_array(payload, 2)
        if isinstance(view, memoryview):
            payload[0] = 8  # mutating the page mutates the view
            assert view[0] == 8
            view.release()

    def test_pack_many_accepts_generator(self):
        records = [(i, i + 1) for i in range(5)]
        assert PAIR.pack_many(iter(records)) == PAIR.pack_many(records)


def make_set(codes, tree_height, frames=8, page_size=128, name="S"):
    disk = DiskManager(page_size=page_size)
    bufmgr = BufferManager(disk, frames)
    return ElementSet.from_codes(bufmgr, codes, tree_height, name)


class TestPageDecode:
    @given(codes=code_arrays)
    @settings(max_examples=25, deadline=None)
    def test_scan_code_arrays_matches_scan_pages(self, codes):
        elements = make_set(codes, 62)
        scalar = [c for page in elements.scan_pages() for c in page]
        batched = [c for page in elements.scan_code_arrays() for c in page]
        assert batched == scalar == codes

    @pytest.mark.parametrize("codes", [[], [5], BOUNDARY_CODES])
    def test_edge_page_shapes(self, codes):
        """Empty sets, a single-record page, and boundary codes."""
        elements = make_set(codes, 62)
        assert [
            c for page in elements.scan_code_arrays() for c in page
        ] == codes
        assert elements.to_list() == codes


# ----------------------------------------------------------------------
# batched cursor vs scalar advance()
# ----------------------------------------------------------------------
def cursor_inputs():
    return st.tuples(
        st.lists(st.integers(1, MAX_CODE), min_size=0, max_size=60),
        st.integers(1, 17),
    )


class TestBatchedCursor:
    @given(inputs=cursor_inputs())
    @settings(max_examples=30, deadline=None)
    def test_next_batch_matches_advance(self, inputs):
        codes, size = inputs
        elements = make_set(codes, 62)
        scalar, batched = SetCursor(elements), SetCursor(elements)
        while True:
            expected = []
            for _ in range(size):
                if scalar.current is None:
                    break
                expected.append(scalar.current)
                scalar.advance()
            got = batched.next_batch(size)
            assert got == expected
            assert batched.current == scalar.current
            assert batched.exhausted == scalar.exhausted
            if not got:
                break

    @given(inputs=cursor_inputs())
    @settings(max_examples=30, deadline=None)
    def test_iter_batches_covers_the_set(self, inputs):
        codes, size = inputs
        elements = make_set(codes, 62)
        flat = [
            c for chunk in SetCursor(elements).iter_batches(size) for c in chunk
        ]
        assert flat == codes
        # size 0 falls back to page-at-a-time chunks
        flat = [
            c for chunk in SetCursor(elements).iter_batches(0) for c in chunk
        ]
        assert flat == codes

    @given(inputs=cursor_inputs(), skip=st.integers(0, 70))
    @settings(max_examples=30, deadline=None)
    def test_save_restore_mid_batch(self, inputs, skip):
        codes, size = inputs
        elements = make_set(codes, 62)
        cursor = SetCursor(elements)
        cursor.next_batch(skip)
        mark = cursor.save()
        first = cursor.next_batch(size)
        cursor.restore(mark)
        assert cursor.next_batch(size) == first

    @given(codes=st.lists(st.integers(1, MAX_CODE), max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_seek_matches_advance(self, codes):
        elements = make_set(codes, 62)
        scalar, seeking = SetCursor(elements), SetCursor(elements)
        while scalar.current is not None:
            scalar.advance()
            seeking.seek(seeking.slot + 1)
            assert seeking.current == scalar.current

    @pytest.mark.parametrize("batch_size", [0, 3, 1024])
    def test_fault_replay_through_batched_cursor(self, batch_size):
        """Transient read faults replay identically under batching."""
        rng = random.Random(11)
        codes = [rng.randrange(1, MAX_CODE) for _ in range(300)]

        def scan(faults):
            disk = DiskManager(page_size=128, checksums=True, faults=faults)
            bufmgr = BufferManager(disk, 4, retry=RetryPolicy())
            elements = ElementSet.from_codes(bufmgr, codes, 62, "F")
            bufmgr.flush_all()
            bufmgr.evict_all()
            with batch.batch_scope(batch_size):
                cursor = SetCursor(elements)
                out = []
                while True:
                    chunk = cursor.next_batch(7)
                    if not chunk:
                        return out, disk
                    out.extend(chunk)

        quiet, _ = scan(None)
        noisy, disk = scan(
            FaultInjector(
                FaultConfig(seed=3, read_error_rate=0.1, torn_page_rate=0.05)
            )
        )
        assert noisy == quiet == codes
        assert disk.stats.retries > 0


# ----------------------------------------------------------------------
# buffer-pool frame recycling (satellite: dropped redundant page copy)
# ----------------------------------------------------------------------
class TestFrameRecycling:
    def test_frames_own_mutable_recycled_buffers(self):
        # Buffer recycling only exists with the view sanitizer off:
        # under REPRO_SANITIZE=1 evicted buffers are poisoned and
        # retired instead of reused, so pin the mode explicitly.
        with sanitize.sanitize_scope(False):
            disk = DiskManager(page_size=64)
            bufmgr = BufferManager(disk, 2)
            pages = []
            for fill in range(4):
                frame = bufmgr.new_page()
                frame.data[:] = bytes([fill]) * 64
                bufmgr.unpin(frame.page_id, dirty=True)
                pages.append(frame.page_id)

            # reloading an evicted page recycles the victim's buffer ...
            victim_buffers = {id(f.data) for f in bufmgr._frames.values()}
            frame = bufmgr.pin(pages[0])
            assert id(frame.data) in victim_buffers
            # ... and the frame still owns a mutable, correct bytearray
            assert isinstance(frame.data, bytearray)
            assert frame.data == bytes([0]) * 64
            frame.data[0] = 99
            bufmgr.unpin(pages[0], dirty=True)
            bufmgr.flush_all()
            bufmgr.evict_all()
            assert bufmgr.pin(pages[0]).data[0] == 99
            bufmgr.unpin(pages[0])

    def test_every_resident_page_roundtrips_after_churn(self):
        disk = DiskManager(page_size=64)
        bufmgr = BufferManager(disk, 3)
        pages = []
        for fill in range(10):
            frame = bufmgr.new_page()
            frame.data[:] = bytes([fill]) * 64
            bufmgr.unpin(frame.page_id, dirty=True)
            pages.append(frame.page_id)
        order = list(range(10)) * 3
        random.Random(7).shuffle(order)
        for fill in order:
            frame = bufmgr.pin(pages[fill])
            assert frame.data == bytes([fill]) * 64
            bufmgr.unpin(pages[fill])


# ----------------------------------------------------------------------
# end-to-end: JoinReports are field-for-field identical
# ----------------------------------------------------------------------
def normalize(report):
    return dataclasses.replace(report, wall_seconds=0.0, trace=None)


def lineup_inputs(single_height):
    tree = random_tree(300, max_fanout=5, seed=23)
    encoding = binarize(tree)
    rng = random.Random(9)
    a_codes = rng.sample(tree.codes, 160)
    d_codes = rng.sample(tree.codes, 200)
    if single_height:
        heights = batch.heights(a_codes)
        modal = max(set(heights), key=heights.count)
        a_codes = [c for c in a_codes if pt.height_of(c) == modal]
    return a_codes, d_codes, encoding.tree_height


class TestLineupDifferential:
    @pytest.mark.parametrize("single_height", [True, False])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_scalar_and_batched_reports_identical(
        self, single_height, workers
    ):
        a_codes, d_codes, tree_height = lineup_inputs(single_height)
        runs = {}
        for batch_size in (0, batch.DEFAULT_BATCH_SIZE):
            lineup = run_lineup(
                "diff",
                a_codes,
                d_codes,
                tree_height,
                buffer_pages=8,
                page_size=128,
                algorithms=make_lineup(single_height),
                collect=True,
                workers=workers,
                batch_size=batch_size,
            )
            runs[batch_size] = lineup
        scalar, batched = runs[0], runs[batch.DEFAULT_BATCH_SIZE]
        assert batched.result_count == scalar.result_count
        for s_result, b_result in zip(scalar.results, batched.results):
            assert b_result.name == s_result.name
            assert normalize(b_result.report) == normalize(s_result.report), (
                f"{s_result.name} diverges between scalar and batched runs"
            )

    def test_result_pairs_identical_in_order(self):
        """Emit *order*, not just the multiset, matches the scalar run."""
        a_codes, d_codes, tree_height = lineup_inputs(False)
        from repro import (
            MPMGJoin,
            MultiHeightRollupJoin,
            StackTreeDescJoin,
            VerticalPartitionJoin,
        )

        for cls in (
            MPMGJoin,
            StackTreeDescJoin,
            MultiHeightRollupJoin,
            VerticalPartitionJoin,
        ):
            pairs = {}
            for batch_size in (0, batch.DEFAULT_BATCH_SIZE):
                with batch.batch_scope(batch_size):
                    elements_a = make_set(a_codes, tree_height, name="A")
                    elements_d = ElementSet.from_codes(
                        elements_a.heap.bufmgr, d_codes, tree_height, "D"
                    )
                    sink = JoinSink("collect")
                    cls().run(elements_a, elements_d, sink)
                    pairs[batch_size] = list(sink.pairs)
            assert pairs[batch.DEFAULT_BATCH_SIZE] == pairs[0], cls.__name__


# ----------------------------------------------------------------------
# batch-size switch plumbing
# ----------------------------------------------------------------------
class TestBatchSwitch:
    def test_scope_nesting_restores(self):
        outer = batch.get_batch_size()
        with batch.batch_scope(0):
            assert not batch.batching_enabled()
            with batch.batch_scope(64):
                assert batch.get_batch_size() == 64
            assert batch.get_batch_size() == 0
        assert batch.get_batch_size() == outer

    def test_lineup_records_batch_size_gauge(self):
        from repro.obs.metrics import MetricsRegistry

        a_codes, d_codes, tree_height = lineup_inputs(False)
        metrics = MetricsRegistry()
        run_lineup(
            "gauge",
            a_codes,
            d_codes,
            tree_height,
            buffer_pages=8,
            page_size=128,
            algorithms=("STACKTREE",),
            metrics=metrics,
            batch_size=256,
        )
        assert metrics.gauge("batch.size").value == 256.0
