"""Tests for the XR-stack join (footnote [8])."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    JoinSink,
    binarize,
    brute_force_join,
    random_tree,
)
from repro.core import pbitree as pt
from repro.join.ancdes_b import AncDesBPlusJoin
from repro.join.inljn import build_start_index, build_xr_index
from repro.join.xrstack import XRStackJoin
from repro.workloads import synthetic as syn


def run_join(algorithm, a_codes, d_codes, tree_height, frames=16, page_size=128):
    disk = DiskManager(page_size=page_size)
    bufmgr = BufferManager(disk, frames)
    a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
    d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
    sink = JoinSink("collect")
    report = algorithm.run(a_set, d_set, sink)
    return sorted(sink.pairs), report, sink


class TestCorrectness:
    @given(
        st.integers(5, 500),
        st.integers(0, 2000),
        st.sampled_from([2, 3, 12]),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, num_nodes, seed, fanout):
        tree = random_tree(num_nodes, max_fanout=fanout, seed=seed)
        encoding = binarize(tree)
        rng = random.Random(seed)
        a_codes = rng.sample(tree.codes, max(1, num_nodes // 2))
        d_codes = rng.sample(tree.codes, max(1, num_nodes // 2))
        got, _report, _sink = run_join(
            XRStackJoin(), a_codes, d_codes, encoding.tree_height
        )
        assert got == sorted(brute_force_join(a_codes, d_codes))

    def test_output_in_descendant_order(self):
        tree = random_tree(600, seed=7)
        encoding = binarize(tree)
        rng = random.Random(7)
        _got, _report, sink = run_join(
            XRStackJoin(),
            rng.sample(tree.codes, 250),
            rng.sample(tree.codes, 250),
            encoding.tree_height,
        )
        keys = [pt.doc_order_key(d) for _a, d in sink.pairs]
        assert keys == sorted(keys)

    def test_empty_inputs(self):
        tree = random_tree(50, seed=8)
        encoding = binarize(tree)
        for a_codes, d_codes in (([], tree.codes), (tree.codes, []), ([], [])):
            got, _r, _s = run_join(
                XRStackJoin(), a_codes, d_codes, encoding.tree_height
            )
            assert got == []

    def test_leftmost_chain_ties(self):
        """The regression that uncovered the XR-tree tie-ordering bug:
        ancestors sharing their Start with descendants."""
        chain = [512, 608, 580, 578, 584]
        a_codes = [512, 608, 580, 578]
        d_codes = [608, 584, 512]
        got, _r, _s = run_join(XRStackJoin(), a_codes, d_codes, 12)
        assert got == sorted(brute_force_join(a_codes, d_codes))
        assert (608, 584) in got


class TestSkipping:
    def test_stab_count_reported(self):
        spec = syn.spec_by_name("SLLL", large=4000, small=400)
        dataset = syn.generate(spec, seed=4)
        _got, report, _sink = run_join(
            XRStackJoin(),
            dataset.a_codes,
            dataset.d_codes,
            dataset.tree_height,
            frames=24,
            page_size=1024,
        )
        assert report.notes.startswith("stabs:")
        assert report.result_count == dataset.num_results

    def test_prebuilt_indexes_skip_prep(self):
        tree = random_tree(300, seed=9)
        encoding = binarize(tree)
        disk = DiskManager()
        bufmgr = BufferManager(disk, 32)
        a_set = ElementSet.from_codes(bufmgr, tree.codes[:150], encoding.tree_height)
        d_set = ElementSet.from_codes(bufmgr, tree.codes[150:], encoding.tree_height)
        a_index = build_xr_index(a_set, bufmgr)
        d_index = build_start_index(d_set, bufmgr)
        report = XRStackJoin(a_index=a_index, d_index=d_index).run(
            a_set, d_set, JoinSink("count")
        )
        assert report.prep_io.total == 0

    def test_agrees_with_adb_on_low_selectivity(self):
        """The footnote's rivals must return identical results."""
        spec = syn.spec_by_name("MLSL", large=3000, small=300)
        dataset = syn.generate(spec, seed=5)
        xr_got, _r1, _s1 = run_join(
            XRStackJoin(), dataset.a_codes, dataset.d_codes,
            dataset.tree_height, frames=24, page_size=1024,
        )
        adb_got, _r2, _s2 = run_join(
            AncDesBPlusJoin(), dataset.a_codes, dataset.d_codes,
            dataset.tree_height, frames=24, page_size=1024,
        )
        assert xr_got == adb_got
        assert len(xr_got) == dataset.num_results
