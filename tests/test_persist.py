"""Tests for disk-image persistence and page checksums."""

import pytest

from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager, PageCorruptionError
from repro.storage.elementset import ElementSet
from repro.storage.persist import ImageFormatError, load_image, save_image


def build_disk_with_sets():
    disk = DiskManager(page_size=256)
    bufmgr = BufferManager(disk, 16)
    anc = ElementSet.from_codes(bufmgr, [16, 8, 24], 5, name="anc")
    desc = ElementSet.from_codes(bufmgr, list(range(1, 32, 2)), 5, name="desc")
    bufmgr.flush_all()
    return disk, bufmgr, {"anc": anc, "desc": desc}


class TestImageRoundTrip:
    def test_pages_survive(self, tmp_path):
        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)
        image = load_image(path)
        assert image.disk.page_size == 256
        assert image.disk.num_allocated == disk.num_allocated

    def test_catalog_restores_element_sets(self, tmp_path):
        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)
        image = load_image(path)
        assert set(image.element_sets) == {"anc", "desc"}
        anc = image.element_sets["anc"]
        assert anc.to_list() == [16, 8, 24]
        assert anc.tree_height == 5
        assert anc.known_heights == frozenset({3, 4})

    def test_joins_work_after_reload(self, tmp_path):
        from repro import JoinSink, StackTreeDescJoin, brute_force_join

        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)
        image = load_image(path, buffer_pages=8)
        sink = JoinSink("collect")
        StackTreeDescJoin().run(
            image.element_sets["anc"], image.element_sets["desc"], sink
        )
        expected = brute_force_join([16, 8, 24], list(range(1, 32, 2)))
        assert sorted(sink.pairs) == sorted(expected)

    def test_new_allocations_after_reload_do_not_collide(self, tmp_path):
        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)
        image = load_image(path)
        fresh = image.disk.allocate()
        assert fresh not in [
            pid for s in sets.values() for pid in s.heap.page_ids
        ]


class TestImageValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"NOPE" + bytes(100))
        with pytest.raises(ImageFormatError):
            load_image(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(b"PB")
        with pytest.raises(ImageFormatError):
            load_image(path)

    def test_corrupted_page_detected(self, tmp_path):
        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip a bit inside the last page
        path.write_bytes(bytes(blob))
        with pytest.raises(ImageFormatError):
            load_image(path)

    def test_corrupted_header_detected(self, tmp_path):
        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)
        blob = bytearray(path.read_bytes())
        blob[14] ^= 0xFF  # inside the JSON header
        path.write_bytes(bytes(blob))
        with pytest.raises(ImageFormatError):
            load_image(path)


class TestChecksummedDisk:
    def test_normal_operation(self):
        disk = DiskManager(page_size=128, checksums=True)
        pid = disk.allocate()
        disk.write(pid, b"\x05" * 128)
        assert disk.read(pid) == b"\x05" * 128

    def test_detects_silent_corruption(self):
        import zlib

        disk = DiskManager(page_size=128, checksums=True)
        pid = disk.allocate()
        disk.write(pid, b"\x05" * 128)
        disk._pages[pid] = b"\x06" * 128  # corrupt behind the API's back
        with pytest.raises(PageCorruptionError) as exc_info:
            disk.read(pid)
        error = exc_info.value
        assert error.page_id == pid
        assert error.operation == "read"
        assert error.expected_crc == zlib.crc32(b"\x05" * 128)
        assert error.actual_crc == zlib.crc32(b"\x06" * 128)
        assert error.transient  # a re-read *may* clear a torn transfer

    def test_fresh_page_reads_clean(self):
        disk = DiskManager(page_size=128, checksums=True)
        pid = disk.allocate()
        assert disk.read(pid) == bytes(128)

    def test_buffer_pool_over_checksummed_disk(self):
        disk = DiskManager(page_size=128, checksums=True)
        bufmgr = BufferManager(disk, 2)
        elements = ElementSet.from_codes(bufmgr, list(range(1, 200, 2)), 10)
        bufmgr.flush_all()
        bufmgr.evict_all()
        assert elements.to_list() == list(range(1, 200, 2))


class TestReloadedEngineFaults:
    """Checksums and fault injection on a disk reconstructed from an image."""

    def test_checksums_survive_reload(self, tmp_path):
        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)
        image = load_image(path, checksums=True)
        assert image.disk.checksums
        # runtime verification: corrupt a loaded page behind the API's back
        anc_page = image.element_sets["anc"].heap.page_ids[0]
        image.disk._pages[anc_page] = bytes(256)
        with pytest.raises(PageCorruptionError) as exc_info:
            image.disk.read(anc_page)
        assert exc_info.value.page_id == anc_page

    def test_fault_injection_on_reloaded_engine(self, tmp_path):
        from repro.storage.faults import FaultInjector, StorageFault

        disk, _bufmgr, sets = build_disk_with_sets()
        path = tmp_path / "db.pbit"
        save_image(disk, path, sets)

        injector = FaultInjector(seed=0)
        injector.schedule("read-error", at=1, permanent=True)
        image = load_image(path, checksums=True, faults=injector)
        with pytest.raises(StorageFault) as exc_info:
            image.element_sets["desc"].to_list()
        assert exc_info.value.operation == "read"
        assert exc_info.value.page_id is not None
