"""Tests for the from-scratch XML parser and serializer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatree.builder import random_tree
from repro.datatree.serialize import to_xml
from repro.datatree.xml_parser import XMLSyntaxError, parse_xml


class TestBasicParsing:
    def test_single_element(self):
        tree = parse_xml("<doc/>")
        assert len(tree) == 1 and tree.tags[0] == "doc"

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c/></b><d/></a>")
        assert [tree.tags[n] for n in tree.iter_preorder()] == ["a", "b", "c", "d"]
        assert tree.parents == [-1, 0, 1, 0]

    def test_text_content(self):
        tree = parse_xml("<a>hello</a>")
        assert tree.tags[1] == "#text" and tree.texts[1] == "hello"

    def test_whitespace_only_text_dropped(self):
        tree = parse_xml("<a>\n  <b/>\n</a>")
        assert [t for t in tree.tags] == ["a", "b"]

    def test_attributes_become_children(self):
        tree = parse_xml('<a x="1" y="two"/>')
        assert tree.tags[1:] == ["@x", "@y"]
        assert tree.texts[1:] == ["1", "two"]

    def test_keep_flags(self):
        tree = parse_xml('<a x="1">t</a>', keep_attributes=False, keep_text=False)
        assert len(tree) == 1

    def test_mixed_content(self):
        tree = parse_xml("<a>pre<b/>post</a>")
        assert [tree.tags[n] for n in tree.iter_preorder()] == [
            "a", "#text", "b", "#text"
        ]


class TestProlog:
    def test_declaration_and_doctype(self):
        tree = parse_xml('<?xml version="1.0"?><!DOCTYPE dblp><dblp/>')
        assert tree.tags == ["dblp"]

    def test_comments_everywhere(self):
        tree = parse_xml("<!-- head --><a><!-- in --><b/></a><!-- tail -->")
        assert tree.tags == ["a", "b"]

    def test_processing_instruction_in_content(self):
        tree = parse_xml("<a><?php echo ?><b/></a>")
        assert tree.tags == ["a", "b"]


class TestEntitiesAndCData:
    def test_standard_entities(self):
        tree = parse_xml("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert tree.texts[1] == "<>&'\""

    def test_numeric_entities(self):
        tree = parse_xml("<a>&#65;&#x42;</a>")
        assert tree.texts[1] == "AB"

    def test_entities_in_attributes(self):
        tree = parse_xml('<a t="&amp;x"/>')
        assert tree.texts[1] == "&x"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a>&nope;</a>")

    def test_cdata(self):
        tree = parse_xml("<a><![CDATA[<raw> & stuff]]></a>")
        assert tree.texts[1] == "<raw> & stuff"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "<a>",
            "<a></b>",
            "<a",
            "<a x=1/>",
            '<a x="1/>',
            "<a/><b/>",
            "<a><!-- no end </a>",
            "<a>&#xZZ;</a>",
            "plain text",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises((XMLSyntaxError, ValueError)):
            parse_xml(bad)

    def test_error_carries_position(self):
        try:
            parse_xml("<a></b>")
        except XMLSyntaxError as exc:
            assert exc.pos > 0
            assert "offset" in str(exc)


class TestSerializeRoundTrip:
    def test_simple_roundtrip(self):
        xml = "<a><b>text</b><c k=\"v\"/></a>"
        tree = parse_xml(xml)
        again = parse_xml(to_xml(tree))
        assert again.tags == tree.tags
        assert again.texts == tree.texts
        assert again.parents == tree.parents

    def test_escapes_roundtrip(self):
        tree = parse_xml('<a k="&quot;&amp;">x &lt; y</a>')
        again = parse_xml(to_xml(tree))
        assert again.texts == tree.texts

    @staticmethod
    def _canonical(tree, node):
        return (
            tree.tags[node],
            tree.texts[node],
            [TestSerializeRoundTrip._canonical(tree, c) for c in tree.children[node]],
        )

    @given(st.integers(1, 120), st.integers(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_random_structure_roundtrip(self, n, seed):
        """Structure survives the roundtrip (node ids may renumber)."""
        tree = random_tree(n, seed=seed)
        again = parse_xml(to_xml(tree))
        assert self._canonical(again, again.root) == self._canonical(tree, tree.root)

    def test_empty_tree_rejected(self):
        from repro.datatree.node import DataTree

        with pytest.raises(ValueError):
            to_xml(DataTree())


class TestScale:
    def test_parses_kilonode_document(self):
        parts = ["<root>"]
        for i in range(2000):
            parts.append(f'<item id="{i}"><name>n{i}</name></item>')
        parts.append("</root>")
        tree = parse_xml("".join(parts))
        # root + per item: item, @id, name, #text
        assert len(tree) == 1 + 2000 * 4
