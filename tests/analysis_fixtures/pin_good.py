"""Known-good pin patterns: none of these may be flagged."""


def guarded_by_finally(bufmgr, page_id):
    frame = bufmgr.pin(page_id)
    try:
        return frame.data[0]
    finally:
        bufmgr.unpin(page_id)


def guarded_with_reraise_wrapper(bufmgr, page_id):
    # the idiomatic heapfile shape: pin inside a fault-annotating
    # try/except-raise, the release in a following try/finally
    try:
        frame = bufmgr.pin(page_id)
    except OSError:
        raise
    try:
        return frame.data[0]
    finally:
        bufmgr.unpin(page_id)


def guarded_with_statement(bufmgr, page_id):
    with bufmgr.pin(page_id) as frame:
        return frame.data[0]


class Writer:
    def adopt(self, bufmgr):
        # ownership escape: the attribute holder releases it in close()
        self._frame = bufmgr.new_page()

    def close(self, bufmgr):
        bufmgr.unpin(self._frame.page_id, dirty=True)


def pin_inside_guarded_try(bufmgr, page_ids):
    total = 0
    try:
        for page_id in page_ids:
            frame = bufmgr.pin(page_id)
            total += frame.data[0]
    finally:
        for page_id in page_ids:
            bufmgr.unpin(page_id)
    return total


def suppressed_deliberately(bufmgr, page_id):
    frame = bufmgr.pin(page_id)  # repro: allow[pin-discipline]
    return frame
