"""Known-bad span patterns; line numbers asserted by test_analysis."""


def dropped_span(tracer):
    tracer.span("query")  # line 5: flagged — opened, never closed


def manual_enter_no_finally(tracer, work):
    span = tracer.span("work")  # line 9: flagged — __exit__ not in finally
    span.__enter__()
    work()
    span.__exit__(None, None, None)


class Algo:
    def trace_helper_leak(self):
        span = self.trace("phase")  # line 17: flagged — never entered
        span.set("k", 1)
        return 0
