"""Domain-type misuse that mypy --strict must reject.

Runtime-valid (NewTypes erase to int) but each marked line confuses two
code domains.  test_analysis runs mypy over this file, when available,
and asserts it reports errors.
"""

from repro.core.pbitree import (
    Height,
    PBiCode,
    RegionCode,
    f_ancestor,
    height_of,
    region_of,
)


def pass_region_as_code(code: PBiCode) -> Height:
    start, end = region_of(code)
    return height_of(start)  # error: RegionCode is not PBiCode


def pass_raw_int_as_code() -> Height:
    return height_of(12)  # error: int is not PBiCode


def swap_argument_order(code: PBiCode) -> PBiCode:
    h = height_of(code)
    return f_ancestor(h, code)  # error: arguments transposed


def return_wrong_domain(code: PBiCode) -> RegionCode:
    return code  # error: PBiCode is not RegionCode
