"""Known-good span patterns: none of these may be flagged."""


def with_statement(tracer):
    with tracer.span("lineup"):
        return 1


def assigned_then_with(tracer):
    root = tracer.span("join")
    with root:
        return 1


def manual_guarded(tracer, work):
    span = None
    if work:
        span = tracer.span("fanout")
        span.__enter__()
    try:
        return work()
    finally:
        if span is not None:
            span.__exit__(None, None, None)


class Algo:
    def trace(self, name):
        return self._tracer.span(name)  # ownership escapes to the caller

    def stash(self, tracer):
        self._span = tracer.span("bg")  # attribute: lifecycle elsewhere

    def suppressed(self, tracer):
        span = tracer.span("odd")  # repro: allow[span-discipline]
        return span.started
