"""Annotation gaps; line numbers asserted by test_analysis."""


def no_annotations(code, height):  # line 4: flagged
    return code + height


def partial(code: int, height) -> int:  # line 8: flagged (height only)
    return code + height


class PublicThing:
    def method(self, code):  # line 13: flagged
        return code

    def _internal(self, code):  # private: exempt
        return code


class _PrivateThing:
    def method(self, code):  # private class: exempt
        return code


def fully_typed(code: int, height: int) -> int:
    return code + height
