"""__all__ disagreements; line numbers asserted by test_analysis."""

__all__ = ["declared_fn", "ghost_name"]  # line 3: ghost_name flagged


def declared_fn():
    return 1


def undeclared_fn():  # line 10: flagged — public but not exported
    return 2


def _private_fn():
    return 3
