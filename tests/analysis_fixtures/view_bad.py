"""Known-bad view-lifetime patterns; line numbers asserted by test_analysis."""


class PageCache:
    def cache_raw_view(self, frame, codec):
        # attribute store of a borrowed view
        self._page = read_record_array(frame.data, codec)  # line 7: flagged

    def cache_slice(self, payload, codec):
        fields = codec.unpack_array(payload, 8)
        self._head = fields[:4]  # line 11: a sub-view is still a view


def return_raw_view(frame, codec):
    return read_record_array(frame.data, codec)  # line 15: flagged


def yield_raw_views(heap):
    for fields in heap.scan_page_arrays():
        yield fields  # line 20: flagged — not a sanctioned producer


def collect_views(heap, out):
    for fields in heap.scan_code_arrays():
        out.append(fields)  # line 25: flagged — container outlives pin


def materialise_scan(heap):
    return list(heap.scan_page_arrays())  # line 29: flagged


def comprehension_scan(heap):
    return [fields for fields in heap.scan_page_arrays()]  # line 33: flagged


def capture_in_closure(heap):
    for fields in heap.scan_page_arrays():

        def reader():  # line 39: flagged — closure captures the view
            return fields[0]

        yield reader


def alias_then_store(store, payload, codec):
    fields = codec.unpack_array(payload, 4)
    alias = fields
    store["page"] = alias  # line 48: flagged — taint flows through alias
