"""Bit arithmetic that must NOT be flagged outside core/."""


def non_code_bit_ops(value, k):
    # hash mixing and size arithmetic on non-code values is fine
    mixed = (value * 0x9E3779B97F4A7C15 >> 32) % k
    mask = (1 << 16) - 1
    return mixed & mask


def page_math(span_size, height):
    return span_size >> (height + 1)


def suppressed_code_op(code):
    return code >> 3  # repro: allow[code-domain]
