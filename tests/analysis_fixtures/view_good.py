"""Known-good view-lifetime patterns: none of these may be flagged."""


def consume_in_loop(heap, kernel):
    total = 0
    for fields in heap.scan_page_arrays():
        total += kernel(fields)  # call-arg consumption is in-contract
    return total


def copy_with_helper(frame, codec):
    fields = read_record_array(frame.data, codec)
    return owned_u64_array(fields)  # ownership taken: taint killed


def copy_with_extend(heap):
    out = []
    for fields in heap.scan_code_arrays():
        out.extend(fields)  # extend copies the elements (ints)
    return out


def copy_flag_scan(heap):
    # copy=True yields owning arrays, so collecting them is fine
    return list(heap.scan_page_arrays(copy=True))


def scalar_index_is_int(payload, codec):
    fields = codec.unpack_array(payload, 2)
    return fields[0]  # a scalar index extracts an int, not a view


def scan_page_arrays(heap):
    # a producer wrapper re-yields the borrow: the contract transfers
    for fields in heap.scan_page_arrays():
        yield fields


class Cursor:
    def load(self, heap, index):
        # read_page_array copies out of the pin; caching it is legal
        self._page = heap.read_page_array(index)

    def stash_waived(self, frame, codec):
        self._raw = read_record_array(frame.data, codec)  # repro: allow[view-escape]
