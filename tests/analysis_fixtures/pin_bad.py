"""Known-bad pin patterns; line numbers are asserted by test_analysis."""


def leak_on_fault(bufmgr, page_id):
    frame = bufmgr.pin(page_id)  # line 5: flagged — no guard at all
    value = frame.data[0]
    bufmgr.unpin(page_id)
    return value


def leak_new_page(pool):
    frame = pool.new_page()  # line 12: flagged — straight-line unpin only
    frame.data[0] = 1
    pool.unpin(frame.page_id, dirty=True)
    return frame.page_id


def leak_in_loop(heap):
    total = 0
    for page_id in heap.page_ids:
        frame = heap.bufmgr.pin(page_id)  # line 21: flagged
        total += frame.data[0]
        heap.bufmgr.unpin(page_id)
    return total


def leak_conditional_unpin(bufmgr, page_id, keep):
    frame = bufmgr.pin(page_id)  # line 28: flagged — unpin not on all paths
    if not keep:
        bufmgr.unpin(page_id)
    return frame
