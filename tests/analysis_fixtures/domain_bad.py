"""Known-bad code-domain patterns; line numbers asserted by test_analysis."""


def hand_rolled_f(code, height):
    shift = height + 1
    return ((code >> shift) << shift) | (1 << height)  # line 6: flagged


def hand_rolled_region(code, height):
    half = (1 << height) - 1
    start_code = code - half
    start_code &= ~1  # line 12: flagged (augmented form)
    return start_code


def trailing_zero_trick(code):
    return (code & -code).bit_length() - 1  # line 17: flagged


def prefix_by_shift(prefix_code, height):
    return prefix_code >> height  # line 21: flagged
