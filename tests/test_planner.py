"""Tests for the algorithm-selection framework (Table 1)."""

import random

import pytest

from repro import (
    AncDesBPlusJoin,
    BufferManager,
    DiskManager,
    ElementSet,
    FlatIntervalTree,
    FlatStartIndex,
    IndexNestedLoopJoin,
    JoinSink,
    MultiHeightRollupJoin,
    PBiTreeJoinFramework,
    SetProperties,
    SingleHeightJoin,
    SortOrder,
    StackTreeDescJoin,
    VerticalPartitionJoin,
    binarize,
    brute_force_join,
    choose_algorithm,
    random_tree,
)
from repro.core import pbitree as pt
from repro.index import flat
from repro.join.inljn import build_interval_index, build_start_index
from repro.workloads import synthetic as syn


def make_sets(a_codes, d_codes, tree_height, frames=8, **a_kwargs):
    disk = DiskManager(page_size=128)
    bufmgr = BufferManager(disk, frames)
    a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A", **a_kwargs)
    d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
    return a_set, d_set


class TestTable1Matrix:
    """The planner must realise the paper's Table 1 exactly."""

    def fixtures(self):
        tree = random_tree(300, seed=20)
        encoding = binarize(tree)
        rng = random.Random(0)
        a_codes = rng.sample(tree.codes, 100)
        d_codes = rng.sample(tree.codes, 100)
        return make_sets(a_codes, d_codes, encoding.tree_height, frames=32)

    def test_indexed_unsorted_uses_inljn(self):
        a_set, d_set = self.fixtures()
        index = build_start_index(d_set, d_set.bufmgr)
        algorithm = choose_algorithm(
            a_set,
            d_set,
            SetProperties(),
            SetProperties(start_index=index),
        )
        assert isinstance(algorithm, IndexNestedLoopJoin)

    def test_sorted_unindexed_uses_stacktree(self):
        a_set, d_set = self.fixtures()
        algorithm = choose_algorithm(
            a_set,
            d_set,
            SetProperties(sorted=True),
            SetProperties(sorted=True),
        )
        assert isinstance(algorithm, StackTreeDescJoin)

    def test_sorted_and_indexed_uses_adb(self):
        a_set, d_set = self.fixtures()
        a_index = build_start_index(a_set, a_set.bufmgr)
        d_index = build_start_index(d_set, d_set.bufmgr)
        algorithm = choose_algorithm(
            a_set,
            d_set,
            SetProperties(sorted=True, start_index=a_index),
            SetProperties(sorted=True, start_index=d_index),
        )
        assert isinstance(algorithm, AncDesBPlusJoin)
        assert algorithm.a_index is a_index

    def test_neither_single_height_uses_shcj(self):
        a_set, d_set = self.fixtures()
        algorithm = choose_algorithm(
            a_set,
            d_set,
            SetProperties(single_height=4),
            SetProperties(),
        )
        assert isinstance(algorithm, SingleHeightJoin)
        assert algorithm.height == 4

    def test_neither_small_uses_rollup(self):
        a_set, d_set = self.fixtures()
        algorithm = choose_algorithm(a_set, d_set)
        # 100 elements fit the 32-page pool: rollup chosen
        assert isinstance(algorithm, (MultiHeightRollupJoin, SingleHeightJoin))

    def test_neither_large_uses_vpj(self):
        spec = syn.spec_by_name("MLLL", large=6000, small=600)
        ds = syn.generate(spec, seed=9)
        a_set, d_set = make_sets(ds.a_codes, ds.d_codes, ds.tree_height, frames=4)
        algorithm = choose_algorithm(a_set, d_set)
        assert isinstance(algorithm, VerticalPartitionJoin)


class TestIndexUsability:
    """Regression: the "indexed" column of Table 1 only counts an index
    INLJN can actually probe — a Start B+-tree on D (outer = A) or a
    stab structure on A (outer = D).  The planner used to treat any
    index on either input as qualifying, returning an
    ``IndexNestedLoopJoin(d_index=None, a_index=None)`` that silently
    rebuilt both indexes from scratch inside the operator.
    """

    def fixtures(self):
        tree = random_tree(300, seed=20)
        encoding = binarize(tree)
        rng = random.Random(3)
        a_codes = rng.sample(tree.codes, 100)
        d_codes = rng.sample(tree.codes, 100)
        return make_sets(a_codes, d_codes, encoding.tree_height, frames=32)

    def test_wrong_type_indexes_fall_through_to_unindexed_cell(self):
        """A Start index on A plus a stab index on D serve no INLJN
        probe direction: plan as if unindexed (here: rollup/SHCJ)."""
        a_set, d_set = self.fixtures()
        a_start = build_start_index(a_set, a_set.bufmgr)
        d_stab = build_interval_index(d_set, d_set.bufmgr)
        algorithm = choose_algorithm(
            a_set,
            d_set,
            SetProperties(start_index=a_start),
            SetProperties(interval_index=d_stab),
        )
        assert not isinstance(algorithm, IndexNestedLoopJoin)
        assert isinstance(algorithm, (MultiHeightRollupJoin, SingleHeightJoin))

    def test_d_start_index_pins_outer_to_a(self):
        a_set, d_set = self.fixtures()
        d_index = build_start_index(d_set, d_set.bufmgr)
        algorithm = choose_algorithm(
            a_set, d_set, SetProperties(), SetProperties(start_index=d_index)
        )
        assert isinstance(algorithm, IndexNestedLoopJoin)
        assert algorithm.d_index is d_index
        assert algorithm.force_outer == "A"

    def test_a_stab_index_pins_outer_to_d(self):
        a_set, d_set = self.fixtures()
        a_index = build_interval_index(a_set, a_set.bufmgr)
        algorithm = choose_algorithm(
            a_set, d_set, SetProperties(interval_index=a_index), SetProperties()
        )
        assert isinstance(algorithm, IndexNestedLoopJoin)
        assert algorithm.a_index is a_index
        assert algorithm.force_outer == "D"

    def test_both_usable_indexes_unpinned(self):
        a_set, d_set = self.fixtures()
        a_index = build_interval_index(a_set, a_set.bufmgr)
        d_index = build_start_index(d_set, d_set.bufmgr)
        algorithm = choose_algorithm(
            a_set,
            d_set,
            SetProperties(interval_index=a_index),
            SetProperties(start_index=d_index),
        )
        assert isinstance(algorithm, IndexNestedLoopJoin)
        assert algorithm.d_index is d_index
        assert algorithm.a_index is a_index
        assert algorithm.force_outer is None

    def test_planned_join_is_correct_with_single_usable_index(self):
        """End to end: the pinned-outer plan computes the right answer."""
        tree = random_tree(220, seed=24)
        encoding = binarize(tree)
        rng = random.Random(6)
        a_codes = rng.sample(tree.codes, 80)
        d_codes = rng.sample(tree.codes, 80)
        a_set, d_set = make_sets(a_codes, d_codes, encoding.tree_height, frames=32)
        d_index = build_start_index(d_set, d_set.bufmgr)
        framework = PBiTreeJoinFramework()
        report, pairs = framework.join(
            a_set, d_set, SetProperties(), SetProperties(start_index=d_index)
        )
        assert sorted(pairs) == sorted(brute_force_join(a_codes, d_codes))


class TestPropertyInference:
    def test_sorted_flag_inferred_from_metadata(self):
        tree = random_tree(100, seed=21)
        encoding = binarize(tree)
        codes = sorted(tree.codes, key=pt.doc_order_key)
        a_set, d_set = make_sets(
            codes, codes, encoding.tree_height, sorted_by=SortOrder.START
        )
        d_set.sorted_by = SortOrder.START
        algorithm = choose_algorithm(a_set, d_set)
        assert isinstance(algorithm, StackTreeDescJoin)

    def test_single_height_inferred_from_metadata(self):
        spec = syn.spec_by_name("SSSL", large=1000, small=200)
        ds = syn.generate(spec, seed=10)
        a_set, d_set = make_sets(ds.a_codes, ds.d_codes, ds.tree_height)
        algorithm = choose_algorithm(a_set, d_set)
        assert isinstance(algorithm, SingleHeightJoin)


class TestFrameworkFacade:
    def test_join_returns_report_and_pairs(self):
        tree = random_tree(200, seed=22)
        encoding = binarize(tree)
        rng = random.Random(1)
        a_codes = rng.sample(tree.codes, 80)
        d_codes = rng.sample(tree.codes, 80)
        a_set, d_set = make_sets(a_codes, d_codes, encoding.tree_height)
        report, pairs = PBiTreeJoinFramework().join(a_set, d_set)
        assert sorted(pairs) == sorted(brute_force_join(a_codes, d_codes))
        assert report.result_count == len(pairs)

    def test_count_only_mode(self):
        tree = random_tree(200, seed=23)
        encoding = binarize(tree)
        a_set, d_set = make_sets(
            tree.codes[:50], tree.codes, encoding.tree_height
        )
        report, pairs = PBiTreeJoinFramework().join(a_set, d_set, collect=False)
        assert pairs == []
        assert report.result_count == len(
            brute_force_join(tree.codes[:50], tree.codes)
        )


class TestFlatIndexPlanning:
    """The Table-1 index cell must honour the flat-index switch: flat
    static indexes qualify for the same INLJN plans as the pointer
    oracle (they subclass it), are only *built* while the switch is on,
    and wrong-direction flat indexes fall through exactly like
    wrong-direction pointer indexes."""

    def fixtures(self):
        tree = random_tree(300, seed=20)
        encoding = binarize(tree)
        rng = random.Random(3)
        a_codes = rng.sample(tree.codes, 100)
        d_codes = rng.sample(tree.codes, 100)
        return make_sets(a_codes, d_codes, encoding.tree_height, frames=32)

    def test_flat_scope_builds_flat_and_planner_probes_it(self):
        a_set, d_set = self.fixtures()
        with flat.flat_scope(True):
            d_index = build_start_index(d_set, d_set.bufmgr)
        assert isinstance(d_index, FlatStartIndex)
        algorithm = choose_algorithm(
            a_set, d_set, SetProperties(), SetProperties(start_index=d_index)
        )
        assert isinstance(algorithm, IndexNestedLoopJoin)
        assert algorithm.d_index is d_index
        assert algorithm.force_outer == "A"

    def test_flat_stab_index_pins_outer_to_d(self):
        a_set, d_set = self.fixtures()
        with flat.flat_scope(True):
            a_index = build_interval_index(a_set, a_set.bufmgr)
        assert isinstance(a_index, FlatIntervalTree)
        algorithm = choose_algorithm(
            a_set, d_set, SetProperties(interval_index=a_index), SetProperties()
        )
        assert isinstance(algorithm, IndexNestedLoopJoin)
        assert algorithm.a_index is a_index
        assert algorithm.force_outer == "D"

    def test_switch_off_builds_the_pointer_oracle(self):
        a_set, d_set = self.fixtures()
        with flat.flat_scope(False):
            d_index = build_start_index(d_set, d_set.bufmgr)
            a_index = build_interval_index(a_set, a_set.bufmgr)
        assert not isinstance(d_index, FlatStartIndex)
        assert not isinstance(a_index, FlatIntervalTree)

    def test_wrong_direction_flat_indexes_fall_through(self):
        """Flat a-Start + flat d-stab serve no probe direction — the
        planner must take the unindexed cell, not an INLJN that would
        rebuild indexes inside the operator."""
        a_set, d_set = self.fixtures()
        with flat.flat_scope(True):
            a_start = build_start_index(a_set, a_set.bufmgr)
            d_stab = build_interval_index(d_set, d_set.bufmgr)
        algorithm = choose_algorithm(
            a_set,
            d_set,
            SetProperties(start_index=a_start),
            SetProperties(interval_index=d_stab),
        )
        assert not isinstance(algorithm, IndexNestedLoopJoin)
        assert isinstance(algorithm, (MultiHeightRollupJoin, SingleHeightJoin))

    def test_planned_flat_join_matches_brute_force(self):
        tree = random_tree(220, seed=24)
        encoding = binarize(tree)
        rng = random.Random(5)
        a_codes = rng.sample(tree.codes, 90)
        d_codes = rng.sample(tree.codes, 120)
        a_set, d_set = make_sets(a_codes, d_codes, encoding.tree_height,
                                 frames=32)
        with flat.flat_scope(True):
            d_index = build_start_index(d_set, d_set.bufmgr)
        algorithm = choose_algorithm(
            a_set, d_set, SetProperties(), SetProperties(start_index=d_index)
        )
        assert isinstance(algorithm, IndexNestedLoopJoin)
        sink = JoinSink("collect")
        algorithm.run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted(brute_force_join(a_codes, d_codes))
