"""Property tests for the analytic cost model and database fuzzing.

The cost model never has to be exact, but it must be *sane*: costs grow
with data, shrink (weakly) with memory, preparation vanishes for
prepared inputs.  The database fuzz test interleaves updates and
queries and cross-checks every answer against navigation.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.join.costmodel import CostInputs, CostModel
from repro.join.statistics import SetStatistics


def make_inputs(a_count, d_count, buffer_pages, a_heights=(6,), d_heights=(2,)):
    rng = random.Random(a_count * 7 + d_count)
    tree_height = 24

    def codes(n, heights):
        out = set()
        while len(out) < n:
            height = rng.choice(heights)
            level = tree_height - height - 1
            out.add(pt.g_code(rng.randrange(1 << level), level, tree_height))
        return list(out)

    a_codes = codes(a_count, a_heights)
    d_codes = codes(d_count, d_heights)
    return CostInputs(
        a_pages=max(1, a_count // 127),
        d_pages=max(1, d_count // 127),
        buffer_pages=buffer_pages,
        a_stats=SetStatistics.from_codes(a_codes, tree_height),
        d_stats=SetStatistics.from_codes(d_codes, tree_height),
    )


ESTIMATORS = [
    "stack_tree", "mpmgjn", "inljn", "adb", "mhcj", "mhcj_rollup",
    "vpj", "block_nested_loop", "shcj",
]


class TestMonotonicity:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    @given(scale_factor=st.sampled_from([2, 4, 8]))
    @settings(max_examples=6, deadline=None)
    def test_more_data_costs_more(self, estimator, scale_factor):
        model = CostModel()
        small = make_inputs(2000, 2000, 20)
        big = make_inputs(2000 * scale_factor, 2000 * scale_factor, 20)
        small_cost = getattr(model, estimator)(small).total
        big_cost = getattr(model, estimator)(big).total
        assert big_cost >= small_cost

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_more_memory_never_hurts(self, estimator):
        model = CostModel()
        tight = make_inputs(20_000, 20_000, 8)
        roomy = make_inputs(20_000, 20_000, 400)
        assert (
            getattr(model, estimator)(roomy).total
            <= getattr(model, estimator)(tight).total * 1.01
        )

    def test_costs_are_nonnegative(self):
        model = CostModel()
        inputs = make_inputs(100, 100, 8)
        for estimate in model.all_estimates(inputs):
            assert estimate.total >= 0
            assert estimate.prep_pages >= 0
            assert estimate.join_pages >= 0


class TestPreparedInputs:
    def test_sorted_inputs_zero_prep_for_merge_joins(self):
        model = CostModel()
        base = make_inputs(10_000, 10_000, 20)
        prepared = CostInputs(
            **{**base.__dict__, "a_sorted": True, "d_sorted": True}
        )
        assert model.stack_tree(prepared).prep_pages == 0
        assert model.mpmgjn(prepared).prep_pages == 0

    def test_indexed_inputs_zero_prep_for_index_joins(self):
        model = CostModel()
        base = make_inputs(10_000, 10_000, 20)
        prepared = CostInputs(
            **{**base.__dict__, "a_indexed": True, "d_indexed": True}
        )
        assert model.adb(prepared).prep_pages == 0
        assert model.inljn(prepared).prep_pages == 0


class TestDatabaseFuzz:
    def test_interleaved_updates_and_queries(self):
        """Random inserts/deletes/queries: every query answer must match
        a fresh navigational evaluation of the live tree."""
        from repro.db import ContainmentDatabase
        from repro.datatree.builder import random_tree

        rng = random.Random(31)
        db = ContainmentDatabase(buffer_pages=16)
        tree = random_tree(300, seed=31, tags=("a", "b", "c"))
        doc = db.load_tree(tree, name="fuzz")

        def navigational(path):
            steps = path.strip("/").split("//")
            frontier = [
                n for n in tree.iter_by_tag(steps[0])
                if doc.updatable.is_alive(n)
            ]
            for tag in steps[1:]:
                found = set()
                for node in frontier:
                    stack = list(tree.children[node])
                    while stack:
                        current = stack.pop()
                        if not doc.updatable.is_alive(current):
                            continue
                        if tree.tags[current] == tag:
                            found.add(current)
                        stack.extend(tree.children[current])
                frontier = sorted(found)
            return sorted(frontier)

        paths = ["//a//b", "//b//c", "//a//b//c"]
        for step in range(60):
            action = rng.random()
            live = [
                n for n in range(len(tree)) if doc.updatable.is_alive(n)
            ]
            if action < 0.4:
                db.insert_element(doc, rng.choice(live), rng.choice("abc"))
            elif action < 0.55 and len(live) > 10:
                non_root = [n for n in live if tree.parents[n] >= 0]
                db.delete_element(doc, rng.choice(non_root))
            else:
                path = rng.choice(paths)
                got = sorted(node.id for node in db.query(doc, path))
                assert got == navigational(path), (step, path)
        doc.updatable.validate()
