"""Tests for path-query decomposition into containment joins."""

import pytest

from repro.core.binarize import binarize
from repro.datatree.builder import random_tree, tree_from_spec
from repro.datatree.paths import PathQuery, brute_force_join, select_by_tag
from repro.datatree.xml_parser import parse_xml


def encoded_doc():
    tree = parse_xml(
        """
        <doc>
          <section><title>Introduction</title>
            <figure/><para><figure/></para>
          </section>
          <section><title>Related</title><para/></section>
          <appendix><figure/></appendix>
        </doc>
        """,
        keep_text=False,
    )
    binarize(tree)
    return tree


class TestSelectByTag:
    def test_selects_codes_in_document_order(self):
        tree = encoded_doc()
        sections = select_by_tag(tree, "section")
        assert len(sections) == 2
        figures = select_by_tag(tree, "figure")
        assert len(figures) == 3

    def test_missing_tag_is_empty(self):
        assert select_by_tag(encoded_doc(), "nope") == []


class TestPathQueryParsing:
    def test_steps(self):
        assert PathQuery("//a//b//c").steps == ["a", "b", "c"]

    def test_rejects_child_axis(self):
        with pytest.raises(ValueError):
            PathQuery("//a/b")

    def test_rejects_relative(self):
        with pytest.raises(ValueError):
            PathQuery("a//b")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PathQuery("//")


class TestEvaluation:
    def test_paper_motivating_query_shape(self):
        """//section//figure finds figures inside sections only."""
        tree = encoded_doc()
        result = PathQuery("//section//figure").evaluate_navigational(tree)
        assert len(result) == 2  # the appendix figure is excluded

    def test_join_evaluation_matches_navigational(self):
        tree = encoded_doc()
        query = PathQuery("//section//figure")
        nav = sorted(query.evaluate_navigational(tree))
        joined = sorted(query.evaluate_with_joins(tree, brute_force_join))
        assert nav == joined

    def test_three_step_chain(self):
        tree = encoded_doc()
        query = PathQuery("//doc//section//figure")
        nav = sorted(query.evaluate_navigational(tree))
        joined = sorted(query.evaluate_with_joins(tree, brute_force_join))
        assert nav == joined and len(nav) == 2

    def test_random_trees_agree(self):
        for seed in range(5):
            tree = random_tree(400, seed=seed, tags=("a", "b", "c"))
            binarize(tree)
            for path in ("//a//b", "//b//c//a", "//c//c"):
                query = PathQuery(path)
                assert sorted(query.evaluate_navigational(tree)) == sorted(
                    query.evaluate_with_joins(tree, brute_force_join)
                ), (seed, path)

    def test_containment_join_pairs(self):
        tree = encoded_doc()
        pairs = PathQuery("//doc//section//figure").containment_join_pairs(tree)
        assert len(pairs) == 2
        (a1, d1), (a2, d2) = pairs
        assert len(a1) == 1 and len(d1) == 2
        assert len(a2) == 2 and len(d2) == 3


class TestBruteForce:
    def test_excludes_self(self):
        tree = tree_from_spec(("a", [("a", [])]))
        binarize(tree)
        codes = select_by_tag(tree, "a")
        pairs = brute_force_join(codes, codes)
        assert pairs == [(tree.codes[0], tree.codes[1])]

    def test_empty_inputs(self):
        assert brute_force_join([], [1, 2]) == []
        assert brute_force_join([4], []) == []
