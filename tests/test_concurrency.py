"""Regression tests for the concurrency bugs the service tier flushed out.

Each class pins one fix:

* :class:`TestMetricsHammer` — MetricsRegistry counters/gauges/
  histograms were plain ``+=`` read-modify-write; N threads hammering
  one registry must produce *exact* totals, not approximately-right
  ones that pass on a lucky interleaving.
* :class:`TestScopeIsolation` — ``batch_scope`` / ``flat_scope`` /
  ``sanitize_scope`` used to mutate module globals, so one thread's
  scope leaked into every other thread mid-query.  They are
  contextvars now: two threads holding *opposing* scopes must each see
  their own value, and the process default must survive both.
* :class:`TestStaleGuardAtomicity` — retire/probe had a TOCTOU: a
  probe could pass ``_check_fresh`` and then read pre-update answers
  after a concurrent ``mark_stale``.  Check-and-probe is now one
  critical section.
* :class:`TestLazyScanRetire` — the lazy ``range_scan`` generators
  only held the guard during the descent, so a retire landing
  mid-scan let the leaf-chain walk silently complete with
  pre-retirement entries; the guard is now taken leaf-at-a-time.
"""

import threading

import pytest

from repro.core.batch import batch_scope, get_batch_size
from repro.index.bptree import BPlusTree
from repro.index.flat import FlatStartIndex, flat_enabled, flat_scope
from repro.index.staleness import StaleGuard, StaleIndexError
from repro.obs.metrics import MetricsRegistry
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager
from repro.storage.sanitize import sanitize_enabled, sanitize_scope

THREADS = 8
ROUNDS = 2_000


def run_threads(targets):
    """Start all targets, join all, re-raise the first worker error."""
    errors = []

    def wrap(fn):
        def inner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)

        return inner

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestMetricsHammer:
    def test_counter_totals_are_exact(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def hammer():
            barrier.wait()
            for _ in range(ROUNDS):
                # same counter object from every thread, plus a fresh
                # lookup each round to stress _get_or_create as well
                registry.counter("hammer.shared").inc()
                registry.counter("hammer.shared").inc(3)

        run_threads([hammer] * THREADS)
        assert registry.counter("hammer.shared").value == THREADS * ROUNDS * 4

    def test_gauge_add_is_atomic(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hammer.gauge")
        barrier = threading.Barrier(THREADS)

        def hammer():
            barrier.wait()
            for _ in range(ROUNDS):
                gauge.add(1.0)

        run_threads([hammer] * THREADS)
        assert gauge.value == float(THREADS * ROUNDS)

    def test_histogram_count_and_total_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammer.hist")
        barrier = threading.Barrier(THREADS)

        def hammer():
            barrier.wait()
            for value in range(ROUNDS):
                histogram.observe(float(value % 7))

        run_threads([hammer] * THREADS)
        assert histogram.count == THREADS * ROUNDS
        expected_total = THREADS * sum(value % 7 for value in range(ROUNDS))
        assert histogram.total == pytest.approx(float(expected_total))
        assert sum(histogram.bucket_counts) == THREADS * ROUNDS

    def test_registry_creation_race_yields_one_metric(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)
        seen = []
        lock = threading.Lock()

        def create():
            barrier.wait()
            counter = registry.counter("race.single")
            counter.inc()
            with lock:
                seen.append(counter)

        run_threads([create] * THREADS)
        assert len({id(c) for c in seen}) == 1
        assert registry.counter("race.single").value == THREADS


class TestScopeIsolation:
    def test_opposing_batch_scopes(self):
        default = get_batch_size()
        barrier = threading.Barrier(2)
        observed = {}

        def low():
            with batch_scope(1):
                barrier.wait()  # both threads are now inside their scope
                observed["low"] = get_batch_size()
                barrier.wait()

        def high():
            with batch_scope(512):
                barrier.wait()
                observed["high"] = get_batch_size()
                barrier.wait()

        run_threads([low, high])
        assert observed == {"low": 1, "high": 512}
        assert get_batch_size() == default

    def test_opposing_flat_scopes(self):
        default = flat_enabled()
        barrier = threading.Barrier(2)
        observed = {}

        def on():
            with flat_scope(True):
                barrier.wait()
                observed["on"] = flat_enabled()
                barrier.wait()

        def off():
            with flat_scope(False):
                barrier.wait()
                observed["off"] = flat_enabled()
                barrier.wait()

        run_threads([on, off])
        assert observed == {"on": True, "off": False}
        assert flat_enabled() == default

    def test_opposing_sanitize_scopes(self):
        default = sanitize_enabled()
        barrier = threading.Barrier(2)
        observed = {}

        def on():
            with sanitize_scope(True):
                barrier.wait()
                observed["on"] = sanitize_enabled()
                barrier.wait()

        def off():
            with sanitize_scope(False):
                barrier.wait()
                observed["off"] = sanitize_enabled()
                barrier.wait()

        run_threads([on, off])
        assert observed == {"on": True, "off": False}
        assert sanitize_enabled() == default

    def test_scope_does_not_leak_to_spawned_default(self):
        # a thread started *outside* any scope sees the process default
        default = get_batch_size()
        observed = {}

        def probe():
            observed["value"] = get_batch_size()

        with batch_scope(3):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert observed["value"] == default


class _GuardedIndex(StaleGuard):
    """Minimal probe host: the probe body runs under probe_guard."""

    def __init__(self):
        self.answer = "fresh"

    def probe(self, started=None, release=None):
        with self.probe_guard():
            if started is not None:
                started.set()
            if release is not None:
                release.wait(5.0)
            return self.answer


class TestStaleGuardAtomicity:
    def test_probe_after_retire_raises(self):
        index = _GuardedIndex()
        assert index.probe() == "fresh"
        index.mark_stale("element set changed")
        assert index.is_stale
        with pytest.raises(StaleIndexError, match="element set changed"):
            index.probe()

    def test_retire_blocks_until_inflight_probe_finishes(self):
        index = _GuardedIndex()
        started = threading.Event()
        release = threading.Event()
        retired = threading.Event()
        results = {}

        def prober():
            results["probe"] = index.probe(started=started, release=release)

        def retirer():
            started.wait(5.0)
            index.mark_stale("concurrent update")
            retired.set()

        probe_thread = threading.Thread(target=prober)
        retire_thread = threading.Thread(target=retirer)
        probe_thread.start()
        retire_thread.start()
        started.wait(5.0)
        # the probe is mid-flight holding the guard: mark_stale must
        # block rather than retire the index under the probe's feet
        assert not retired.wait(0.2)
        release.set()
        probe_thread.join(5.0)
        retire_thread.join(5.0)
        assert retired.is_set()
        # the in-flight probe completed against the still-fresh index...
        assert results["probe"] == "fresh"
        # ...and every probe started after retirement raises
        with pytest.raises(StaleIndexError):
            index.probe()

    def test_hammer_probes_against_retire(self):
        # no probe may observe the index as fresh after mark_stale
        # returned; under the old check-then-act window this flaked
        index = _GuardedIndex()
        barrier = threading.Barrier(THREADS + 1)
        stop = threading.Event()
        violations = []

        def retirer():
            barrier.wait()
            index.mark_stale("hammer retire")
            index.answer = "stale-data"  # probes must never return this
            stop.set()

        def prober():
            barrier.wait()
            while not stop.is_set():
                try:
                    if index.probe() == "stale-data":
                        violations.append("read retired data")
                except StaleIndexError:
                    return

        run_threads([prober] * THREADS + [retirer])
        assert not violations


# ----------------------------------------------------------------------
class TestLazyScanRetire:
    """A lazy range scan must not silently outlive a retirement.

    ``range_scan`` is a generator, so it cannot hold the probe guard
    across consumer pulls the way the eager probes do; the fix takes
    the guard leaf-at-a-time and re-checks freshness before every leaf
    access.  Pre-fix, only the descent was guarded: a ``mark_stale``
    landing while the scan was suspended let the leaf-chain walk run
    to completion and silently yield pre-retirement answers.
    """

    ENTRIES = 500  # page_size=128 -> ~7 leaf entries/page, many leaves

    def _indexes(self):
        bufmgr = BufferManager(DiskManager(page_size=128), 32)
        entries = [(i, i * 10) for i in range(self.ENTRIES)]
        yield BPlusTree.bulk_load(bufmgr, entries, name="ptr")
        yield FlatStartIndex.bulk_load(bufmgr, entries, name="flat")

    def test_retire_mid_scan_raises_at_next_leaf(self):
        for index in self._indexes():
            scan = index.range_scan(0, 1 << 62)
            consumed = [next(scan)]
            index.mark_stale("element set changed mid-scan")
            with pytest.raises(StaleIndexError):
                for entry in scan:
                    consumed.append(entry)
            # the scan died at the next leaf boundary — everything it
            # produced was read while the index was still fresh
            assert 0 < len(consumed) < self.ENTRIES, type(index).__name__

    def test_scan_started_after_retire_raises_on_first_pull(self):
        for index in self._indexes():
            index.mark_stale("retired before the scan ran")
            scan = index.range_scan(0, 1 << 62)
            with pytest.raises(StaleIndexError):
                next(scan)

    def test_flat_bulk_probe_after_retire_raises(self):
        bufmgr = BufferManager(DiskManager(page_size=128), 32)
        entries = [(i, i * 10) for i in range(self.ENTRIES)]
        flat = FlatStartIndex.bulk_load(bufmgr, entries, name="flat")
        assert flat.range_values(0, 50)
        flat.mark_stale("element set changed")
        with pytest.raises(StaleIndexError):
            flat.range_values(0, 50)
