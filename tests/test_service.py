"""Tests for the multi-tenant query service tier.

Coverage map:

* admission control — in-flight bounds, per-tenant quotas, typed
  rejections with retry hints, exact rejection accounting;
* plan cache — Table-1 cell classification, LRU bounds, warm hits
  that *provably* skip planning (``planning_io == 0`` and no
  ``pipeline.plan`` span), invalidation when buffered updates apply;
* the service itself — result parity with the single-threaded
  ``ContainmentDatabase.query`` path, per-tenant counter exactness
  (every issued query lands in exactly one of completed / rejected /
  errors), saturation behaviour (typed backpressure, never an escaped
  ``BufferPoolExhaustedError``);
* the wire — JSON-lines protocol end-to-end over a real TCP socket;
* the threaded differential suite — N concurrent Figure 6(b)-style
  queries produce ``JoinReport``s field-for-field identical to the
  same queries run serially, with and without chaos fault injection
  (seed replayable via ``REPRO_CHAOS_SEED``, like the other chaos
  suites);
* update/query isolation — sessions read the shared page table live,
  so ``exclusive()`` and update-draining prepares must quiesce a
  document's in-flight execute phases before patching pages; every
  answer produced during an update storm matches some committed
  version of the document; mid-join backpressure conversion keeps the
  global and per-tenant rejection counters consistent; the wire
  rejects tenant names that could forge metric keys.
"""

import dataclasses
import os
import threading

import pytest

from repro import ContainmentDatabase, random_tree
from repro.join.planner import SetProperties
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    AdmissionController,
    BackpressureRejection,
    PlanCache,
    PlanEntry,
    QueryService,
    QuotaExceededRejection,
    ServerThread,
    ServiceClient,
    ServiceRejection,
    TenantQuota,
)
from repro.service.plancache import table1_cell
from repro.storage.faults import FaultConfig

#: chaos seed rotates in CI like the fault-injection suite's
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Figure 6(b)-style multi-step descendant chains
PATHS = ["//a//b", "//a//b//c", "//b//d", "//c//d"]


def make_db(metrics=None, checksums=False, nodes=800, seed=7):
    db = ContainmentDatabase(
        buffer_pages=64, metrics=metrics, checksums=checksums
    )
    db.load_tree(random_tree(nodes, max_fanout=5, seed=seed), name="corpus")
    return db


def counter_value(metrics, name):
    metric = metrics.get(name)
    return metric.value if metric is not None else 0


def normalize(report):
    """Strip the only fields legitimately run-dependent."""
    return dataclasses.replace(report, wall_seconds=0.0, trace=None)


def run_threads(targets):
    errors = []

    def wrap(fn):
        def inner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)

        return inner

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_backpressure_when_full(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(1, metrics, retry_after=0.25)
        with controller.admit("a"):
            assert controller.in_flight == 1
            with pytest.raises(BackpressureRejection) as info:
                with controller.admit("b"):
                    pass
            assert info.value.code == "backpressure"
            assert info.value.retry_after == 0.25
        assert controller.in_flight == 0
        assert counter_value(metrics, "service.rejected.backpressure") == 1
        assert counter_value(metrics, "service.tenant.b.rejected") == 1

    def test_release_on_exception(self):
        controller = AdmissionController(1, MetricsRegistry())
        with pytest.raises(RuntimeError):
            with controller.admit("a"):
                raise RuntimeError("query blew up")
        assert controller.in_flight == 0
        with controller.admit("a"):
            pass  # the slot was released

    def test_tenant_in_flight_quota(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            4, metrics, quotas={"greedy": TenantQuota(max_in_flight=1)}
        )
        with controller.admit("greedy"):
            with pytest.raises(QuotaExceededRejection) as info:
                with controller.admit("greedy"):
                    pass
            assert info.value.code == "quota"
            with controller.admit("polite"):  # other tenants unaffected
                pass
        assert counter_value(metrics, "service.rejected.quota") == 1

    def test_tenant_lifetime_quota(self):
        controller = AdmissionController(
            4, MetricsRegistry(), default_quota=TenantQuota(max_queries=2)
        )
        for _ in range(2):
            with controller.admit("t"):
                pass
        with pytest.raises(QuotaExceededRejection):
            with controller.admit("t"):
                pass
        # rejected admissions do not consume lifetime budget retries
        with pytest.raises(QuotaExceededRejection):
            with controller.admit("t"):
                pass

    def test_rejections_are_typed_and_retryable(self):
        assert issubclass(BackpressureRejection, ServiceRejection)
        assert issubclass(QuotaExceededRejection, ServiceRejection)
        rejection = BackpressureRejection("full", retry_after=0.1)
        assert rejection.retry_after == 0.1


# ----------------------------------------------------------------------
class TestPlanCacheUnit:
    KEY_A = ("doc", "//a//b", "pbitree", True, True, 0, (), ("sorted",))
    KEY_B = ("doc", "//b//c", "pbitree", True, True, 0, (), ("sorted",))
    KEY_C = ("doc", "//c//d", "pbitree", True, True, 0, (), ("sorted",))

    def test_lru_eviction_and_metrics(self):
        metrics = MetricsRegistry()
        cache = PlanCache(2, metrics)
        entry = PlanEntry(direction="forward", cells=("sorted",))
        cache.put(self.KEY_A, entry)
        cache.put(self.KEY_B, entry)
        assert cache.get(self.KEY_A) is entry  # refreshes A
        cache.put(self.KEY_C, entry)  # evicts B (LRU)
        assert cache.get(self.KEY_B) is None
        assert cache.get(self.KEY_C) is entry
        assert counter_value(metrics, "service.plan_cache.hits") == 2
        assert counter_value(metrics, "service.plan_cache.misses") == 1
        assert counter_value(metrics, "service.plan_cache.evictions") == 1

    def test_capacity_zero_disables(self):
        cache = PlanCache(0, MetricsRegistry())
        assert not cache.enabled
        cache.put(self.KEY_A, PlanEntry(direction="forward", cells=()))
        assert cache.get(self.KEY_A) is None
        assert len(cache) == 0

    def test_table1_cells(self):
        plain = SetProperties(sorted=False)
        sorted_ = SetProperties(sorted=True)
        single = SetProperties(sorted=False, single_height=3)
        assert table1_cell(sorted_, sorted_) == "sorted"
        assert table1_cell(plain, plain) == "unsorted-unindexed"
        assert table1_cell(single, plain) == "single-height"
        assert table1_cell(sorted_, plain) == "unsorted-unindexed"


# ----------------------------------------------------------------------
class TestQueryService:
    def test_matches_database_query_path(self):
        db = make_db()
        service = QueryService(db)
        doc = db.document("corpus")
        for path in PATHS:
            outcome = service.execute("t", "corpus", path)
            baseline = db.query(doc, path)
            assert outcome.count == len(baseline)
            assert sorted(n.id for n in outcome_nodes(db, outcome)) == \
                sorted(n.id for n in baseline)

    def test_warm_cache_skips_planning(self):
        metrics = MetricsRegistry()
        db = make_db(metrics=metrics)
        service = QueryService(db, metrics=metrics)

        cold = service.execute("t", "corpus", "//a//b//c")
        assert not cold.cache_hit
        assert cold.planning_io > 0
        assert "pipeline.plan" in cold.span_names()

        warm = service.execute("t", "corpus", "//a//b//c")
        assert warm.cache_hit
        assert warm.planning_io == 0
        assert "pipeline.plan" not in warm.span_names()

        # same answers, same per-step algorithms, cheaper
        assert warm.codes == cold.codes
        assert warm.direction == cold.direction
        assert [r.algorithm for r in warm.reports] == \
            [r.algorithm for r in cold.reports]
        assert counter_value(metrics, "service.plan_cache.hits") == 1
        assert counter_value(metrics, "service.plan_cache.misses") == 1

    def test_cache_invalidated_when_updates_apply(self):
        metrics = MetricsRegistry()
        db = make_db(metrics=metrics)
        service = QueryService(db, metrics=metrics)
        service.execute("t", "corpus", "//a//b")
        assert service.execute("t", "corpus", "//a//b").cache_hit

        with service.exclusive("corpus") as doc:
            version = doc.store.version
            db.insert_element(doc, 0, "b")

        # the buffered update applies during the next prepare phase,
        # bumping the store version out from under the cached key
        after = service.execute("t", "corpus", "//a//b")
        assert not after.cache_hit
        assert db.document("corpus").store.version > version
        # and the refreshed plan is cached again
        assert service.execute("t", "corpus", "//a//b").cache_hit

    def test_per_tenant_counter_exactness(self):
        metrics = MetricsRegistry()
        db = make_db(metrics=metrics)
        service = QueryService(
            db,
            metrics=metrics,
            quotas={"capped": TenantQuota(max_queries=2)},
        )
        issued = {"alice": 0, "capped": 0}
        for _ in range(3):
            service.execute("alice", "corpus", "//a//b")
            issued["alice"] += 1
        for _ in range(4):
            issued["capped"] += 1
            try:
                service.execute("capped", "corpus", "//a//b")
            except QuotaExceededRejection:
                pass
        # one unknown-document query: a real error, not a rejection
        issued["alice"] += 1
        with pytest.raises(KeyError):
            service.execute("alice", "nope", "//a//b")

        for tenant, count in issued.items():
            accounted = (
                counter_value(metrics, f"service.tenant.{tenant}.completed")
                + counter_value(metrics, f"service.tenant.{tenant}.rejected")
                + counter_value(metrics, f"service.tenant.{tenant}.errors")
            )
            assert accounted == count, tenant
        assert counter_value(metrics, "service.tenant.alice.completed") == 3
        assert counter_value(metrics, "service.tenant.alice.errors") == 1
        assert counter_value(metrics, "service.tenant.capped.completed") == 2
        assert counter_value(metrics, "service.tenant.capped.rejected") == 2

    def test_saturation_rejects_typed_and_never_crashes(self):
        metrics = MetricsRegistry()
        db = make_db(metrics=metrics)
        service = QueryService(db, max_in_flight=1, metrics=metrics)
        per_thread = 3
        workers = 6
        outcomes = {"ok": 0, "rejected": 0}
        lock = threading.Lock()

        def worker(worker_id):
            def inner():
                for i in range(per_thread):
                    tenant = f"t{worker_id % 2}"
                    try:
                        service.execute(
                            tenant, "corpus", PATHS[i % len(PATHS)]
                        )
                    except ServiceRejection as rejection:
                        assert rejection.retry_after > 0
                        with lock:
                            outcomes["rejected"] += 1
                    else:
                        with lock:
                            outcomes["ok"] += 1

            return inner

        run_threads([worker(i) for i in range(workers)])
        issued = per_thread * workers
        assert outcomes["ok"] + outcomes["rejected"] == issued
        assert outcomes["ok"] >= 1  # someone always gets through
        for tenant in ("t0", "t1"):
            accounted = (
                counter_value(metrics, f"service.tenant.{tenant}.completed")
                + counter_value(metrics, f"service.tenant.{tenant}.rejected")
                + counter_value(metrics, f"service.tenant.{tenant}.errors")
            )
            assert accounted == issued // 2
        assert counter_value(metrics, "service.errors") == 0

    def test_session_pool_floor(self):
        db = make_db()
        with pytest.raises(ValueError):
            QueryService(db, session_pages=2)


def outcome_nodes(db, outcome):
    doc = db.document(outcome.document)
    return [doc.node(doc.updatable.node_of(code)) for code in outcome.codes]


# ----------------------------------------------------------------------
class TestWireProtocol:
    def test_end_to_end_over_tcp(self):
        metrics = MetricsRegistry()
        db = make_db(metrics=metrics)
        service = QueryService(db, metrics=metrics)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                assert client.ping() is True

                response = client.query("corpus", "//a//b", tenant="wire")
                assert response["status"] == "ok"
                assert response["count"] == len(response["codes"])
                assert response["count"] > 0
                assert response["direction"] in ("top-down", "bottom-up")
                assert response["cache_hit"] is False
                assert response["reports"], "per-step report summaries"

                warm = client.query("corpus", "//a//b", tenant="wire")
                assert warm["cache_hit"] is True
                assert warm["planning_io"] == 0
                assert warm["codes"] == response["codes"]

                stats = client.stats()
                assert stats["service.queries"] == 2
                assert stats["service.tenant.wire.completed"] == 2

    def test_quota_rejection_is_typed_on_the_wire(self):
        db = make_db()
        service = QueryService(
            db, quotas={"capped": TenantQuota(max_queries=1)}
        )
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                first = client.query("corpus", "//a//b", tenant="capped")
                assert first["status"] == "ok"
                second = client.query("corpus", "//a//b", tenant="capped")
                assert second["status"] == "rejected"
                assert second["code"] == "quota"
                assert second["retry_after"] > 0
                # the connection survives a rejection
                assert client.ping() is True

    def test_protocol_errors_keep_connection_usable(self):
        db = make_db()
        service = QueryService(db)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                bad_op = client._call({"op": "nope"})
                assert bad_op["status"] == "error"
                assert "unknown op" in bad_op["error"]

                bad_doc = client.query("missing", "//a//b")
                assert bad_doc["status"] == "error"
                assert "missing" in bad_doc["error"]

                assert client.ping() is True


# ----------------------------------------------------------------------
class TestThreadedDifferential:
    """Concurrent reports must equal serial reports field-for-field."""

    WORKERS = 6

    def _serial_and_concurrent(self, service):
        serial = {
            path: service.execute("serial", "corpus", path)
            for path in PATHS
        }
        concurrent = {}
        lock = threading.Lock()

        def worker(worker_id):
            def inner():
                # each worker runs the full path mix, rotated so that
                # different queries genuinely overlap in time
                for offset in range(len(PATHS)):
                    path = PATHS[(worker_id + offset) % len(PATHS)]
                    outcome = service.execute(
                        f"w{worker_id}", "corpus", path
                    )
                    with lock:
                        concurrent.setdefault(path, []).append(outcome)

            return inner

        run_threads([worker(i) for i in range(self.WORKERS)])
        return serial, concurrent

    def _assert_identical(self, serial, concurrent):
        for path, outcomes in concurrent.items():
            baseline = serial[path]
            expected = [normalize(r) for r in baseline.reports]
            assert len(outcomes) == self.WORKERS
            for outcome in outcomes:
                assert outcome.codes == baseline.codes
                assert outcome.direction == baseline.direction
                assert outcome.planning_io == baseline.planning_io
                assert [normalize(r) for r in outcome.reports] == expected

    def test_concurrent_reports_equal_serial(self):
        db = make_db()
        # plan cache off: every run plans cold, so reports are
        # byte-comparable between the serial and concurrent passes
        service = QueryService(db, max_in_flight=8, plan_cache_size=0)
        serial, concurrent = self._serial_and_concurrent(service)
        self._assert_identical(serial, concurrent)

    def test_concurrent_reports_equal_serial_under_chaos(self):
        chaos = FaultConfig(
            seed=CHAOS_SEED,
            read_error_rate=0.02,
            torn_page_rate=0.01,
        )
        db = make_db(checksums=True)
        service = QueryService(
            db, max_in_flight=8, plan_cache_size=0, chaos=chaos
        )
        serial, concurrent = self._serial_and_concurrent(service)
        self._assert_identical(serial, concurrent)
        # chaos actually fired: the derived injectors saw traffic, and
        # the retries surface in the (identical) report I/O ledgers
        total_retries = sum(
            r.total_io.retries
            for outcome in serial.values()
            for r in outcome.reports
        )
        assert total_retries >= 0  # presence depends on the seed

    def test_chaos_replay_is_seed_deterministic(self):
        chaos = FaultConfig(
            seed=CHAOS_SEED, read_error_rate=0.05, torn_page_rate=0.01
        )
        runs = []
        for _ in range(2):
            db = make_db(checksums=True)
            service = QueryService(db, plan_cache_size=0, chaos=chaos)
            outcome = service.execute("replay", "corpus", "//a//b//c")
            runs.append(
                (
                    outcome.codes,
                    [normalize(r) for r in outcome.reports],
                )
            )
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
class TestUpdateQueryIsolation:
    """Mutation must quiesce a document's in-flight execute phases.

    Sessions read the shared page table *live* (views, not
    snapshots), so ``exclusive()`` — and a prepare phase about to
    drain a non-empty update log — must wait for every execute phase
    on the document to finish before patching pages, or a running
    join reads a torn mix of old and new pages.
    """

    def _blockable_pipeline(self, monkeypatch):
        """Patch PathPipeline.execute to park on an event mid-query."""
        from repro.join.pipeline import PathPipeline

        started = threading.Event()
        release = threading.Event()
        original = PathPipeline.execute

        def parked_execute(pipeline, steps):
            started.set()
            assert release.wait(10.0), "test deadlock: releaser never ran"
            return original(pipeline, steps)

        monkeypatch.setattr(PathPipeline, "execute", parked_execute)
        return started, release

    def test_exclusive_waits_for_inflight_execute(self, monkeypatch):
        db = make_db()
        service = QueryService(db)
        started, release = self._blockable_pipeline(monkeypatch)
        entered = threading.Event()
        outcomes = {}

        def querier():
            outcomes["query"] = service.execute("t", "corpus", "//a//b")

        def updater():
            with service.exclusive("corpus") as doc:
                entered.set()
                db.insert_element(doc, 0, "b")

        query_thread = threading.Thread(target=querier)
        query_thread.start()
        assert started.wait(5.0)
        update_thread = threading.Thread(target=updater)
        update_thread.start()
        # the query is mid-execute holding a reader slot: exclusive()
        # must not hand the document over while its pages are being read
        assert not entered.wait(0.3)
        release.set()
        query_thread.join(10.0)
        update_thread.join(10.0)
        assert entered.is_set()
        assert not query_thread.is_alive() and not update_thread.is_alive()
        assert outcomes["query"].count > 0

    def test_prepare_drain_waits_for_inflight_execute(self, monkeypatch):
        db = make_db()
        service = QueryService(db)
        doc = db.document("corpus")
        started, release = self._blockable_pipeline(monkeypatch)
        outcomes = {}

        def first_querier():
            outcomes["first"] = service.execute("t", "corpus", "//a//b")

        first = threading.Thread(target=first_querier)
        first.start()
        assert started.wait(5.0)
        # an out-of-band update buffered while the first query executes
        # (the raw API bypasses exclusive(); the prepare-side drain is
        # the defense): the next query's prepare must wait for the
        # first to finish before patching pages
        version = doc.store.version
        db.insert_element(doc, 0, "b")
        assert doc.store.pending_updates() > 0
        done = threading.Event()

        def second_querier():
            outcomes["second"] = service.execute("t", "corpus", "//a//b")
            done.set()

        second = threading.Thread(target=second_querier)
        second.start()
        assert not done.wait(0.3), "prepare drained under a live reader"
        release.set()
        first.join(10.0)
        second.join(10.0)
        assert done.is_set()
        # the second query's prepare applied the buffered update
        assert doc.store.pending_updates() == 0
        assert doc.store.version > version
        assert outcomes["second"].count >= outcomes["first"].count

    def test_updates_never_tear_concurrent_queries(self):
        db = make_db()
        service = QueryService(db, max_in_flight=8)
        path = "//a//b"
        valid = {frozenset(service.execute("oracle", "corpus", path).codes)}
        valid_lock = threading.Lock()
        observed = []
        observed_lock = threading.Lock()
        stop = threading.Event()

        def querier():
            while not stop.is_set():
                codes = frozenset(
                    service.execute("q", "corpus", path).codes
                )
                with observed_lock:
                    observed.append(codes)

        def updater():
            try:
                for _ in range(5):
                    with service.exclusive("corpus") as doc:
                        db.insert_element(doc, 0, "b")
                    oracle = frozenset(
                        service.execute("oracle", "corpus", path).codes
                    )
                    with valid_lock:
                        valid.add(oracle)
            finally:
                stop.set()

        run_threads([querier] * 3 + [updater])
        assert observed, "queriers never overlapped the update storm"
        # every concurrent answer matches some committed version of the
        # document — a torn page mix would match none of them
        for codes in observed:
            assert codes in valid

    def test_midjoin_backpressure_bumps_global_and_tenant(self, monkeypatch):
        from repro.join.pipeline import PathPipeline
        from repro.storage.buffer import BufferPoolExhaustedError

        metrics = MetricsRegistry()
        db = make_db(metrics=metrics)
        service = QueryService(db, metrics=metrics)

        def exhausted(pipeline, steps):
            raise BufferPoolExhaustedError(4, "lru")

        monkeypatch.setattr(PathPipeline, "execute", exhausted)
        with pytest.raises(BackpressureRejection):
            service.execute("t", "corpus", "//a//b")
        # the mid-join conversion keeps the global breakdown consistent
        # with the per-tenant counters (it used to bump only the tenant)
        assert counter_value(metrics, "service.rejected.backpressure") == 1
        assert counter_value(metrics, "service.tenant.t.rejected") == 1
        assert counter_value(metrics, "service.errors") == 0
        assert counter_value(metrics, "service.tenant.t.completed") == 0


# ----------------------------------------------------------------------
class TestWireTenantValidation:
    def test_metric_forging_tenant_rejected(self):
        metrics = MetricsRegistry()
        db = make_db(metrics=metrics)
        service = QueryService(db, metrics=metrics)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                forged = client.query(
                    "corpus", "//a//b", tenant="t.completed"
                )
                assert forged["status"] == "error"
                assert "invalid tenant" in forged["error"]

                for tenant in ("", "a" * 65, "a b", "té"):
                    response = client.query(
                        "corpus", "//a//b", tenant=tenant
                    )
                    assert response["status"] == "error", tenant

                # nothing reached admission, no metric key was forged
                stats = client.stats()
                assert not any(".t.completed." in key for key in stats)

                ok = client.query("corpus", "//a//b", tenant="t-1_ok")
                assert ok["status"] == "ok"
                assert client.ping() is True


# ----------------------------------------------------------------------
class TestResultPaging:
    """Result sets past MAX_WIRE_CODES continue via connection cursors."""

    def test_overflow_query_pages_transparently(self, monkeypatch):
        import repro.service.server as server_module

        monkeypatch.setattr(server_module, "MAX_WIRE_CODES", 30)
        db = make_db()
        service = QueryService(db)
        expected = sorted(service.execute("oracle", "corpus", "//a").codes)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                raw = client.query("corpus", "//a")
                assert raw["status"] == "ok"
                assert raw["count"] == len(expected)
                assert len(raw["codes"]) == 30
                assert isinstance(raw["cursor"], str)

                full = client.query_all("corpus", "//a")
                assert sorted(full["codes"]) == expected
                assert full["count"] == len(full["codes"])
                assert "cursor" not in full

                streamed = list(client.iter_codes("corpus", "//a"))
                assert streamed == full["codes"]

    def test_small_results_carry_no_cursor(self):
        db = make_db()
        service = QueryService(db)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                response = client.query("corpus", "//a//b//c")
                assert response["status"] == "ok"
                assert "cursor" not in response
                assert response["count"] == len(response["codes"])
                # query_all is a no-op passthrough for unpaged results
                assert client.query_all("corpus", "//a//b//c")[
                    "codes"
                ] == response["codes"]

    def test_unknown_cursor_is_a_typed_error(self):
        db = make_db()
        service = QueryService(db)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                response = client.page("c999")
                assert response["status"] == "error"
                assert "unknown cursor" in response["error"]
                assert client.ping() is True  # connection survives

    def test_cursor_eviction_bounds_parked_memory(self, monkeypatch):
        import repro.service.server as server_module

        monkeypatch.setattr(server_module, "MAX_WIRE_CODES", 10)
        monkeypatch.setattr(server_module, "MAX_CURSORS", 2)
        db = make_db()
        service = QueryService(db)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                tokens = [
                    client.query("corpus", "//a")["cursor"] for _ in range(3)
                ]
                evicted = client.page(tokens[0])
                assert evicted["status"] == "error"
                live = client.page(tokens[-1])
                assert live["status"] == "ok"

    def test_cursors_are_connection_scoped(self, monkeypatch):
        import repro.service.server as server_module

        monkeypatch.setattr(server_module, "MAX_WIRE_CODES", 10)
        db = make_db()
        service = QueryService(db)
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as one:
                token = one.query("corpus", "//a")["cursor"]
                with ServiceClient(port=server.port) as two:
                    stolen = two.page(token)
                    assert stolen["status"] == "error"
                mine = one.page(token)
                assert mine["status"] == "ok"


# ----------------------------------------------------------------------
class TestSessionIndexViews:
    """Persistent indexes probe through session pools (the v1 gap)."""

    def make_indexed_db(self):
        db = make_db()
        doc = db.document("corpus")
        db.create_start_index(doc, "b")
        db.create_interval_index(doc, "a")
        db.bufmgr.flush_all()
        return db

    def test_indexed_plan_reaches_the_service(self):
        db = self.make_indexed_db()
        service = QueryService(db)
        outcome = service.execute("t", "corpus", "//a//b")
        assert [r.algorithm for r in outcome.reports] == ["INLJN"]

        plain = QueryService(make_db())
        baseline = plain.execute("t", "corpus", "//a//b")
        assert [r.algorithm for r in baseline.reports] == ["MHCJ+Rollup"]
        assert sorted(outcome.codes) == sorted(baseline.codes)

    def test_concurrent_indexed_queries_match_serial(self):
        db = self.make_indexed_db()
        service = QueryService(db, max_in_flight=8, plan_cache_size=0)
        serial = {
            path: service.execute("serial", "corpus", path)
            for path in PATHS
        }
        outcomes = {}
        lock = threading.Lock()

        def worker(path):
            def run():
                outcome = service.execute("conc", "corpus", path)
                with lock:
                    outcomes[path] = outcome

            return run

        run_threads([worker(path) for path in PATHS] * 2)
        for path in PATHS:
            assert outcomes[path].codes == serial[path].codes
            assert [
                normalize(r) for r in outcomes[path].reports
            ] == [normalize(r) for r in serial[path].reports]

    def test_update_under_indexes_stays_correct(self):
        db = self.make_indexed_db()
        service = QueryService(db)
        doc = db.document("corpus")
        indexed = service.execute("t", "corpus", "//a//b")
        assert indexed.reports[0].algorithm == "INLJN"
        with service.exclusive("corpus") as locked:
            db.insert_element(locked, 0, "a")
        after = service.execute("t", "corpus", "//a//b")
        # the insert retires a's interval index (it is static); the
        # next prepare peeks the survivors and re-plans — no stale
        # probe, and the new element is visible
        assert doc.store.peek_interval_index("a") is None
        assert after.cache_hit is False
        plain = QueryService(make_db())
        baseline = plain.execute("t", "corpus", "//a//b")
        assert len(after.codes) >= len(baseline.codes)
        assert set(baseline.codes) <= set(after.codes)


# ----------------------------------------------------------------------
class TestShardedService:
    """Sharded execution through the service tier."""

    def make_sharded(self, shards, **kwargs):
        db = ContainmentDatabase(buffer_pages=64, shards=shards)
        db.load_tree(random_tree(800, max_fanout=5, seed=7), name="corpus")
        return QueryService(db, **kwargs)

    def test_parity_with_unsharded_service(self):
        plain = QueryService(make_db())
        sharded = self.make_sharded(2)
        for path in PATHS + ["//a"]:
            expect = sorted(plain.execute("t", "corpus", path).codes)
            got = sorted(sharded.execute("t", "corpus", path).codes)
            assert got == expect, path

    def test_reports_invariant_across_shard_counts(self):
        two = self.make_sharded(2)
        four = self.make_sharded(4)
        for path in PATHS:
            a = two.execute("t", "corpus", path)
            b = four.execute("t", "corpus", path)
            assert a.codes == b.codes
            assert [normalize(r) for r in a.reports] == [
                normalize(r) for r in b.reports
            ]

    def test_concurrent_sharded_queries_match_serial(self):
        service = self.make_sharded(2, max_in_flight=8)
        serial = {
            path: service.execute("serial", "corpus", path) for path in PATHS
        }
        outcomes = {}
        lock = threading.Lock()

        def worker(path):
            def run():
                outcome = service.execute("conc", "corpus", path)
                with lock:
                    outcomes[path] = outcome

            return run

        run_threads([worker(path) for path in PATHS] * 2)
        for path in PATHS:
            assert outcomes[path].codes == serial[path].codes
            assert [normalize(r) for r in outcomes[path].reports] == [
                normalize(r) for r in serial[path].reports
            ]

    def test_sharded_chaos_is_replayable(self):
        chaos = FaultConfig(seed=CHAOS_SEED, read_error_rate=0.01)
        service = self.make_sharded(4, chaos=chaos)
        first = service.execute("t", "corpus", "//a//b")
        second = service.execute("t", "corpus", "//a//b")
        assert first.codes == second.codes
        assert [normalize(r) for r in first.reports] == [
            normalize(r) for r in second.reports
        ]

    def test_sharded_update_then_query(self):
        service = self.make_sharded(2)
        before = service.execute("t", "corpus", "//a").count
        with service.exclusive("corpus") as doc:
            service.db.insert_element(doc, doc.tree.root, "a")
        after = service.execute("t", "corpus", "//a")
        assert after.count == before + 1

    def test_sharded_queries_over_the_wire(self):
        service = self.make_sharded(2)
        plain = QueryService(make_db())
        with ServerThread(service) as server:
            with ServiceClient(port=server.port) as client:
                response = client.query_all("corpus", "//a//b")
                assert response["status"] == "ok"
        expect = sorted(plain.execute("t", "corpus", "//a//b").codes)
        assert sorted(response["codes"]) == expect
