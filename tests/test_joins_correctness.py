"""Cross-algorithm correctness: every join algorithm must agree with the
brute-force oracle on arbitrary inputs.

This is the central property test of the repository: the paper's claim
is that all framework algorithms compute the same containment join; any
divergence is a bug in coding, storage or join logic.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    AncDesBPlusJoin,
    BlockNestedLoopJoin,
    BufferManager,
    DiskManager,
    ElementSet,
    IndexNestedLoopJoin,
    JoinSink,
    MPMGJoin,
    MultiHeightJoin,
    MultiHeightRollupJoin,
    SingleHeightJoin,
    StackTreeAncJoin,
    StackTreeDescJoin,
    VerticalPartitionJoin,
    binarize,
    brute_force_join,
    random_tree,
)
from repro.core import pbitree as pt

ALL_ALGORITHMS = [
    BlockNestedLoopJoin,
    IndexNestedLoopJoin,
    MPMGJoin,
    StackTreeDescJoin,
    StackTreeAncJoin,
    AncDesBPlusJoin,
    MultiHeightJoin,
    MultiHeightRollupJoin,
    VerticalPartitionJoin,
]


def run_join(algorithm, a_codes, d_codes, tree_height, frames=8, page_size=128):
    disk = DiskManager(page_size=page_size)
    bufmgr = BufferManager(disk, frames)
    a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
    d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
    sink = JoinSink("collect")
    algorithm.run(a_set, d_set, sink)
    return sorted(sink.pairs)


@st.composite
def join_inputs(draw):
    """Random tree + random (possibly overlapping) element subsets."""
    num_nodes = draw(st.integers(2, 400))
    seed = draw(st.integers(0, 10_000))
    fanout = draw(st.sampled_from([2, 3, 8, 20]))
    tree = random_tree(num_nodes, max_fanout=fanout, seed=seed)
    encoding = binarize(tree)
    rng = random.Random(seed + 1)
    codes = tree.codes
    a_size = draw(st.integers(0, num_nodes))
    d_size = draw(st.integers(0, num_nodes))
    a_codes = rng.sample(codes, a_size)
    d_codes = rng.sample(codes, d_size)
    return a_codes, d_codes, encoding.tree_height


@pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.__name__)
@given(inputs=join_inputs())
@settings(max_examples=12, deadline=None)
def test_algorithm_matches_brute_force(algorithm_cls, inputs):
    a_codes, d_codes, tree_height = inputs
    expected = sorted(brute_force_join(a_codes, d_codes))
    got = run_join(algorithm_cls(), a_codes, d_codes, tree_height)
    assert got == expected


def naive_elementset_oracle(a_set, d_set):
    """O(|A| * |D|) containment oracle over the *stored* element sets.

    Unlike :func:`brute_force_join` (which works on the in-memory code
    lists), this oracle re-reads both sets from their pages, so it also
    cross-checks the storage round trip the algorithms depend on.
    """
    a_codes = a_set.to_list()
    d_codes = d_set.to_list()
    return sorted(
        (a, d) for a in a_codes for d in d_codes if pt.is_ancestor(a, d)
    )


@given(inputs=join_inputs())
@settings(max_examples=10, deadline=None)
def test_all_algorithms_match_elementset_oracle(inputs):
    """Differential test: every algorithm against the naive oracle on
    the *same* materialised ElementSets (hypothesis shrinks a failure
    to a minimal tree + subset pair)."""
    a_codes, d_codes, tree_height = inputs
    disk = DiskManager(page_size=128)
    bufmgr = BufferManager(disk, 8)
    a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
    d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
    expected = naive_elementset_oracle(a_set, d_set)
    for algorithm_cls in ALL_ALGORITHMS:
        sink = JoinSink("collect")
        algorithm_cls().run(a_set, d_set, sink)
        assert sorted(sink.pairs) == expected, (
            f"{algorithm_cls.__name__} disagrees with the naive oracle"
        )


@given(inputs=join_inputs(), frames=st.sampled_from([3, 4, 16, 64]))
@settings(max_examples=12, deadline=None)
def test_vpj_insensitive_to_buffer_size(inputs, frames):
    """VPJ recursion/merging paths vary with pool size; results must not."""
    a_codes, d_codes, tree_height = inputs
    expected = sorted(brute_force_join(a_codes, d_codes))
    got = run_join(VerticalPartitionJoin(), a_codes, d_codes, tree_height, frames)
    assert got == expected


@given(inputs=join_inputs(), frames=st.sampled_from([3, 8, 64]))
@settings(max_examples=12, deadline=None)
def test_rollup_insensitive_to_buffer_size(inputs, frames):
    a_codes, d_codes, tree_height = inputs
    expected = sorted(brute_force_join(a_codes, d_codes))
    got = run_join(MultiHeightRollupJoin(), a_codes, d_codes, tree_height, frames)
    assert got == expected


class TestEdgeCases:
    def setup_method(self):
        tree = random_tree(300, seed=11)
        self.encoding = binarize(tree)
        self.tree = tree

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.__name__)
    def test_empty_ancestors(self, algorithm_cls):
        got = run_join(
            algorithm_cls(), [], self.tree.codes[:50], self.encoding.tree_height
        )
        assert got == []

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.__name__)
    def test_empty_descendants(self, algorithm_cls):
        got = run_join(
            algorithm_cls(), self.tree.codes[:50], [], self.encoding.tree_height
        )
        assert got == []

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.__name__)
    def test_self_join_excludes_identity(self, algorithm_cls):
        """A == D: pairs (x, x) must never appear."""
        codes = self.tree.codes[:120]
        got = run_join(algorithm_cls(), codes, codes, self.encoding.tree_height)
        assert all(a != d for a, d in got)
        assert got == sorted(brute_force_join(codes, codes))

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.__name__)
    def test_root_in_ancestor_set(self, algorithm_cls):
        """The root matches every other element."""
        root_code = self.tree.codes[self.tree.root]
        d_codes = self.tree.codes[1:80]
        got = run_join(
            algorithm_cls(), [root_code], d_codes, self.encoding.tree_height
        )
        assert got == sorted((root_code, d) for d in d_codes)

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.__name__)
    def test_chain_tree(self, algorithm_cls):
        """A pure chain: every prefix node contains every suffix node."""
        from repro.datatree.node import DataTree

        tree = DataTree()
        node = tree.add_root("r")
        for _ in range(30):
            node = tree.add_child(node, "c")
        encoding = binarize(tree)
        a_codes = tree.codes[:10]
        d_codes = tree.codes[5:]
        expected = sorted(brute_force_join(a_codes, d_codes))
        got = run_join(algorithm_cls(), a_codes, d_codes, encoding.tree_height)
        assert got == expected

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.__name__)
    def test_disjoint_sets_no_results(self, algorithm_cls):
        """Leaves as ancestors match nothing."""
        leaves = [c for c in self.tree.codes if pt.height_of(c) == 0][:40]
        others = [c for c in self.tree.codes if pt.height_of(c) > 0][:40]
        got = run_join(algorithm_cls(), leaves, others, self.encoding.tree_height)
        assert got == []


class TestResultMultiplicity:
    def test_duplicate_codes_in_input_produce_duplicate_pairs(self):
        """Element sets are bags at the storage level: duplicates join
        once per occurrence (equijoin semantics)."""
        from repro.datatree.node import DataTree

        tree = DataTree()
        root = tree.add_root("r")
        tree.add_child(root, "c")
        encoding = binarize(tree)
        root_code, child_code = tree.codes
        got = run_join(
            StackTreeDescJoin(),
            [root_code, root_code],
            [child_code],
            encoding.tree_height,
        )
        assert got == [(root_code, child_code), (root_code, child_code)]
