"""Tests for the view-lifetime sanitizer (repro.storage.sanitize).

The borrow contract — *a page view is valid only while its frame stays
pinned* — is enforced at runtime when the sanitizer is on.  This suite
pins both directions of the contract:

* a deliberately leaked view across an unpin + forced eviction always
  raises a typed sanitizer error (and, crucially, the *unsanitized*
  build silently survives the same leak reading recycled bytes — the
  exact bug class the sanitizer exists for);
* every green path is unaffected: clean scans raise nothing, poisoning
  never fires while pins are held, and sanitized ``run_lineup`` output
  is field-for-field identical to unsanitized output.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import BufferManager, DiskManager, ElementSet
from repro.experiments.harness import make_lineup, run_lineup
from repro.obs.metrics import MetricsRegistry
from repro.storage import page as page_layout
from repro.storage import sanitize
from repro.storage.heapfile import HeapFile
from repro.storage.record import CODE
from repro.storage.sanitize import (
    POISON_BYTE,
    LiveViewAtEvictError,
    UseAfterUnpinError,
    ViewRegistry,
    ViewSanitizerError,
)

PAGE_SIZE = 128
CAPACITY = page_layout.page_capacity(PAGE_SIZE, CODE.record_size)


def build_heap(num_pages, pool_size, policy="lru"):
    """A heap of exactly ``num_pages`` full pages, pool drained."""
    disk = DiskManager(page_size=PAGE_SIZE)
    bufmgr = BufferManager(disk, pool_size, policy=policy)
    records = [(1 + i,) for i in range(num_pages * CAPACITY)]
    heap = HeapFile.from_records(bufmgr, CODE, records, name="sanitized")
    bufmgr.flush_all()
    bufmgr.evict_all()
    assert heap.num_pages == num_pages
    return bufmgr, heap


def leak_view(bufmgr, heap, index):
    """Pin a page, take the raw zero-copy view, unpin — the bug."""
    page_id = heap.page_ids[index]
    frame = bufmgr.pin(page_id)
    view = page_layout.read_record_array(frame.data, CODE)
    bufmgr.unpin(page_id)
    return view


def churn(bufmgr, heap, skip_index):
    """Pin/unpin every other page twice, then drain the pool."""
    for _ in range(2):
        for position, page_id in enumerate(heap.page_ids):
            if position == skip_index:
                continue
            bufmgr.pin(page_id)
            bufmgr.unpin(page_id)
    bufmgr.evict_all()


# ----------------------------------------------------------------------
# the registry is plain bookkeeping
# ----------------------------------------------------------------------
class TestViewRegistry:
    def test_register_release_roundtrip(self):
        registry = ViewRegistry()
        first = registry.register(7, "scan")
        second = registry.register(7, "index")
        assert registry.num_live == 2
        assert sorted(registry.live_labels(7)) == ["index", "scan"]
        registry.release(7, first)
        assert registry.live_labels(7) == ["index"]
        registry.release(7, second)
        assert registry.num_live == 0
        assert registry.live_labels(7) == []

    def test_release_is_idempotent(self):
        registry = ViewRegistry()
        ticket = registry.register(1, "x")
        registry.release(1, ticket)
        registry.release(1, ticket)  # unknown ticket: no-op
        registry.release(99, 12345)  # unknown page: no-op
        assert registry.num_live == 0

    def test_clear(self):
        registry = ViewRegistry()
        registry.register(1, "a")
        registry.register(2, "b")
        registry.clear()
        assert registry.num_live == 0


# ----------------------------------------------------------------------
# the mode switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_scope_restores_previous_state(self):
        before = sanitize.sanitize_enabled()
        with sanitize.sanitize_scope(True):
            assert sanitize.sanitize_enabled()
            with sanitize.sanitize_scope(False):
                assert not sanitize.sanitize_enabled()
            assert sanitize.sanitize_enabled()
        assert sanitize.sanitize_enabled() == before

    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("1", True), ("true", True), ("ON", True), ("yes", True),
            ("0", False), ("false", False), ("off", False), ("no", False),
            ("", None), ("maybe", None),
        ],
    )
    def test_env_parse(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_SANITIZE", raw)
        assert sanitize._env_sanitize_enabled() is expected

    def test_errors_are_not_storage_faults(self):
        from repro.storage.faults import StorageFault

        assert not issubclass(ViewSanitizerError, StorageFault)
        assert issubclass(UseAfterUnpinError, ViewSanitizerError)
        assert issubclass(LiveViewAtEvictError, ViewSanitizerError)


# ----------------------------------------------------------------------
# declared borrows: unpin-to-zero with a live borrow is rejected
# ----------------------------------------------------------------------
class TestDeclaredBorrows:
    def test_unpin_to_zero_with_live_borrow_raises(self):
        with sanitize.sanitize_scope(True):
            bufmgr = BufferManager(DiskManager(page_size=PAGE_SIZE), 2)
            frame = bufmgr.new_page()
            bufmgr.views.register(frame.page_id, "stray-borrow")
            with pytest.raises(UseAfterUnpinError) as excinfo:
                bufmgr.unpin(frame.page_id)
            assert excinfo.value.page_id == frame.page_id
            assert "stray-borrow" in excinfo.value.labels

    def test_nested_pin_tolerates_borrow_until_last_unpin(self):
        with sanitize.sanitize_scope(True):
            bufmgr = BufferManager(DiskManager(page_size=PAGE_SIZE), 2)
            frame = bufmgr.new_page()
            bufmgr.pin(frame.page_id)  # second pin
            ticket = bufmgr.views.register(frame.page_id, "inner")
            bufmgr.unpin(frame.page_id)  # 2 -> 1: borrow still legal
            bufmgr.views.release(frame.page_id, ticket)
            bufmgr.unpin(frame.page_id)  # 1 -> 0: clean

    @pytest.mark.parametrize(
        "derive", [lambda v: v[:2], memoryview], ids=["slice", "re-export"]
    )
    def test_retained_derived_view_caught_by_evict_probe(self, derive):
        # A derived view (slice or re-export) owns its *own* export of
        # the frame buffer: it survives the exporter's release, but the
        # buffer probe refuses to retire the frame under it.
        bufmgr, heap = build_heap(3, 2)
        with sanitize.sanitize_scope(True):
            kept = []
            with pytest.raises(LiveViewAtEvictError):
                for fields in heap.scan_page_arrays():
                    kept.append(derive(fields))  # outlives the yield
            del kept


# ----------------------------------------------------------------------
# the leak the sanitizer exists for
# ----------------------------------------------------------------------
class TestLeakedViewDetection:
    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_leaked_view_raises_on_eviction(self, policy):
        bufmgr, heap = build_heap(5, 2, policy=policy)
        with sanitize.sanitize_scope(True):
            view = leak_view(bufmgr, heap, 0)
            with pytest.raises(LiveViewAtEvictError) as excinfo:
                churn(bufmgr, heap, skip_index=0)
            assert excinfo.value.page_id == heap.page_ids[0]
            assert excinfo.value.reason in ("recycle", "evict")
            del view

    @settings(max_examples=25, deadline=None)
    @given(
        num_pages=st.integers(min_value=3, max_value=8),
        pool_size=st.integers(min_value=2, max_value=4),
        leak_index=st.integers(min_value=0, max_value=7),
        policy=st.sampled_from(["lru", "clock"]),
    )
    def test_any_leak_any_policy_always_raises(
        self, num_pages, pool_size, leak_index, policy
    ):
        if pool_size >= num_pages:
            pool_size = num_pages - 1
        leak_index %= num_pages
        bufmgr, heap = build_heap(num_pages, pool_size, policy=policy)
        with sanitize.sanitize_scope(True):
            view = leak_view(bufmgr, heap, leak_index)
            with pytest.raises(LiveViewAtEvictError):
                churn(bufmgr, heap, skip_index=leak_index)
            del view

    def test_unsanitized_build_silently_reads_recycled_bytes(self):
        # The regression the runtime mode guards against: without the
        # sanitizer the same leak raises nothing — the view survives
        # and reads another page's codes out of the recycled buffer.
        bufmgr, heap = build_heap(5, 2)
        with sanitize.sanitize_scope(False):
            view = leak_view(bufmgr, heap, 0)
            original = list(view)
            assert original[0] == 1
            # LRU pool of 2: the third distinct pin recycles page 0's
            # buffer into the incoming page — no error is raised.
            bufmgr.pin(heap.page_ids[1])
            bufmgr.unpin(heap.page_ids[1])
            bufmgr.pin(heap.page_ids[2])
            bufmgr.unpin(heap.page_ids[2])
            bufmgr.pin(heap.page_ids[3])
            bufmgr.unpin(heap.page_ids[3])
            stale = list(view)  # no exception: the silent-corruption path
            assert stale != original
            assert stale[0] != 1  # plausible codes from the *wrong* page

    def test_sanitized_view_is_revoked_on_generator_resume(self):
        bufmgr, heap = build_heap(3, 2)
        with sanitize.sanitize_scope(True):
            leaked = None
            for fields in heap.scan_page_arrays():
                if leaked is None:
                    leaked = fields  # keep the first page's borrow
            assert leaked is not None
            with pytest.raises(ValueError):
                leaked[0]  # export was revoked, not left dangling


# ----------------------------------------------------------------------
# poisoning
# ----------------------------------------------------------------------
class TestPoisoning:
    def test_retired_buffer_is_poisoned(self):
        with sanitize.sanitize_scope(True):
            bufmgr = BufferManager(DiskManager(page_size=PAGE_SIZE), 2)
            frame = bufmgr.new_page()
            frame.data[:] = bytes([7]) * PAGE_SIZE
            alias = frame.data  # plain bytearray alias: never exports
            bufmgr.unpin(frame.page_id, dirty=True)
            bufmgr.evict_all()
            assert set(alias) == {POISON_BYTE}

    def test_recycle_path_poisons_and_never_reuses(self):
        with sanitize.sanitize_scope(True):
            bufmgr, heap = build_heap(4, 2)
            bufmgr.pin(heap.page_ids[0])
            alias = bufmgr._frames[heap.page_ids[0]].data
            bufmgr.unpin(heap.page_ids[0])
            # fill the pool and force a recycle of page 0's frame
            for page_id in heap.page_ids[1:]:
                bufmgr.pin(page_id)
                bufmgr.unpin(page_id)
            assert set(alias) == {POISON_BYTE}
            # no resident frame shares the poisoned buffer
            assert all(
                f.data is not alias for f in bufmgr._frames.values()
            )

    def test_poisoning_never_fires_on_live_data(self):
        # A clean sanitized scan: every page decodes to its true codes,
        # nothing ever reads poison, and the pool drains without error.
        bufmgr, heap = build_heap(4, 2)
        with sanitize.sanitize_scope(True):
            seen = []
            for fields in heap.scan_page_arrays():
                seen.extend(fields)
            assert seen == [1 + i for i in range(4 * CAPACITY)]
            bufmgr.evict_all()

    def test_poison_noop_when_disabled(self):
        with sanitize.sanitize_scope(False):
            data = bytearray(b"\x01" * 8)
            sanitize.poison(data)
            assert data == b"\x01" * 8


# ----------------------------------------------------------------------
# the escape hatch: copy=True yields owning arrays
# ----------------------------------------------------------------------
class TestCopyEscapeHatch:
    @pytest.mark.parametrize("enabled", [False, True])
    def test_copied_pages_outlive_the_scan(self, enabled):
        bufmgr, heap = build_heap(4, 2)
        with sanitize.sanitize_scope(enabled):
            pages = list(heap.scan_page_arrays(copy=True))
            bufmgr.evict_all()  # no live views: clean drain
            flat = [value for fields in pages for value in fields]
            assert flat == [1 + i for i in range(4 * CAPACITY)]

    def test_element_set_scan_code_arrays_copy(self):
        bufmgr = BufferManager(DiskManager(page_size=PAGE_SIZE), 3)
        codes = [(1 << 40) + 2 * i + 1 for i in range(3 * CAPACITY)]
        elements = ElementSet.from_codes(bufmgr, codes, 62, "T")
        with sanitize.sanitize_scope(True):
            pages = list(elements.scan_code_arrays(copy=True))
            bufmgr.flush_all()
            bufmgr.evict_all()
            assert [c for page in pages for c in page] == codes


# ----------------------------------------------------------------------
# end-to-end: sanitized runs are observationally identical
# ----------------------------------------------------------------------
def normalize(report):
    return dataclasses.replace(report, wall_seconds=0.0, trace=None)


def lineup_inputs():
    from repro import binarize, random_tree

    tree = random_tree(240, max_fanout=5, seed=31)
    encoding = binarize(tree)
    rng = random.Random(17)
    a_codes = rng.sample(tree.codes, 120)
    d_codes = rng.sample(tree.codes, 150)
    return a_codes, d_codes, encoding.tree_height


class TestLineupEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_sanitized_reports_field_for_field_identical(self, workers):
        a_codes, d_codes, tree_height = lineup_inputs()
        runs = {}
        for sanitized in (False, True):
            runs[sanitized] = run_lineup(
                "sanitize-diff",
                a_codes,
                d_codes,
                tree_height,
                buffer_pages=8,
                page_size=128,
                algorithms=make_lineup(False),
                collect=True,
                workers=workers,
                sanitize=sanitized,
            )
        plain, sanitized = runs[False], runs[True]
        assert sanitized.result_count == plain.result_count
        for p_result, s_result in zip(plain.results, sanitized.results):
            assert s_result.name == p_result.name
            assert normalize(s_result.report) == normalize(p_result.report), (
                f"{p_result.name} diverges under the sanitizer"
            )

    def test_sanitize_gauge_recorded(self):
        a_codes, d_codes, tree_height = lineup_inputs()
        for sanitized, expected in ((False, 0.0), (True, 1.0)):
            metrics = MetricsRegistry()
            run_lineup(
                "gauge",
                a_codes,
                d_codes,
                tree_height,
                buffer_pages=8,
                page_size=128,
                algorithms=make_lineup(False)[:1],
                metrics=metrics,
                sanitize=sanitized,
            )
            assert metrics.as_dict()["sanitize.enabled"] == expected
