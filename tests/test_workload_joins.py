"""Cross-algorithm agreement on the *workload* trees.

The synthetic correctness suite uses random trees; this one drives
every algorithm (including the spatial pair) over joins extracted from
the DBLP-like, XMark-like and text workloads — the shapes the paper's
Section 4.2 runs — and checks pairwise agreement plus oracle equality.
"""

import pytest

from repro import (
    AncDesBPlusJoin,
    BlockNestedLoopJoin,
    BufferManager,
    DiskManager,
    ElementSet,
    IndexNestedLoopJoin,
    JoinSink,
    MPMGJoin,
    MultiHeightJoin,
    MultiHeightRollupJoin,
    RTreeProbeJoin,
    StackTreeAncJoin,
    StackTreeDescJoin,
    SynchronizedRTreeJoin,
    VerticalPartitionJoin,
    binarize,
    brute_force_join,
)
from repro.datatree.paths import select_by_tag
from repro.workloads import dblp, textdoc, xmark

ALGORITHMS = [
    BlockNestedLoopJoin,
    IndexNestedLoopJoin,
    MPMGJoin,
    StackTreeDescJoin,
    StackTreeAncJoin,
    AncDesBPlusJoin,
    MultiHeightJoin,
    MultiHeightRollupJoin,
    VerticalPartitionJoin,
    RTreeProbeJoin,
    SynchronizedRTreeJoin,
]


def run_all(tree, encoding, anc_tag, desc_tag, frames=16):
    a_codes = select_by_tag(tree, anc_tag)
    d_codes = select_by_tag(tree, desc_tag)
    expected = sorted(brute_force_join(a_codes, d_codes))
    disk = DiskManager()
    bufmgr = BufferManager(disk, frames)
    a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
    d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height)
    for algorithm_cls in ALGORITHMS:
        sink = JoinSink("collect")
        algorithm_cls().run(a_set, d_set, sink)
        assert sorted(sink.pairs) == expected, algorithm_cls.__name__
    return len(expected)


@pytest.fixture(scope="module")
def dblp_doc():
    tree = dblp.generate_tree(num_publications=400, seed=17)
    return tree, binarize(tree)


@pytest.fixture(scope="module")
def xmark_doc():
    tree = xmark.generate_tree(scale=0.03, seed=17)
    return tree, binarize(tree)


@pytest.fixture(scope="module")
def text_doc():
    tree = textdoc.generate_tree(num_parts=1, chapters_per_part=3, seed=17)
    return tree, binarize(tree)


class TestDBLPJoins:
    @pytest.mark.parametrize("join", dblp.DBLP_JOINS[:6], ids=lambda j: j.name)
    def test_all_algorithms_agree(self, dblp_doc, join):
        tree, encoding = dblp_doc
        run_all(tree, encoding, join.anc_tag, join.desc_tag)


class TestXMarkJoins:
    @pytest.mark.parametrize("join", xmark.XMARK_JOINS[:6], ids=lambda j: j.name)
    def test_all_algorithms_agree(self, xmark_doc, join):
        tree, encoding = xmark_doc
        run_all(tree, encoding, join.anc_tag, join.desc_tag)

    def test_nested_self_join(self, xmark_doc):
        """parlist <| parlist: nested same-tag ancestors (B9 shape)."""
        tree, encoding = xmark_doc
        count = run_all(tree, encoding, "parlist", "parlist")
        assert count > 0


class TestTextJoins:
    @pytest.mark.parametrize("join", textdoc.TEXT_JOINS, ids=lambda j: j.name)
    def test_all_algorithms_agree(self, text_doc, join):
        tree, encoding = text_doc
        run_all(tree, encoding, join.anc_tag, join.desc_tag)
