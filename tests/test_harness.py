"""Tests for the experiment harness and report formatting."""

import pytest

from repro.experiments.harness import (
    LineupResult,
    Workbench,
    make_algorithm,
    make_lineup,
    materialize,
    run_algorithm,
    run_lineup,
)
from repro.experiments.harness import AlgorithmResult
from repro.experiments.report import format_ratio, format_table
from repro.join.base import JoinReport, JoinSink
from repro.storage.stats import IOSnapshot
from repro.workloads import synthetic as syn


class TestWorkbench:
    def test_create(self):
        bench = Workbench.create(buffer_pages=7, page_size=256)
        assert bench.bufmgr.num_pages == 7
        assert bench.disk.page_size == 256

    def test_materialize_is_cold(self):
        bench = Workbench.create(buffer_pages=8, page_size=128)
        elements = materialize(bench.bufmgr, list(range(1, 200)), 10, "x")
        bench.disk.stats.reset()
        list(elements.scan())
        # every page re-read from disk: the set was evicted
        assert bench.disk.stats.reads == elements.num_pages


class TestMakeAlgorithm:
    @pytest.mark.parametrize(
        "name", ["INLJN", "STACKTREE", "ADB+", "SHCJ", "MHCJ+Rollup", "VPJ"]
    )
    def test_known_names(self, name):
        assert make_algorithm(name).name in (name, "SHCJ")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_algorithm("MAGIC")

    def test_lineups(self):
        assert "SHCJ" in make_lineup(single_height=True)
        assert "MHCJ+Rollup" in make_lineup(single_height=False)
        assert set(make_lineup(True)) >= {"INLJN", "STACKTREE", "ADB+"}


class TestRunAlgorithm:
    def test_cold_start_and_prep_accounting(self):
        spec = syn.spec_by_name("SSSH", large=2000, small=300)
        ds = syn.generate(spec, seed=1)
        bench = Workbench.create(buffer_pages=8, page_size=128)
        a_set = materialize(bench.bufmgr, ds.a_codes, ds.tree_height, "A")
        d_set = materialize(bench.bufmgr, ds.d_codes, ds.tree_height, "D")
        report = run_algorithm(make_algorithm("STACKTREE"), a_set, d_set)
        # unsorted inputs: stack-tree must pay the external sorts
        assert report.prep_io.total > 0
        assert report.result_count == ds.num_results

    def test_collecting_sink(self):
        spec = syn.spec_by_name("SSSL", large=1000, small=150)
        ds = syn.generate(spec, seed=2)
        bench = Workbench.create(buffer_pages=8, page_size=128)
        a_set = materialize(bench.bufmgr, ds.a_codes, ds.tree_height, "A")
        d_set = materialize(bench.bufmgr, ds.d_codes, ds.tree_height, "D")
        sink = JoinSink("collect")
        run_algorithm(make_algorithm("VPJ"), a_set, d_set, sink)
        assert len(sink.pairs) == ds.num_results


class TestRunLineup:
    def test_all_algorithms_agree_and_ratios(self):
        spec = syn.spec_by_name("SSSH", large=1500, small=250)
        ds = syn.generate(spec, seed=3)
        lineup = run_lineup(
            "SSSH",
            ds.a_codes,
            ds.d_codes,
            ds.tree_height,
            buffer_pages=8,
            page_size=128,
            single_height=True,
        )
        assert lineup.result_count == ds.num_results
        assert lineup.min_rgn_io > 0
        for name in ("SHCJ", "VPJ"):
            ratio = lineup.improvement_ratio(name)
            assert -2.0 <= ratio <= 1.0
            assert lineup.speedup(name) > 0

    def test_missing_algorithm_lookup(self):
        lineup = LineupResult(dataset="x")
        with pytest.raises(KeyError):
            lineup.by_name("nope")

    def test_requires_lineup_or_flag(self):
        with pytest.raises(ValueError):
            run_lineup("x", [1], [2], 5)

    def test_explicit_algorithm_list(self):
        spec = syn.spec_by_name("SSSL", large=800, small=100)
        ds = syn.generate(spec, seed=4)
        lineup = run_lineup(
            "SSSL",
            ds.a_codes,
            ds.d_codes,
            ds.tree_height,
            buffer_pages=8,
            page_size=128,
            algorithms=["STACKTREE", "VPJ"],
        )
        assert [r.name for r in lineup.results] == ["STACKTREE", "VPJ"]


def _tiny_lineup(baseline_io, alg_io, baseline_wall=0.0, alg_wall=0.0):
    """A two-entry lineup built by hand, small enough to hit 0-I/O runs."""

    def result(name, io, wall):
        report = JoinReport(
            algorithm=name,
            result_count=0,
            join_io=IOSnapshot(reads=io),
            wall_seconds=wall,
        )
        return AlgorithmResult(name=name, report=report)

    lineup = LineupResult(dataset="tiny")
    lineup.results.append(result("INLJN", baseline_io, baseline_wall))
    lineup.results.append(result("VPJ", alg_io, alg_wall))
    return lineup


class TestDegenerateRatios:
    """Regression: tiny inputs that fit entirely in the buffer pool can
    finish with zero I/O (and sub-tick wall time), which used to divide
    by zero inside improvement_ratio/speedup."""

    def test_zero_baseline_zero_alg_is_a_tie(self):
        lineup = _tiny_lineup(baseline_io=0, alg_io=0)
        assert lineup.improvement_ratio("VPJ") == 0.0
        assert lineup.speedup("VPJ") == 1.0

    def test_zero_baseline_paying_alg_is_minus_inf(self):
        lineup = _tiny_lineup(baseline_io=0, alg_io=4)
        assert lineup.improvement_ratio("VPJ") == float("-inf")
        assert lineup.speedup("VPJ") == 0.0

    def test_free_alg_against_paying_baseline(self):
        lineup = _tiny_lineup(baseline_io=8, alg_io=0)
        assert lineup.improvement_ratio("VPJ") == 1.0
        assert lineup.speedup("VPJ") == float("inf")

    def test_normal_case_unchanged(self):
        lineup = _tiny_lineup(baseline_io=10, alg_io=5)
        assert lineup.improvement_ratio("VPJ") == pytest.approx(0.5)
        assert lineup.speedup("VPJ") == pytest.approx(2.0)

    def test_wall_speedup_sub_tick_guards(self):
        both_zero = _tiny_lineup(0, 0, baseline_wall=0.0, alg_wall=0.0)
        assert both_zero.wall_speedup("VPJ") == 1.0
        free_alg = _tiny_lineup(0, 0, baseline_wall=0.5, alg_wall=0.0)
        assert free_alg.wall_speedup("VPJ") == float("inf")
        normal = _tiny_lineup(0, 0, baseline_wall=1.0, alg_wall=0.25)
        assert normal.wall_speedup("VPJ") == pytest.approx(4.0)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "io"],
            [["SLLH", 1234], ["SSSL", 7]],
            title="Table 2(e)",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 2(e)"
        assert "name" in lines[1] and "io" in lines[1]
        assert len(lines) == 5

    def test_float_cells(self):
        text = format_table(["r"], [[0.123456]])
        assert "0.123" in text

    def test_format_ratio(self):
        assert format_ratio(0.956) == "95.6%"
        assert format_ratio(0.0) == "0.0%"
