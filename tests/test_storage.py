"""Tests for the disk manager, I/O statistics and record/page layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import page as page_layout
from repro.storage.disk import DiskManager, PageNotAllocatedError
from repro.storage.record import CODE, PAIR, TRIPLE, RecordCodec
from repro.storage.stats import IOSnapshot, IOStats


class TestDiskManager:
    def test_allocate_read_write(self):
        disk = DiskManager(page_size=128)
        pid = disk.allocate()
        assert disk.read(pid) == bytes(128)
        disk.write(pid, b"\x07" * 128)
        assert disk.read(pid) == b"\x07" * 128

    def test_contiguous_allocation(self):
        disk = DiskManager()
        first = disk.allocate(5)
        assert [disk.is_allocated(first + i) for i in range(5)] == [True] * 5
        assert disk.allocate() == first + 5

    def test_wrong_size_write_rejected(self):
        disk = DiskManager(page_size=128)
        pid = disk.allocate()
        with pytest.raises(ValueError):
            disk.write(pid, b"short")

    def test_unallocated_access_rejected(self):
        disk = DiskManager()
        with pytest.raises(PageNotAllocatedError):
            disk.read(42)
        with pytest.raises(PageNotAllocatedError):
            disk.write(42, bytes(disk.page_size))
        with pytest.raises(PageNotAllocatedError):
            disk.deallocate(42)

    def test_unallocated_errors_carry_structured_context(self):
        """The error names the page and the operation that hit it."""
        disk = DiskManager()
        for operation, action in (
            ("read", lambda: disk.read(42)),
            ("write", lambda: disk.write(42, bytes(disk.page_size))),
            ("deallocate", lambda: disk.deallocate(42)),
        ):
            with pytest.raises(PageNotAllocatedError) as exc_info:
                action()
            error = exc_info.value
            assert error.page_id == 42
            assert error.operation == operation
            assert "42" in str(error) and operation in str(error)

    def test_deallocate(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.deallocate(pid)
        assert not disk.is_allocated(pid)
        assert disk.num_allocated == 0

    def test_tiny_page_size_rejected(self):
        with pytest.raises(ValueError):
            DiskManager(page_size=16)

    def test_zero_allocation_rejected(self):
        with pytest.raises(ValueError):
            DiskManager().allocate(0)


class TestIOStats:
    def test_counters(self):
        disk = DiskManager()
        pids = [disk.allocate() for _ in range(3)]
        for pid in pids:
            disk.read(pid)
        disk.write(pids[0], bytes(disk.page_size))
        snap = disk.stats.snapshot()
        assert snap.reads == 3 and snap.writes == 1 and snap.allocations == 3
        assert snap.total == 4

    def test_sequential_vs_random(self):
        stats = IOStats()
        for pid in (0, 1, 2):       # sequential after the first
            stats.record_read(pid)
        stats.record_read(9)        # random
        stats.record_read(10)       # sequential again
        snap = stats.snapshot()
        assert snap.reads == 5
        assert snap.random_reads == 2  # first read + the jump to 9
        assert snap.sequential_reads == 3

    def test_write_moves_the_disk_head(self):
        """Regression: writes used to leave the head at the last *read*,
        so a read contiguous with it was classified sequential even
        though the intervening write had seeked the arm away."""
        stats = IOStats()
        stats.record_read(1)    # random (first access)
        stats.record_write(50)  # head is now at page 50
        stats.record_read(2)    # contiguous with read 1, but a seek from 50
        assert stats.snapshot().random_reads == 2

    def test_read_after_contiguous_write_is_sequential(self):
        stats = IOStats()
        stats.record_write(7)
        stats.record_read(8)    # head sits at 7, so this is sequential
        snap = stats.snapshot()
        assert snap.reads == 1 and snap.random_reads == 0

    def test_reset_forgets_the_head(self):
        stats = IOStats()
        stats.record_read(5)
        stats.reset()
        stats.record_read(6)    # first access after reset: random again
        assert stats.snapshot().random_reads == 1

    def test_delta_and_subtraction(self):
        stats = IOStats()
        stats.record_read(0)
        before = stats.snapshot()
        stats.record_read(1)
        stats.record_write(1)
        delta = stats.delta(before)
        assert delta.reads == 1 and delta.writes == 1

    def test_weighted_cost(self):
        snap = IOSnapshot(reads=10, writes=5, random_reads=4)
        assert snap.weighted_cost() == 15.0
        assert snap.weighted_cost(random_penalty=10) == 6 + 5 + 40

    def test_reset(self):
        stats = IOStats()
        stats.record_read(0)
        stats.record_retry()
        stats.record_giveup()
        stats.reset()
        assert stats.snapshot() == IOSnapshot()

    def test_retry_and_giveup_counters(self):
        stats = IOStats()
        stats.record_retry()
        stats.record_retry()
        stats.record_giveup()
        snap = stats.snapshot()
        assert snap.retries == 2 and snap.giveups == 1
        delta = stats.delta(snap)
        assert delta.retries == 0 and delta.giveups == 0
        stats.record_retry()
        assert stats.delta(snap).retries == 1


class TestRecordCodec:
    def test_builtin_codecs(self):
        assert CODE.record_size == 8
        assert PAIR.record_size == 16
        assert TRIPLE.record_size == 24

    @given(st.lists(st.tuples(st.integers(0, 2**63), st.integers(0, 2**63)), max_size=50))
    @settings(max_examples=25)
    def test_pack_roundtrip(self, records):
        blob = PAIR.pack_many(records)
        assert list(PAIR.iter_unpack(blob, len(records))) == records

    def test_pack_into_offsets(self):
        buffer = bytearray(64)
        CODE.pack_into(buffer, 8, (99,))
        assert CODE.unpack(buffer, 8) == (99,)

    def test_zero_arity_rejected(self):
        with pytest.raises(ValueError):
            RecordCodec(0)


class TestPageLayout:
    def test_capacity(self):
        assert page_layout.page_capacity(1024, 8) == 127
        assert page_layout.page_capacity(1024, 16) == 63

    def test_record_too_big_rejected(self):
        with pytest.raises(ValueError):
            page_layout.page_capacity(64, 100)

    def test_count_and_link(self):
        data = bytearray(256)
        page_layout.set_record_count(data, 17)
        page_layout.set_next_page(data, 42)
        assert page_layout.get_record_count(data) == 17
        assert page_layout.get_next_page(data) == 42
        page_layout.set_next_page(data, None)
        assert page_layout.get_next_page(data) is None

    def test_read_write_records(self):
        data = bytearray(256)
        records = [(1, 2), (3, 4), (5, 6)]
        page_layout.write_records(data, PAIR, records)
        assert page_layout.read_records(data, PAIR) == records
