"""Tests for the hash-equijoin substrate (Grace partitioning, in-memory)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.join.hash_join import (
    GracePartitioner,
    grace_hash_join,
    in_memory_hash_join,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager
from repro.storage.heapfile import HeapFile
from repro.storage.record import CODE, PAIR


def make_env(frames=8, page_size=128):
    disk = DiskManager(page_size=page_size)
    return disk, BufferManager(disk, frames)


def reference_equijoin(build, probe):
    out = []
    for b in build:
        for p in probe:
            if b[0] == p[0]:
                out.append((b, p))
    return sorted(out)


class TestInMemoryHashJoin:
    @given(
        st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=80),
        st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=80),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, build, probe):
        out = []
        in_memory_hash_join(
            [build],
            [probe],
            lambda r: r[0],
            lambda r: r[0],
            lambda b, p: out.append((b, p)),
        )
        assert sorted(out) == reference_equijoin(build, probe)

    def test_none_keys_filtered(self):
        out = []
        in_memory_hash_join(
            [[(1, 0), (2, 0)]],
            [[(1, 1), (2, 2)]],
            lambda r: r[0] if r[0] != 2 else None,
            lambda r: r[0] if r[0] != 1 else None,
            lambda b, p: out.append((b[0], p[0])),
        )
        assert out == []  # 1 filtered on probe side, 2 on build side

    def test_duplicate_build_keys(self):
        out = []
        in_memory_hash_join(
            [[(5, 1), (5, 2)]],
            [[(5, 9)]],
            lambda r: r[0],
            lambda r: r[0],
            lambda b, p: out.append(b[1]),
        )
        assert sorted(out) == [1, 2]


class TestGracePartitioner:
    def test_partition_is_disjoint_and_complete(self):
        _disk, bufmgr = make_env()
        partitioner = GracePartitioner(bufmgr, CODE, 4)
        records = [(i,) for i in range(500)]
        files = partitioner.partition([records], lambda r: r[0])
        recovered = sorted(r[0] for f in files for r in f.scan())
        assert recovered == list(range(500))
        partitioner.destroy()

    def test_same_key_lands_in_same_bucket(self):
        _disk, bufmgr = make_env()
        build = GracePartitioner(bufmgr, PAIR, 5, "b")
        probe = GracePartitioner(bufmgr, PAIR, 5, "p")
        build_files = build.partition(
            [[(k, 0) for k in range(100)]], lambda r: r[0]
        )
        probe_files = probe.partition(
            [[(k, 1) for k in range(100)]], lambda r: r[0]
        )
        for build_file, probe_file in zip(build_files, probe_files):
            assert {r[0] for r in build_file.scan()} == {
                r[0] for r in probe_file.scan()
            }

    def test_too_many_partitions_rejected(self):
        _disk, bufmgr = make_env(frames=4)
        with pytest.raises(ValueError):
            GracePartitioner(bufmgr, CODE, 4)  # needs 5 frames

    def test_zero_partitions_rejected(self):
        _disk, bufmgr = make_env()
        with pytest.raises(ValueError):
            GracePartitioner(bufmgr, CODE, 0)


class TestGraceHashJoin:
    @given(
        st.lists(st.tuples(st.integers(0, 30), st.integers(0, 9)), max_size=150),
        st.lists(st.tuples(st.integers(0, 30), st.integers(0, 9)), max_size=150),
        st.integers(2, 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_reference(self, build, probe, k):
        _disk, bufmgr = make_env(frames=8)
        out = []
        grace_hash_join(
            bufmgr,
            [build],
            [probe],
            PAIR,
            PAIR,
            lambda r: r[0],
            lambda r: r[0],
            lambda b, p: out.append((b, p)),
            num_partitions=k,
        )
        assert sorted(out) == reference_equijoin(build, probe)

    def test_intermediates_cleaned_up(self):
        disk, bufmgr = make_env()
        before = disk.num_allocated
        grace_hash_join(
            bufmgr,
            [[(i, 0) for i in range(300)]],
            [[(i, 1) for i in range(300)]],
            PAIR,
            PAIR,
            lambda r: r[0],
            lambda r: r[0],
            lambda b, p: None,
            num_partitions=4,
        )
        bufmgr.evict_all()
        assert disk.num_allocated == before

    def test_io_is_three_passes_when_cold(self):
        """Grace join of cold on-disk inputs costs about 3(||A||+||D||)."""
        disk, bufmgr = make_env(frames=8, page_size=128)
        build_heap = HeapFile.from_records(bufmgr, CODE, [(i,) for i in range(2000)])
        probe_heap = HeapFile.from_records(bufmgr, CODE, [(i,) for i in range(2000)])
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()
        grace_hash_join(
            bufmgr,
            build_heap.scan_pages(),
            probe_heap.scan_pages(),
            CODE,
            CODE,
            lambda r: r[0],
            lambda r: r[0],
            lambda b, p: None,
            num_partitions=6,
        )
        bufmgr.flush_all()
        pages = build_heap.num_pages + probe_heap.num_pages
        total = disk.stats.snapshot().total
        assert 2.5 * pages <= total <= 3.8 * pages
