"""Tests for path-query pipelines and proximity operators."""

import random

import pytest

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    binarize,
    random_tree,
)
from repro.core import pbitree as pt
from repro.datatree.builder import tree_from_spec
from repro.datatree.paths import PathQuery
from repro.join.pipeline import PathPipeline, plan_direction
from repro.join.proximity import common_ancestor_join, sibling_pairs, window_join
from repro.join.statistics import SetStatistics


def build_sets(tree, encoding, tags, frames=32):
    disk = DiskManager()
    bufmgr = BufferManager(disk, frames)
    return bufmgr, [
        ElementSet.from_tree_tag(bufmgr, tree, tag, encoding.tree_height)
        for tag in tags
    ]


class TestPathPipeline:
    @pytest.mark.parametrize("direction", [None, "top-down", "bottom-up"])
    @pytest.mark.parametrize("path", ["//a//b", "//a//b//c", "//c//b//a//d"])
    def test_matches_navigational(self, direction, path):
        rng = random.Random(1)
        for trial in range(3):
            tree = random_tree(
                rng.randrange(100, 900), seed=trial, tags=("a", "b", "c", "d")
            )
            encoding = binarize(tree)
            query = PathQuery(path)
            expected = sorted(query.evaluate_navigational(tree))
            bufmgr, sets = build_sets(tree, encoding, query.steps)
            pipeline = PathPipeline(bufmgr, direction=direction)
            result = pipeline.execute(sets)
            assert result.codes == expected, (trial, path, direction)
            assert len(result.reports) >= len(query.steps) - 1

    def test_single_step(self):
        tree = random_tree(50, seed=2)
        encoding = binarize(tree)
        bufmgr, sets = build_sets(tree, encoding, ["a"])
        result = PathPipeline(bufmgr).execute(sets)
        assert result.codes == sorted(sets[0].scan())
        assert result.reports == []

    def test_empty_path_rejected(self):
        disk = DiskManager()
        bufmgr = BufferManager(disk, 8)
        with pytest.raises(ValueError):
            PathPipeline(bufmgr).execute([])

    def test_bad_direction_rejected(self):
        disk = DiskManager()
        bufmgr = BufferManager(disk, 8)
        with pytest.raises(ValueError):
            PathPipeline(bufmgr, direction="sideways")

    def test_direction_planning_prefers_selective_end(self):
        """A tiny final set should pull the plan bottom-up."""
        tree = tree_from_spec(
            ("root", [
                ("a", [("b", [("rare", [])])]),
            ] + [("a", [("b", [])]) for _ in range(200)])
        )
        encoding = binarize(tree)
        stats = [
            SetStatistics.from_codes(
                [tree.codes[n] for n in tree.iter_by_tag(tag)],
                encoding.tree_height,
            )
            for tag in ("a", "b", "rare")
        ]
        direction, top_down, bottom_up = plan_direction(stats)
        assert bottom_up < top_down
        assert direction == "bottom-up"

    def test_direction_planning_single_step(self):
        stats = [SetStatistics.from_codes([4])]
        assert plan_direction(stats)[0] == "top-down"

    def test_custom_algorithm_factory(self):
        from repro import StackTreeDescJoin

        tree = random_tree(300, seed=3, tags=("a", "b"))
        encoding = binarize(tree)
        query = PathQuery("//a//b")
        bufmgr, sets = build_sets(tree, encoding, query.steps)
        used = []

        def factory(a_set, d_set):
            used.append((a_set.name, d_set.name))
            return StackTreeDescJoin()

        result = PathPipeline(bufmgr, algorithm_factory=factory).execute(sets)
        assert used
        assert result.codes == sorted(query.evaluate_navigational(tree))


class TestCommonAncestorJoin:
    def test_equals_brute_force(self):
        rng = random.Random(4)
        tree = random_tree(500, seed=4)
        encoding = binarize(tree)
        codes = tree.codes
        left = rng.sample(codes, 200)
        right = rng.sample(codes, 200)
        for height in (3, 6, 10):
            got = sorted(common_ancestor_join(left, right, height))
            want = sorted(
                (x, y)
                for x in left
                for y in right
                if x != y
                and pt.height_of(x) < height
                and pt.height_of(y) < height
                and pt.f_ancestor(x, height) == pt.f_ancestor(y, height)
            )
            assert got == want, height

    def test_self_pairs_controlled(self):
        codes = [4, 6]
        with_self = list(
            common_ancestor_join(codes, codes, 3, exclude_self=False)
        )
        without = list(common_ancestor_join(codes, codes, 3))
        assert len(with_self) == len(without) + 2

    def test_elements_at_height_ignored(self):
        # an element AT the common height has no ancestor there
        assert list(common_ancestor_join([8], [1], 3)) == []


class TestWindowJoin:
    def test_equals_brute_force(self):
        rng = random.Random(5)
        tree = random_tree(400, seed=5)
        binarize(tree)
        left = rng.sample(tree.codes, 150)
        right = rng.sample(tree.codes, 150)
        for window in (0, 5, 50):
            got = sorted(window_join(left, right, window))
            want = sorted(
                (x, y)
                for x in left
                for y in right
                if x != y and abs(pt.start_of(x) - pt.start_of(y)) <= window
            )
            assert got == want, window

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            list(window_join([1], [2], -1))

    def test_zero_window_same_start_chain(self):
        # codes 16, 8, 4, 2, 1 share Start = 1 in an H=5 tree
        chain = [16, 8, 4, 2, 1]
        got = list(window_join(chain, chain, 0))
        assert len(got) == len(chain) * (len(chain) - 1)


class TestSiblingPairs:
    def test_true_siblings_found(self):
        tree = tree_from_spec(
            ("root", [("x", []), ("y", []), ("z", [("u", []), ("v", [])])])
        )
        encoding = binarize(tree)
        pairs = set(sibling_pairs(tree.codes, encoding.tree_height))
        # x–y, x–z, y–z and u–v must all be covered
        def code(tag):
            return tree.codes[next(tree.iter_by_tag(tag))]

        for a, b in (("x", "y"), ("x", "z"), ("y", "z"), ("u", "v")):
            pair = tuple(sorted((code(a), code(b))))
            assert pair in pairs, (a, b)

    def test_no_cross_parent_pairs_at_k1(self):
        """Nodes under different parents never pair when the parents
        are further apart than max_placement levels allow."""
        tree = tree_from_spec(
            ("root", [("p", [("c1", [])]), ("q", [("c2", [])])])
        )
        encoding = binarize(tree, min_height=12)
        c1 = tree.codes[2]
        c2 = tree.codes[4]
        pairs = set(sibling_pairs([c1, c2], encoding.tree_height, max_placement=1))
        assert tuple(sorted((c1, c2))) not in pairs
