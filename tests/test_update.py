"""Tests for updates through virtual nodes (Section 2.3.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.core.binarize import binarize
from repro.core.update import CodeSpaceError, UpdatableEncoding
from repro.datatree.builder import random_tree, tree_from_spec


def make_updatable(spec=("root", [("a", []), ("b", [])]), min_height=1):
    tree = tree_from_spec(spec)
    encoding = binarize(tree, min_height=min_height)
    return tree, UpdatableEncoding(encoding)


class TestInsertFastPath:
    def test_free_slot_insert_changes_nothing_else(self):
        # root with 3 children -> children level holds 4 slots, 1 free
        tree, updatable = make_updatable(
            ("root", [("a", []), ("b", []), ("c", [])])
        )
        before = dict(enumerate(tree.codes))
        node = updatable.insert_child(0, "d")
        assert tree.codes[node] != 0
        for old_node, old_code in before.items():
            assert tree.codes[old_node] == old_code  # O(1) update
        assert updatable.stats.local_relabels == 0
        updatable.validate()

    def test_inserted_child_is_dominated(self):
        tree, updatable = make_updatable()
        node = updatable.insert_child(0, "new")
        assert pt.is_ancestor(tree.codes[0], tree.codes[node])

    def test_insert_under_leaf(self):
        tree, updatable = make_updatable(("root", [("leaf", [])]))
        node = updatable.insert_child(1, "below")
        assert pt.is_ancestor(tree.codes[1], tree.codes[node])
        updatable.validate()

    def test_insert_under_deleted_parent_rejected(self):
        tree, updatable = make_updatable()
        updatable.delete_subtree(1)
        with pytest.raises(ValueError):
            updatable.insert_child(1, "x")


class TestSiblingOverflow:
    def test_overflow_relabels_locally(self):
        # 4 children fill the k=2 level exactly; the 5th forces k=3
        tree, updatable = make_updatable(
            ("root", [("c", []), ("c", []), ("c", []), ("c", [])]),
            min_height=10,
        )
        updatable.insert_child(0, "fifth")
        assert updatable.stats.local_relabels == 1
        assert updatable.stats.relabelled_nodes >= 5
        updatable.validate()
        # all five children now sit 3 levels below the root
        levels = {updatable.level_of(c) for c in tree.children[0]}
        assert levels == {updatable.level_of(0) + 3}

    def test_deleted_slot_is_reused(self):
        tree, updatable = make_updatable(
            ("root", [("a", []), ("b", []), ("c", []), ("d", [])]),
            min_height=10,
        )
        freed_code = tree.codes[2]
        updatable.delete_subtree(2)
        node = updatable.insert_child(0, "reuse")
        assert tree.codes[node] == freed_code  # virtual slot recycled
        assert updatable.stats.local_relabels == 0


class TestTreeGrowth:
    def test_growth_multiplies_codes(self):
        tree, updatable = make_updatable(("root", [("a", [])]))
        h_before = updatable.tree_height
        codes_before = list(tree.codes)
        updatable._grow_tree(2)
        assert updatable.tree_height == h_before + 2
        assert tree.codes == [code << 2 for code in codes_before]
        updatable.validate()

    def test_growth_preserves_levels_and_order(self):
        tree = random_tree(80, seed=3)
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding)
        levels = [updatable.level_of(n) for n in range(len(tree))]
        order = sorted(range(len(tree)), key=lambda n: pt.doc_order_key(tree.codes[n]))
        updatable._grow_tree(3)
        assert [updatable.level_of(n) for n in range(len(tree))] == levels
        assert sorted(
            range(len(tree)), key=lambda n: pt.doc_order_key(tree.codes[n])
        ) == order

    def test_insert_below_bottom_grows(self):
        tree, updatable = make_updatable(("root", [("leaf", [])]))
        # chain of inserts below the current leaf forces repeated growth
        node = 1
        for _ in range(5):
            node = updatable.insert_child(node, "deeper")
        assert updatable.stats.tree_growths >= 1
        updatable.validate()

    def test_growth_can_be_disabled(self):
        tree = tree_from_spec(("root", [("leaf", [])]))
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding, allow_growth=False)
        node = 1
        with pytest.raises(CodeSpaceError):
            for _ in range(10):
                node = updatable.insert_child(node, "deeper")


class TestDelete:
    def test_delete_subtree_counts(self):
        tree, updatable = make_updatable(
            ("root", [("a", [("x", []), ("y", [])]), ("b", [])])
        )
        assert updatable.delete_subtree(1) == 3
        assert not updatable.is_alive(1)
        assert updatable.is_alive(4)  # b untouched
        assert updatable.delete_subtree(1) == 0  # idempotent

    def test_delete_root_rejected(self):
        _tree, updatable = make_updatable()
        with pytest.raises(ValueError):
            updatable.delete_subtree(0)

    def test_deleted_codes_become_virtual(self):
        tree, updatable = make_updatable()
        code = tree.codes[1]
        updatable.delete_subtree(1)
        assert updatable.node_of(code) is None

    def test_live_codes_reflect_deletes(self):
        tree, updatable = make_updatable()
        total = len(updatable.live_codes())
        updatable.delete_subtree(1)
        assert len(updatable.live_codes()) == total - 1


class TestUpdateStorm:
    @given(st.integers(0, 1000), st.integers(2, 60))
    @settings(max_examples=15, deadline=None)
    def test_random_storm_preserves_contract(self, seed, initial):
        tree = random_tree(initial, seed=seed)
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding)
        rng = random.Random(seed)
        for _ in range(120):
            live = [n for n in range(len(tree)) if updatable.is_alive(n)]
            if rng.random() < 0.7 or len(live) < 3:
                updatable.insert_child(rng.choice(live), "n")
            else:
                non_root = [n for n in live if tree.parents[n] >= 0]
                if non_root:
                    updatable.delete_subtree(rng.choice(non_root))
        updatable.validate()
        live = [n for n in range(len(tree)) if updatable.is_alive(n)]
        for _ in range(200):
            u, v = rng.choice(live), rng.choice(live)
            assert tree.is_ancestor(u, v) == pt.is_ancestor(
                tree.codes[u], tree.codes[v]
            )

    def test_join_after_updates_matches_brute_force(self):
        from repro import (
            BufferManager, DiskManager, ElementSet, JoinSink,
            StackTreeDescJoin, brute_force_join,
        )

        tree = random_tree(150, seed=9)
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding)
        rng = random.Random(9)
        for _ in range(150):
            live = [n for n in range(len(tree)) if updatable.is_alive(n)]
            updatable.insert_child(rng.choice(live), rng.choice("ab"))
        live = [n for n in range(len(tree)) if updatable.is_alive(n)]
        a_codes = [tree.codes[n] for n in live if tree.tags[n] == "a"]
        d_codes = [tree.codes[n] for n in live if tree.tags[n] == "b"]
        disk = DiskManager()
        bufmgr = BufferManager(disk, 16)
        a_set = ElementSet.from_codes(bufmgr, a_codes, updatable.tree_height)
        d_set = ElementSet.from_codes(bufmgr, d_codes, updatable.tree_height)
        sink = JoinSink("collect")
        StackTreeDescJoin().run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted(brute_force_join(a_codes, d_codes))
