"""Tests for updates through virtual nodes (Section 2.3.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.core.binarize import binarize
from repro.core.update import CodeSpaceError, UpdatableEncoding
from repro.datatree.builder import random_tree, tree_from_spec


def make_updatable(spec=("root", [("a", []), ("b", [])]), min_height=1):
    tree = tree_from_spec(spec)
    encoding = binarize(tree, min_height=min_height)
    return tree, UpdatableEncoding(encoding)


class TestInsertFastPath:
    def test_free_slot_insert_changes_nothing_else(self):
        # root with 3 children -> children level holds 4 slots, 1 free
        tree, updatable = make_updatable(
            ("root", [("a", []), ("b", []), ("c", [])])
        )
        before = dict(enumerate(tree.codes))
        node = updatable.insert_child(0, "d")
        assert tree.codes[node] != 0
        for old_node, old_code in before.items():
            assert tree.codes[old_node] == old_code  # O(1) update
        assert updatable.stats.local_relabels == 0
        updatable.validate()

    def test_inserted_child_is_dominated(self):
        tree, updatable = make_updatable()
        node = updatable.insert_child(0, "new")
        assert pt.is_ancestor(tree.codes[0], tree.codes[node])

    def test_insert_under_leaf(self):
        tree, updatable = make_updatable(("root", [("leaf", [])]))
        node = updatable.insert_child(1, "below")
        assert pt.is_ancestor(tree.codes[1], tree.codes[node])
        updatable.validate()

    def test_insert_under_deleted_parent_rejected(self):
        tree, updatable = make_updatable()
        updatable.delete_subtree(1)
        with pytest.raises(ValueError):
            updatable.insert_child(1, "x")


class TestSiblingOverflow:
    def test_overflow_relabels_locally(self):
        # 4 children fill the k=2 level exactly; the 5th forces k=3
        tree, updatable = make_updatable(
            ("root", [("c", []), ("c", []), ("c", []), ("c", [])]),
            min_height=10,
        )
        updatable.insert_child(0, "fifth")
        assert updatable.stats.local_relabels == 1
        assert updatable.stats.relabelled_nodes >= 5
        updatable.validate()
        # all five children now sit 3 levels below the root
        levels = {updatable.level_of(c) for c in tree.children[0]}
        assert levels == {updatable.level_of(0) + 3}

    def test_deleted_slot_is_reused(self):
        tree, updatable = make_updatable(
            ("root", [("a", []), ("b", []), ("c", []), ("d", [])]),
            min_height=10,
        )
        freed_code = tree.codes[2]
        updatable.delete_subtree(2)
        node = updatable.insert_child(0, "reuse")
        assert tree.codes[node] == freed_code  # virtual slot recycled
        assert updatable.stats.local_relabels == 0


class TestTreeGrowth:
    def test_growth_multiplies_codes(self):
        tree, updatable = make_updatable(("root", [("a", [])]))
        h_before = updatable.tree_height
        codes_before = list(tree.codes)
        updatable._grow_tree(2)
        assert updatable.tree_height == h_before + 2
        assert tree.codes == [code << 2 for code in codes_before]
        updatable.validate()

    def test_growth_preserves_levels_and_order(self):
        tree = random_tree(80, seed=3)
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding)
        levels = [updatable.level_of(n) for n in range(len(tree))]
        order = sorted(range(len(tree)), key=lambda n: pt.doc_order_key(tree.codes[n]))
        updatable._grow_tree(3)
        assert [updatable.level_of(n) for n in range(len(tree))] == levels
        assert sorted(
            range(len(tree)), key=lambda n: pt.doc_order_key(tree.codes[n])
        ) == order

    def test_insert_below_bottom_grows(self):
        tree, updatable = make_updatable(("root", [("leaf", [])]))
        # chain of inserts below the current leaf forces repeated growth
        node = 1
        for _ in range(5):
            node = updatable.insert_child(node, "deeper")
        assert updatable.stats.tree_growths >= 1
        updatable.validate()

    def test_growth_can_be_disabled(self):
        tree = tree_from_spec(("root", [("leaf", [])]))
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding, allow_growth=False)
        node = 1
        with pytest.raises(CodeSpaceError):
            for _ in range(10):
                node = updatable.insert_child(node, "deeper")


class TestDelete:
    def test_delete_subtree_counts(self):
        tree, updatable = make_updatable(
            ("root", [("a", [("x", []), ("y", [])]), ("b", [])])
        )
        assert updatable.delete_subtree(1) == 3
        assert not updatable.is_alive(1)
        assert updatable.is_alive(4)  # b untouched
        assert updatable.delete_subtree(1) == 0  # idempotent

    def test_delete_root_rejected(self):
        _tree, updatable = make_updatable()
        with pytest.raises(ValueError):
            updatable.delete_subtree(0)

    def test_deleted_codes_become_virtual(self):
        tree, updatable = make_updatable()
        code = tree.codes[1]
        updatable.delete_subtree(1)
        assert updatable.node_of(code) is None

    def test_live_codes_reflect_deletes(self):
        tree, updatable = make_updatable()
        total = len(updatable.live_codes())
        updatable.delete_subtree(1)
        assert len(updatable.live_codes()) == total - 1


class TestGrowKeepsTombstonesFree:
    """Regression: ``_grow_tree`` used to rebuild ``_occupied`` from
    ``range(len(tree))`` including tombstoned nodes, so codes freed by
    ``delete_subtree`` were resurrected as occupied after any growth —
    a delete -> grow -> insert sequence leaked code slots forever."""

    def test_delete_grow_insert_reuses_freed_slot(self):
        tree, updatable = make_updatable(
            ("root", [("a", []), ("b", []), ("c", []), ("d", [])]),
            min_height=10,
        )
        freed_code = tree.codes[2]
        updatable.delete_subtree(2)
        updatable._grow_tree(2)
        # the freed slot (shifted like every other code) must be virtual
        assert updatable.node_of(freed_code << 2) is None
        node = updatable.insert_child(0, "reuse")
        assert tree.codes[node] == freed_code << 2
        assert updatable.stats.local_relabels == 0  # O(1) fast path
        updatable.validate()

    def test_grow_drops_all_tombstones_from_occupancy(self):
        tree, updatable = make_updatable(
            ("root", [("a", [("x", []), ("y", [])]), ("b", [])])
        )
        updatable.delete_subtree(1)  # tombstones a, x, y
        updatable._grow_tree(1)
        dead = [n for n in range(len(tree)) if not updatable.is_alive(n)]
        assert dead
        for node in dead:
            assert updatable.node_of(tree.codes[node]) is None
        updatable.validate()


class TestInsertAtomicity:
    """Regression: ``insert_child`` used to mutate the data tree before
    the encodability check, so a ``CodeSpaceError`` (growth disallowed)
    left a half-inserted live node with no valid code."""

    def test_disallowed_bottom_growth_leaves_encoding_clean(self):
        tree = tree_from_spec(("root", [("leaf", [])]))
        updatable = UpdatableEncoding(binarize(tree), allow_growth=False)
        nodes_before = len(tree)
        live_before = updatable.live_codes()
        with pytest.raises(CodeSpaceError):
            updatable.insert_child(1, "below-the-bottom")
        assert len(tree) == nodes_before  # no phantom node
        assert len(updatable._alive) == nodes_before
        assert updatable.live_codes() == live_before
        assert updatable.stats.inserts == 0
        updatable.validate()

    def test_disallowed_overflow_growth_leaves_encoding_clean(self):
        # both child slots below the root are taken and the relabel that
        # would make room needs one more level than H offers
        tree = tree_from_spec(("root", [("a", []), ("b", [])]))
        updatable = UpdatableEncoding(binarize(tree), allow_growth=False)
        nodes_before = len(tree)
        with pytest.raises(CodeSpaceError):
            updatable.insert_child(0, "third")
        assert len(tree) == nodes_before
        assert len(updatable._alive) == nodes_before
        assert updatable.stats.inserts == 0
        assert updatable.stats.local_relabels == 0
        updatable.validate()


class TestChangeEvents:
    def test_events_replay_to_live_code_map(self):
        """A listener folding the event stream into a code map must end
        up exactly at ``live_codes`` — the contract the storage-backed
        update pipeline (docstore) relies on."""
        tree, updatable = make_updatable()
        shadow = {
            tree.codes[n]: n
            for n in range(len(tree))
            if updatable.is_alive(n)
        }

        def listener(event):
            if event.kind == "insert":
                assert event.new_code not in shadow
                shadow[event.new_code] = event.node
            elif event.kind == "relabel":
                # free every old code before assigning any new one
                for node, old_code, _new in event.moves:
                    assert shadow.pop(old_code) == node
                for node, _old, new_code in event.moves:
                    assert new_code not in shadow
                    shadow[new_code] = node
            elif event.kind == "delete":
                assert shadow.pop(event.old_code) == event.node
            elif event.kind == "grow":
                shifted = {
                    code << event.delta: node for code, node in shadow.items()
                }
                shadow.clear()
                shadow.update(shifted)
            else:  # pragma: no cover - future kinds must be handled
                raise AssertionError(event.kind)

        updatable.listeners.append(listener)
        rng = random.Random(42)
        for _ in range(120):
            live = [n for n in range(len(tree)) if updatable.is_alive(n)]
            if rng.random() < 0.7 or len(live) < 3:
                updatable.insert_child(rng.choice(live), "n")
            else:
                non_root = [n for n in live if tree.parents[n] >= 0]
                if non_root:
                    updatable.delete_subtree(rng.choice(non_root))
        expected = {
            tree.codes[n]: n
            for n in range(len(tree))
            if updatable.is_alive(n)
        }
        assert shadow == expected


class TestUpdateStorm:
    @given(st.integers(0, 1000), st.integers(2, 60))
    @settings(max_examples=15, deadline=None)
    def test_random_storm_preserves_contract(self, seed, initial):
        tree = random_tree(initial, seed=seed)
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding)
        rng = random.Random(seed)
        for _ in range(120):
            live = [n for n in range(len(tree)) if updatable.is_alive(n)]
            if rng.random() < 0.7 or len(live) < 3:
                updatable.insert_child(rng.choice(live), "n")
            else:
                non_root = [n for n in live if tree.parents[n] >= 0]
                if non_root:
                    updatable.delete_subtree(rng.choice(non_root))
        updatable.validate()
        live = [n for n in range(len(tree)) if updatable.is_alive(n)]
        for _ in range(200):
            u, v = rng.choice(live), rng.choice(live)
            assert tree.is_ancestor(u, v) == pt.is_ancestor(
                tree.codes[u], tree.codes[v]
            )

    def test_join_after_updates_matches_brute_force(self):
        from repro import (
            BufferManager, DiskManager, ElementSet, JoinSink,
            StackTreeDescJoin, brute_force_join,
        )

        tree = random_tree(150, seed=9)
        encoding = binarize(tree)
        updatable = UpdatableEncoding(encoding)
        rng = random.Random(9)
        for _ in range(150):
            live = [n for n in range(len(tree)) if updatable.is_alive(n)]
            updatable.insert_child(rng.choice(live), rng.choice("ab"))
        live = [n for n in range(len(tree)) if updatable.is_alive(n)]
        a_codes = [tree.codes[n] for n in live if tree.tags[n] == "a"]
        d_codes = [tree.codes[n] for n in live if tree.tags[n] == "b"]
        disk = DiskManager()
        bufmgr = BufferManager(disk, 16)
        a_set = ElementSet.from_codes(bufmgr, a_codes, updatable.tree_height)
        d_set = ElementSet.from_codes(bufmgr, d_codes, updatable.tree_height)
        sink = JoinSink("collect")
        StackTreeDescJoin().run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted(brute_force_join(a_codes, d_codes))
