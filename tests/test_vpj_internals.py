"""Property tests for VPJ's internal machinery and the LCA algebra.

VPJ's correctness rests on three facts this module checks directly
(beyond the end-to-end oracle tests): the LCA function's algebraic
properties, the monotone anchor->bucket map, and the replication
bound the paper states ("the number of replicated nodes to each
partition is at most l").
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    JoinSink,
    binarize,
    brute_force_join,
    random_tree,
)
from repro.core import pbitree as pt
from repro.join.vpj import VerticalPartitionJoin, memory_containment_join


@st.composite
def two_codes(draw):
    tree_height = draw(st.integers(2, 30))
    top = (1 << tree_height) - 1
    return (
        draw(st.integers(1, top)),
        draw(st.integers(1, top)),
        tree_height,
    )


class TestLowestCommonAncestor:
    @given(two_codes())
    @settings(max_examples=60)
    def test_dominates_both(self, args):
        x, y, _h = args
        lca = pt.lowest_common_ancestor(x, y)
        assert pt.is_ancestor_or_self(lca, x)
        assert pt.is_ancestor_or_self(lca, y)

    @given(two_codes())
    @settings(max_examples=60)
    def test_is_lowest(self, args):
        """No strictly lower node dominates both."""
        x, y, _h = args
        lca = pt.lowest_common_ancestor(x, y)
        height = pt.height_of(lca)
        if height > max(pt.height_of(x), pt.height_of(y)):
            below = height - 1
            assert pt.f_ancestor(x, below) != pt.f_ancestor(y, below)

    @given(two_codes())
    @settings(max_examples=40)
    def test_commutative_and_idempotent(self, args):
        x, y, _h = args
        assert pt.lowest_common_ancestor(x, y) == pt.lowest_common_ancestor(y, x)
        assert pt.lowest_common_ancestor(x, x) == x

    def test_ancestor_absorbs(self):
        assert pt.lowest_common_ancestor(16, 3) == 16  # 16 dominates 3


class TestBucketMap:
    def test_monotone_in_anchor(self):
        """Range bucketing must preserve anchor order — the replication
        loop relies on a contiguous bucket range per high node."""
        tree_height = 16
        anchor_height = 9
        lca = pt.root_code(tree_height)
        for buckets in (2, 3, 7, 16):
            bucket_of = VerticalPartitionJoin._bucket_map(
                anchor_height, buckets, lca
            )
            anchors = list(pt.subtree_codes_at_height(lca, anchor_height))
            values = [bucket_of(anchor) for anchor in anchors]
            assert values == sorted(values)
            assert set(values) <= set(range(buckets))
            assert values[0] == 0 and values[-1] == buckets - 1

    def test_out_of_span_clamps(self):
        tree_height = 16
        anchor_height = 9
        left = pt.left_child_of(pt.root_code(tree_height))
        bucket_of = VerticalPartitionJoin._bucket_map(anchor_height, 4, left)
        inside = list(pt.subtree_codes_at_height(left, anchor_height))
        right_anchor = pt.f_ancestor(
            pt.max_code(tree_height), anchor_height
        )
        assert bucket_of(right_anchor) == 3  # clamped to the last bucket
        assert bucket_of(inside[0]) == 0

    def test_degenerate_lca(self):
        bucket_of = VerticalPartitionJoin._bucket_map(5, 4, 0)
        assert 0 <= bucket_of(1 << 5) < 4


class TestReplicationBound:
    def test_per_partition_replicas_at_most_level(self):
        """At most l replicated ancestors land in any one partition —
        they are exactly the root-to-anchor path nodes above level l."""
        tree = random_tree(800, max_fanout=4, seed=13)
        encoding = binarize(tree)
        rng = random.Random(13)
        a_codes = rng.sample(tree.codes, 400)
        disk = DiskManager(page_size=128)
        bufmgr = BufferManager(disk, 6)
        a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
        d_set = ElementSet.from_codes(bufmgr, tree.codes, encoding.tree_height)
        sink = JoinSink("collect")
        VerticalPartitionJoin().run(a_set, d_set, sink)
        # the oracle equality implies replication produced no duplicates
        assert sorted(set(sink.pairs)) == sorted(sink.pairs)
        assert sorted(sink.pairs) == sorted(
            brute_force_join(a_codes, tree.codes)
        )


class TestMemoryContainmentJoin:
    def fixtures(self, seed=21, n=300):
        tree = random_tree(n, seed=seed)
        encoding = binarize(tree)
        rng = random.Random(seed)
        a_codes = rng.sample(tree.codes, n // 3)
        d_codes = rng.sample(tree.codes, n // 3)
        disk = DiskManager(page_size=128)
        bufmgr = BufferManager(disk, 32)
        return (
            ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height),
            ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height),
            a_codes,
            d_codes,
            bufmgr,
        )

    def test_both_branches_agree(self):
        """The D-fits (sorted probe) and A-fits (per-height hash)
        branches compute the same join."""
        a_set, d_set, a_codes, d_codes, bufmgr = self.fixtures()
        expected = sorted(brute_force_join(a_codes, d_codes))

        sink_d = JoinSink("collect")
        memory_containment_join(
            [d_set.heap][:0] or [a_set.heap], [d_set.heap], sink_d,
        )
        assert sorted(sink_d.pairs) == expected

        # force the A-in-memory branch by making D "look" bigger:
        # swap argument shapes (A smaller in pages triggers else-branch)
        small_a, big_d, sa_codes, bd_codes, bufmgr2 = self.fixtures(seed=22)
        sink_a = JoinSink("collect")
        memory_containment_join(
            [small_a.heap], [big_d.heap] * 3,  # d_pages > a_pages
            sink_a,
        )
        triple_expected = sorted(
            brute_force_join(sa_codes, bd_codes) * 3
        )
        assert sorted(sink_a.pairs) == triple_expected

    def test_dedup_above_height(self):
        """Replicated ancestors (same code twice in A files) emit once
        when dedup_above_height covers them."""
        tree_height = 10
        root = pt.root_code(tree_height)
        descendants = [pt.g_code(alpha, 5, tree_height) for alpha in range(8)]
        disk = DiskManager(page_size=128)
        bufmgr = BufferManager(disk, 16)
        a_set = ElementSet.from_codes(bufmgr, [root, root], tree_height)
        d_set = ElementSet.from_codes(bufmgr, descendants, tree_height)
        sink = JoinSink("collect")
        memory_containment_join(
            [a_set.heap], [d_set.heap], sink,
            dedup_above_height=pt.height_of(root) - 1,
        )
        assert sorted(sink.pairs) == sorted(
            (root, d) for d in descendants
        )

class TestScatterFileDiscipline:
    def test_one_heap_file_per_bucket_and_side(self):
        """Each scatter pass contributes exactly one fresh heap file per
        (bucket, side): the writers cache lives for the whole pass, so
        the resume-a-partial-page path can never be reached from here —
        a bucket must not fragment into per-eviction files."""
        tree = random_tree(900, max_fanout=4, seed=17)
        encoding = binarize(tree)
        rng = random.Random(17)
        a_codes = rng.sample(tree.codes, 450)
        d_codes = rng.sample(tree.codes, 500)
        disk = DiskManager(page_size=128)
        bufmgr = BufferManager(disk, 6)  # heavy eviction pressure
        a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
        d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height)
        vpj = VerticalPartitionJoin()
        lca = vpj._sample_lca([a_set.heap], [d_set.heap])
        anchor_height = encoding.tree_height - 4
        partitions = vpj._partition(
            [a_set.heap], [d_set.heap], anchor_height, 4, lca, bufmgr
        )
        assert partitions, "partitioning produced no co-partitions"
        try:
            for partition in partitions.values():
                assert len(partition.a_files) == 1
                assert len(partition.d_files) == 1
                assert partition.a_records and partition.d_records
        finally:
            for partition in partitions.values():
                partition.destroy()
