"""Tests for the text-document workload and its proximity usage."""

import pytest

from repro.core import pbitree as pt
from repro.core.binarize import binarize
from repro.datatree.paths import brute_force_join, select_by_tag
from repro.join.proximity import common_ancestor_join, window_join
from repro.workloads import textdoc


@pytest.fixture(scope="module")
def book():
    tree = textdoc.generate_tree(num_parts=2, chapters_per_part=3, seed=5)
    encoding = binarize(tree)
    return tree, encoding


class TestGenerator:
    def test_shape(self, book):
        tree, _encoding = book
        counts = tree.tag_counts()
        assert counts["book"] == 1
        assert counts["part"] == 2
        assert counts["chapter"] == 6
        assert counts["section"] >= 6
        assert counts["sentence"] > 50

    def test_nested_sections_exist(self, book):
        tree, _encoding = book
        sections = select_by_tag(tree, "section")
        nested = brute_force_join(sections, sections)
        assert nested  # the T2 self-join has results

    def test_zipf_vocabulary(self, book):
        tree, _encoding = book
        counts = tree.tag_counts()
        # frequent low-rank terms dominate rare high-rank terms
        assert counts.get("w1", 0) + counts.get("w2", 0) > 10 * counts.get(
            "w190", 0
        )

    def test_all_join_tags_present(self, book):
        tree, _encoding = book
        counts = tree.tag_counts()
        for join in textdoc.TEXT_JOINS:
            assert counts.get(join.anc_tag, 0) > 0, join.name
            assert counts.get(join.desc_tag, 0) > 0, join.name

    def test_deterministic(self):
        first = textdoc.generate_tree(num_parts=1, chapters_per_part=2, seed=9)
        second = textdoc.generate_tree(num_parts=1, chapters_per_part=2, seed=9)
        assert first.tags == second.tags and first.parents == second.parents

    def test_term_codes(self, book):
        tree, _encoding = book
        codes = textdoc.term_codes(tree, "w3")
        assert codes
        assert all(c > 0 for c in codes)


class TestProximityOverText:
    def test_same_sentence_pairs_share_sentence(self, book):
        tree, encoding = book
        sentence_node = next(tree.iter_by_tag("sentence"))
        # words of one sentence sit k levels below it
        word = tree.children[sentence_node][0]
        height = pt.height_of(tree.codes[sentence_node])
        left = textdoc.term_codes(tree, "w1")
        right = textdoc.term_codes(tree, "w2")
        for x, y in common_ancestor_join(left, right, height + 1):
            anc_x = pt.f_ancestor(x, height + 1)
            anc_y = pt.f_ancestor(y, height + 1)
            assert anc_x == anc_y

    def test_window_join_scaled_stride_finds_neighbours(self, book):
        tree, _encoding = book
        # adjacent words inside one sentence must pair at window = 1 step
        sentence = next(
            node for node in tree.iter_by_tag("sentence")
            if len(tree.children[node]) >= 2
        )
        first, second = tree.children[sentence][:2]
        height = pt.height_of(tree.codes[first])
        stride = 1 << (height + 2)
        pairs = list(
            window_join([tree.codes[first]], [tree.codes[second]], stride)
        )
        assert pairs == [(tree.codes[first], tree.codes[second])]

    def test_default_term_queries_well_formed(self):
        for query in textdoc.default_term_queries():
            assert query.window > 0
            assert query.left_term.startswith("w")
