"""Observability tests: tracer spans, metrics registry and exporters."""

import json

import pytest

from repro.experiments.harness import (
    Workbench,
    make_algorithm,
    materialize,
    run_algorithm,
    run_lineup,
)
from repro.obs import (
    BENCH_SCHEMA,
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    bench_summary,
    format_span_tree,
    spans_from_jsonl,
    trace_to_jsonl,
    validate_bench_summary,
    write_bench_summary,
    write_trace_jsonl,
)
from repro.obs.__main__ import main as obs_main
from repro.storage.disk import DiskManager
from repro.workloads import synthetic as syn


def _run(name="VPJ", dataset="MSSL", large=1200, small=200,
         buffer_pages=8, tracer=None, seed=5):
    """One cold algorithm run over a synthetic dataset."""
    spec = syn.spec_by_name(dataset, large=large, small=small)
    ds = syn.generate(spec, seed=seed)
    bench = Workbench.create(buffer_pages=buffer_pages, page_size=128)
    a_set = materialize(bench.bufmgr, ds.a_codes, ds.tree_height, "A")
    d_set = materialize(bench.bufmgr, ds.d_codes, ds.tree_height, "D")
    report = run_algorithm(make_algorithm(name), a_set, d_set, tracer=tracer)
    return report, ds


class TestTracerBasics:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [c.name for c in tracer.roots[0].children] == ["inner", "sibling"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_error_is_recorded(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.roots[0].error == "RuntimeError"

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", depth=3) as span:
            span.set("partitions", 7)
        assert tracer.roots[0].attributes == {"depth": 3, "partitions": 7}

    def test_clear_keeps_binding(self):
        bench = Workbench.create(buffer_pages=4, page_size=128)
        tracer = Tracer()
        tracer.bind(bench.bufmgr)
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.bufmgr is bench.bufmgr

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        root = tracer.roots[0]
        assert root.find("c").name == "c"
        assert root.find("zzz") is None
        assert [depth for depth, _ in root.walk()] == [0, 1, 2]


class TestTracedJoin:
    def test_vpj_root_io_matches_report_total(self):
        """Acceptance: the root span's I/O delta is the JoinReport total."""
        tracer = Tracer()
        report, _ = _run("VPJ", tracer=tracer)
        root = tracer.roots[-1]
        assert root.name == "join.VPJ"
        assert root.io.total == report.total_pages
        assert root.io.reads == report.total_io.reads
        assert root.io.writes == report.total_io.writes
        assert report.trace is root

    def test_span_tree_matches_vpj_phases(self):
        """A partitioning VPJ run shows the Algorithm 5 phases as spans."""
        tracer = Tracer()
        report, _ = _run(
            "VPJ", dataset="MLLL", large=2500, buffer_pages=6, tracer=tracer
        )
        root = tracer.roots[-1]
        names = [span.name for _depth, span in root.walk()]
        assert names[0] == "join.VPJ"
        assert [c.name for c in root.children] == ["prepare", "execute"]
        assert report.partitions > 0
        assert "vpj.partition" in names
        assert "vpj.memjoin" in names
        # the partition span carries its anchor height and bucket count
        partition = root.find("vpj.partition")
        assert partition.attributes["partitions"] >= 1
        assert "anchor_height" in partition.attributes

    def test_stacktree_phases(self):
        tracer = Tracer()
        _run("STACKTREE", tracer=tracer)
        root = tracer.roots[-1]
        prepare = root.find("prepare")
        execute = root.find("execute")
        assert [c.name for c in prepare.children] == [
            "stacktree.sort", "stacktree.sort",
        ]
        assert [c.name for c in execute.children] == ["stacktree.merge"]

    def test_child_io_stays_within_parent(self):
        """Span I/O is inclusive: children never sum above their parent."""
        tracer = Tracer()
        _run("VPJ", dataset="MLLL", large=2500, buffer_pages=6, tracer=tracer)
        for _depth, span in tracer.roots[-1].walk():
            child_total = sum(child.io.total for child in span.children)
            assert child_total <= span.io.total
            assert span.self_io.total >= 0

    def test_buffer_activity_recorded(self):
        tracer = Tracer()
        report, _ = _run("VPJ", tracer=tracer)
        assert report.buffer_misses > 0
        root = tracer.roots[-1]
        assert root.buffer_misses == report.buffer_misses
        assert root.buffer_hits == report.buffer_hits

    def test_nested_runs_nest_spans(self):
        """A tracer shared across runs stacks roots side by side."""
        tracer = Tracer()
        _run("STACKTREE", tracer=tracer)
        # run_algorithm resets stats per run, so use a fresh workbench run
        spec = syn.spec_by_name("MSSL", large=600, small=100)
        ds = syn.generate(spec, seed=6)
        bench = Workbench.create(buffer_pages=8, page_size=128)
        a_set = materialize(bench.bufmgr, ds.a_codes, ds.tree_height, "A")
        d_set = materialize(bench.bufmgr, ds.d_codes, ds.tree_height, "D")
        run_algorithm(
            make_algorithm("MHCJ+Rollup"), a_set, d_set, tracer=tracer
        )
        assert [root.name for root in tracer.roots] == [
            "join.STACKTREE", "join.MHCJ+Rollup",
        ]


class TestDisabledTracer:
    def test_untraced_run_has_no_trace(self):
        report, _ = _run("VPJ", tracer=None)
        assert report.trace is None

    def test_null_tracer_hands_out_one_shared_span(self):
        span_a = NULL_TRACER.span("x")
        span_b = NULL_TRACER.span("y", depth=1)
        assert span_a is span_b

    def test_null_span_ignores_everything(self):
        tracer = NullTracer()
        with tracer.span("phase", k=1) as span:
            span.set("key", "value")
        assert span.attributes == {}
        assert tracer.roots == []
        assert tracer.current is None

    def test_null_tracer_never_binds(self):
        bench = Workbench.create(buffer_pages=4, page_size=128)
        NULL_TRACER.bind(bench.bufmgr)
        assert NULL_TRACER.bufmgr is None

    def test_disabled_flag(self):
        assert Tracer.enabled is True
        assert NULL_TRACER.enabled is False


class TestJsonlExport:
    def test_round_trip_preserves_structure(self):
        tracer = Tracer()
        _run("VPJ", tracer=tracer)
        text = trace_to_jsonl(tracer)
        rebuilt = spans_from_jsonl(text)
        assert len(rebuilt) == len(tracer.roots)
        original = list(tracer.roots[-1].walk())
        restored = list(rebuilt[-1].walk())
        assert len(original) == len(restored)
        for (depth_a, span_a), (depth_b, span_b) in zip(original, restored):
            assert depth_a == depth_b
            assert span_a.name == span_b.name
            assert span_a.io == span_b.io
            assert span_a.buffer_hits == span_b.buffer_hits
            assert span_a.buffer_misses == span_b.buffer_misses
            assert span_a.attributes == span_b.attributes

    def test_jsonl_lines_are_valid_json_with_links(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        records = [json.loads(line) for line in trace_to_jsonl(tracer).splitlines()]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["id"]

    def test_write_trace_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = write_trace_jsonl(tracer, tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "only"


class TestFormatSpanTree:
    def test_empty_forest(self):
        assert format_span_tree([]) == "(no spans recorded)"

    def test_table_indents_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child", partitions=2):
                pass
        text = format_span_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("span")
        assert any(line.startswith("parent") for line in lines)
        assert any(line.startswith("  child") for line in lines)
        assert "partitions=2" in text


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(3)
        registry.histogram("h").observe(100)
        assert registry.counter("c").value == 5
        assert registry.gauge("g").value == 2.5
        histogram = registry.histogram("h")
        assert histogram.count == 2
        assert histogram.mean == pytest.approx(51.5)
        assert len(registry) == 3
        assert registry.names() == ["c", "g", "h"]

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_metrics_agree_with_vpj_report(self):
        """Acceptance: registry totals equal the JoinReport I/O totals."""
        report, _ = _run("VPJ")
        registry = MetricsRegistry()
        registry.record_report(report, dataset="MSSL")
        assert registry.counter("join.VPJ.io").value == report.total_pages
        assert registry.counter("join.VPJ.prep_io").value == report.prep_io.total
        assert registry.counter("join.VPJ.join_io").value == report.join_io.total
        assert registry.counter("join.VPJ.results").value == report.result_count
        assert registry.counter("join.VPJ.MSSL.io").value == report.total_pages
        assert registry.histogram("join.VPJ.io_per_run").count == 1

    def test_run_lineup_populates_metrics(self):
        spec = syn.spec_by_name("MSSL", large=800, small=150)
        ds = syn.generate(spec, seed=7)
        registry = MetricsRegistry()
        lineup = run_lineup(
            "MSSL", ds.a_codes, ds.d_codes, ds.tree_height,
            buffer_pages=8, page_size=128,
            algorithms=["STACKTREE", "VPJ"], metrics=registry,
        )
        vpj = lineup.by_name("VPJ").report
        assert registry.counter("join.VPJ.io").value == vpj.total_pages
        assert registry.gauge("buffer.hits").value >= 0

    def test_record_io_snapshot(self):
        registry = MetricsRegistry()
        disk = DiskManager(page_size=128)
        pid = disk.allocate(3)
        disk.read(pid)
        disk.read(pid + 2)
        registry.record_io(disk.stats.snapshot())
        assert registry.counter("io.reads").value == 2
        assert registry.counter("io.random_reads").value == 2
        assert registry.counter("io.allocations").value == 3

    def test_attach_disk_observes_live_transfers(self):
        registry = MetricsRegistry()
        disk = DiskManager(page_size=128)
        registry.attach_disk(disk)
        pid = disk.allocate(4)
        disk.read(pid)
        disk.read(pid + 3)
        disk.write(pid, bytes(128))
        assert registry.counter("disk.reads").value == 2
        assert registry.counter("disk.writes").value == 1
        assert registry.counter("disk.allocations").value == 4
        seeks = registry.histogram("disk.seek_distance")
        # the second read seeks 3 pages, the write seeks back 3
        assert seeks.count == 2
        assert seeks.max == 3

    def test_as_dict_and_render(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("b").observe(10)
        payload = registry.as_dict()
        assert payload["a"] == 2
        assert payload["b"]["count"] == 1
        assert "<=16" in payload["b"]["buckets"]
        text = registry.render()
        assert "a" in text and "histogram" in text


class TestBenchSummary:
    def _summary(self):
        report, _ = _run("VPJ", large=600, small=100)
        return bench_summary("smoke", [("VPJ", "MSSL", report)])

    def test_valid_summary_passes(self):
        summary = self._summary()
        assert summary["schema"] == BENCH_SCHEMA
        assert validate_bench_summary(summary) == []

    def test_validator_catches_problems(self):
        assert validate_bench_summary([]) != []
        assert any(
            "schema" in problem
            for problem in validate_bench_summary({"schema": "nope"})
        )
        broken = self._summary()
        broken["algorithms"][0]["total_io"] = -1
        assert any(
            "total_io" in problem for problem in validate_bench_summary(broken)
        )

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_summary(
                {"schema": "wrong"}, tmp_path / "BENCH_bad.json"
            )

    def test_write_and_cli_check(self, tmp_path, capsys):
        path = tmp_path / "BENCH_smoke.json"
        write_bench_summary(self._summary(), path)
        assert obs_main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_cli_flags_invalid_and_unreadable(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert obs_main([str(bad)]) == 1
        assert obs_main([str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()
