"""Tests for the standalone experiment driver script."""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS))

import run_experiments  # noqa: E402


class TestRunExperiments:
    def test_single_experiment(self, tmp_path, capsys):
        code = run_experiments.main(
            ["--scale", "0.02", "--out", str(tmp_path), "--only", "fig6a"]
        )
        assert code == 0
        output = (tmp_path / "fig6a.txt").read_text()
        assert "single-height" in output
        assert "SLLH" in output
        assert "wrote 1 experiment files" in capsys.readouterr().out

    def test_document_experiment(self, tmp_path, capsys):
        code = run_experiments.main(
            ["--scale", "0.02", "--out", str(tmp_path), "--only", "fig6d"]
        )
        assert code == 0
        output = (tmp_path / "fig6d.txt").read_text()
        assert "DBLP-like" in output
        assert "D10" in output

    def test_scalability_experiment(self, tmp_path):
        code = run_experiments.main(
            ["--scale", "0.02", "--out", str(tmp_path), "--only", "fig6h"]
        )
        assert code == 0
        lines = (tmp_path / "fig6h.txt").read_text().splitlines()
        # 8 size steps plus header rows
        assert len([l for l in lines if l.strip().startswith(tuple("12345678"))]) == 8

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_experiments.main(
                ["--out", str(tmp_path), "--only", "fig99"]
            )

    def test_experiment_registry_complete(self):
        assert set(run_experiments.EXPERIMENTS) == {
            "fig6a", "fig6b", "fig6c", "fig6d",
            "fig6e", "fig6f", "fig6g", "fig6h",
        }
