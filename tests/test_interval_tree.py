"""Tests for the paged static interval tree."""

import random

from hypothesis import given, settings, strategies as st

from repro.index.interval_tree import IntervalTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager


def make_env(frames=32, page_size=128):
    disk = DiskManager(page_size=page_size)
    return disk, BufferManager(disk, frames)


def brute_stab(intervals, point):
    return sorted(iv for iv in intervals if iv[0] <= point <= iv[1])


@st.composite
def interval_lists(draw):
    n = draw(st.integers(0, 120))
    intervals = []
    for i in range(n):
        start = draw(st.integers(0, 500))
        length = draw(st.integers(0, 100))
        intervals.append((start, start + length, i))
    return intervals


class TestStabbing:
    @given(interval_lists(), st.lists(st.integers(0, 650), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, intervals, points):
        _disk, bufmgr = make_env()
        tree = IntervalTree.build(bufmgr, intervals)
        for point in points:
            assert sorted(tree.stab(point)) == brute_stab(intervals, point)

    def test_empty_tree(self):
        _disk, bufmgr = make_env()
        tree = IntervalTree.build(bufmgr, [])
        assert list(tree.stab(5)) == []
        assert len(tree) == 0

    def test_single_interval(self):
        _disk, bufmgr = make_env()
        tree = IntervalTree.build(bufmgr, [(10, 20, 7)])
        assert list(tree.stab(10)) == [(10, 20, 7)]
        assert list(tree.stab(20)) == [(10, 20, 7)]
        assert list(tree.stab(15)) == [(10, 20, 7)]
        assert list(tree.stab(9)) == []
        assert list(tree.stab(21)) == []

    def test_point_intervals(self):
        _disk, bufmgr = make_env()
        intervals = [(i, i, i) for i in range(50)]
        tree = IntervalTree.build(bufmgr, intervals)
        for i in range(50):
            assert list(tree.stab(i)) == [(i, i, i)]

    def test_nested_intervals(self):
        """PBiTree regions nest heavily; the tree must report all layers."""
        _disk, bufmgr = make_env()
        intervals = [(50 - i, 50 + i, i) for i in range(40)]
        tree = IntervalTree.build(bufmgr, intervals)
        assert sorted(tree.stab(50)) == sorted(intervals)
        assert len(list(tree.stab(50 + 39))) == 1

    def test_identical_intervals(self):
        _disk, bufmgr = make_env()
        intervals = [(5, 9, i) for i in range(20)]
        tree = IntervalTree.build(bufmgr, intervals)
        assert len(list(tree.stab(7))) == 20


class TestScaleAndIO:
    def test_large_build_and_probe(self):
        disk, bufmgr = make_env(frames=64, page_size=1024)
        rng = random.Random(5)
        intervals = []
        for i in range(5000):
            start = rng.randrange(10**6)
            intervals.append((start, start + rng.randrange(10**4), i))
        tree = IntervalTree.build(bufmgr, intervals)
        for _ in range(50):
            point = rng.randrange(10**6)
            assert sorted(tree.stab(point)) == brute_stab(intervals, point)

    def test_probe_charges_io_when_cold(self):
        disk, bufmgr = make_env(frames=4, page_size=128)
        intervals = [(i * 3, i * 3 + 100, i) for i in range(500)]
        tree = IntervalTree.build(bufmgr, intervals)
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()
        list(tree.stab(600))
        assert disk.stats.reads > 0

    def test_num_pages_reported(self):
        _disk, bufmgr = make_env()
        tree = IntervalTree.build(bufmgr, [(1, 2, 0), (3, 4, 1)])
        assert tree.num_pages >= 2
