"""Tests for set statistics, the cost model and the cost-based optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.core.binarize import binarize
from repro.datatree.builder import random_tree
from repro.experiments.harness import Workbench, materialize, run_algorithm
from repro.join.costmodel import CostInputs, CostModel
from repro.join.optimizer import CostBasedOptimizer
from repro.join.statistics import SetStatistics, estimate_join_cardinality
from repro.workloads import synthetic as syn


class TestSetStatistics:
    def test_from_codes(self):
        stats = SetStatistics.from_codes([4, 12, 20, 6])
        assert stats.count == 4
        assert stats.height_counts == {2: 3, 1: 1}
        assert stats.min_code == 4 and stats.max_code == 20
        assert stats.heights == [1, 2]
        assert stats.num_heights == 2

    def test_empty(self):
        stats = SetStatistics.from_codes([])
        assert stats.count == 0
        assert stats.span == (0, 0)

    def test_span_covers_regions(self):
        stats = SetStatistics.from_codes([20])  # region (17, 23)
        assert stats.span == (17, 23)

    def test_count_at_or_below(self):
        stats = SetStatistics.from_codes([1, 2, 4, 8])
        assert stats.count_at_or_below(0) == 1
        assert stats.count_at_or_below(2) == 3
        assert stats.count_at_or_below(99) == 4

    def test_merge(self):
        left = SetStatistics.from_codes([4, 6])
        right = SetStatistics.from_codes([20])
        merged = left.merge(right)
        assert merged.count == 3
        assert merged.max_code == 20
        assert merged.height_counts[2] == 2

    @given(st.lists(st.integers(1, 2**30), min_size=1, max_size=200))
    @settings(max_examples=25)
    def test_consistency(self, codes):
        stats = SetStatistics.from_codes(codes)
        assert stats.count == len(codes)
        assert sum(stats.height_counts.values()) == len(codes)
        assert stats.min_code == min(codes)
        assert stats.max_code == max(codes)


class TestCardinalityEstimation:
    def synth(self, name, large=5000, small=200, seed=0):
        dataset = syn.generate(syn.spec_by_name(name, large=large, small=small), seed)
        return (
            SetStatistics.from_codes(dataset.a_codes, dataset.tree_height),
            SetStatistics.from_codes(dataset.d_codes, dataset.tree_height),
            dataset.num_results,
        )

    def test_empty_sets_estimate_zero(self):
        empty = SetStatistics.from_codes([])
        full = SetStatistics.from_codes([4, 6])
        assert estimate_join_cardinality(empty, full) == 0.0
        assert estimate_join_cardinality(full, empty) == 0.0

    def test_high_beats_low_selectivity(self):
        _a_h, _d_h, high = self.synth("SLLH")
        a_h, d_h, _n = self.synth("SLLH")
        a_l, d_l, _n = self.synth("SLLL")
        assert estimate_join_cardinality(a_h, d_h) > estimate_join_cardinality(
            a_l, d_l
        )

    def test_order_of_magnitude(self):
        """The estimator should land within ~10x of truth on the
        synthetic workloads (it assumes uniform placement)."""
        for name in ("SLLH", "SLLL", "SSSH", "MSSH"):
            a_stats, d_stats, actual = self.synth(name)
            estimate = estimate_join_cardinality(a_stats, d_stats)
            if actual:
                assert actual / 30 <= max(estimate, 1) <= actual * 30, (
                    name, estimate, actual
                )

    def test_disjoint_spans_estimate_zero(self):
        a_stats = SetStatistics.from_codes([4])       # region (1, 7)
        d_stats = SetStatistics.from_codes([1 << 20])  # far away
        assert estimate_join_cardinality(a_stats, d_stats) == 0.0

    def test_span_fallback_without_tree_height(self):
        """Stats built blind still produce a positive estimate."""
        ds = syn.generate(syn.spec_by_name("SLLH", large=2000, small=200), 0)
        a_stats = SetStatistics.from_codes(ds.a_codes)
        d_stats = SetStatistics.from_codes(ds.d_codes)
        assert not a_stats.position_counts
        assert estimate_join_cardinality(a_stats, d_stats) > 0

    def test_positional_histogram_captures_placement(self):
        """Descendants concentrated under the ancestors estimate much
        higher than the same counts spread elsewhere."""
        from repro.core import pbitree as pt

        tree_height = 20
        anc = [pt.g_code(alpha, 5, tree_height) for alpha in range(8)]
        under = [
            pt.subtree_codes_at_height(a, 2)[i]
            for a in anc
            for i in range(4)
        ]
        level = tree_height - 2 - 1
        away = [
            pt.g_code((1 << (level - 1)) + i, level, tree_height)
            for i in range(len(under))
        ]
        a_stats = SetStatistics.from_codes(anc, tree_height)
        near = estimate_join_cardinality(
            a_stats, SetStatistics.from_codes(under, tree_height)
        )
        far = estimate_join_cardinality(
            a_stats, SetStatistics.from_codes(away, tree_height)
        )
        assert near > far


def make_inputs(a_codes, d_codes, buffer_pages=50, records_per_page=127):
    a_stats = SetStatistics.from_codes(a_codes)
    d_stats = SetStatistics.from_codes(d_codes)
    return CostInputs(
        a_pages=-(-len(a_codes) // records_per_page),
        d_pages=-(-len(d_codes) // records_per_page),
        buffer_pages=buffer_pages,
        a_stats=a_stats,
        d_stats=d_stats,
    )


class TestCostModel:
    def dataset(self, name="SLLL", large=20000, small=200):
        return syn.generate(syn.spec_by_name(name, large=large, small=small), 1)

    def test_sorted_inputs_remove_prep(self):
        ds = self.dataset()
        model = CostModel()
        unsorted_inputs = make_inputs(ds.a_codes, ds.d_codes)
        sorted_inputs = CostInputs(
            **{**unsorted_inputs.__dict__, "a_sorted": True, "d_sorted": True}
        )
        assert model.stack_tree(sorted_inputs).prep_pages == 0
        assert model.stack_tree(unsorted_inputs).prep_pages > 0

    def test_partitioning_beats_sorting_when_large(self):
        ds = self.dataset("SLSL")
        model = CostModel()
        inputs = make_inputs(ds.a_codes, ds.d_codes, buffer_pages=20)
        assert model.mhcj_rollup(inputs).total < model.stack_tree(inputs).total
        assert model.vpj(inputs).total < model.stack_tree(inputs).total

    def test_memory_shortcut(self):
        ds = self.dataset("SSSL", large=1000, small=100)
        model = CostModel()
        inputs = make_inputs(ds.a_codes, ds.d_codes, buffer_pages=50)
        estimate = model.vpj(inputs)
        assert estimate.total == inputs.a_pages + inputs.d_pages

    def test_random_penalty_validates(self):
        with pytest.raises(ValueError):
            CostModel(random_penalty=0.5)

    def test_penalty_punishes_inljn(self):
        ds = self.dataset("SLLH")
        flat = CostModel(random_penalty=1.0)
        seeky = CostModel(random_penalty=10.0)
        inputs = make_inputs(ds.a_codes, ds.d_codes)
        assert seeky.inljn(inputs).weighted(10.0) > flat.inljn(inputs).weighted(1.0)

    def test_shcj_only_for_single_height(self):
        ds = self.dataset("MLLL")
        model = CostModel()
        names = [e.algorithm for e in model.all_estimates(
            make_inputs(ds.a_codes, ds.d_codes))]
        assert "SHCJ" not in names
        ds2 = self.dataset("SLLL")
        names2 = [e.algorithm for e in model.all_estimates(
            make_inputs(ds2.a_codes, ds2.d_codes))]
        assert "SHCJ" in names2


class TestOptimizer:
    def run_case(self, name, buffer_pages=50, large=20000, small=200):
        ds = syn.generate(syn.spec_by_name(name, large=large, small=small), 1)
        bench = Workbench.create(buffer_pages=buffer_pages)
        a_set = materialize(bench.bufmgr, ds.a_codes, ds.tree_height, "A")
        d_set = materialize(bench.bufmgr, ds.d_codes, ds.tree_height, "D")
        return ds, a_set, d_set

    def test_choose_runs_and_matches_count(self):
        ds, a_set, d_set = self.run_case("MSSL", large=3000, small=300)
        optimizer = CostBasedOptimizer()
        algorithm, plan = optimizer.choose(a_set, d_set)
        report = run_algorithm(algorithm, a_set, d_set)
        assert report.result_count == ds.num_results
        assert plan.estimate.total >= 0

    def test_explain_is_sorted_by_cost(self):
        _ds, a_set, d_set = self.run_case("SLLL")
        plans = CostBasedOptimizer().explain(a_set, d_set)
        totals = [plan.estimate.total for plan in plans]
        assert totals == sorted(totals)
        assert len({plan.algorithm_name for plan in plans}) == len(plans)

    def test_prediction_orders_main_rivals_correctly(self):
        """The model must rank the partitioning algorithms vs the
        sort-based ones the same way measurement does."""
        ds, a_set, d_set = self.run_case("SLSH")
        optimizer = CostBasedOptimizer()
        plans = {p.algorithm_name: p for p in optimizer.explain(a_set, d_set)}

        from repro.experiments.harness import make_algorithm

        measured = {}
        for name in ("STACKTREE", "MHCJ+Rollup", "VPJ"):
            measured[name] = run_algorithm(
                make_algorithm(name), a_set, d_set
            ).total_pages
        predicted_better = (
            plans["MHCJ+Rollup"].estimate.total
            < plans["STACKTREE"].estimate.total
        )
        actually_better = measured["MHCJ+Rollup"] < measured["STACKTREE"]
        assert predicted_better == actually_better

    def test_format_explain(self):
        _ds, a_set, d_set = self.run_case("SSSL", large=1000, small=100)
        text = CostBasedOptimizer.format_explain(
            CostBasedOptimizer().explain(a_set, d_set)
        )
        assert "plan" in text and "VPJ" in text
