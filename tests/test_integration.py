"""End-to-end integration: XML text -> data tree -> PBiTree codes ->
on-disk element sets -> containment joins -> decoded nodes.

Exercises the full pipeline a user of the library walks through,
including the paper's motivating query //Section//Figure.
"""

import random

import pytest

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    JoinSink,
    PBiTreeJoinFramework,
    PathQuery,
    StackTreeDescJoin,
    binarize,
    parse_xml,
)
from repro.core import pbitree as pt
from repro.datatree.paths import brute_force_join, select_by_tag
from repro.datatree.serialize import to_xml
from repro.join.planner import choose_algorithm
from repro.workloads import dblp, xmark


DOCUMENT = """
<book>
  <section id="1">
    <title>Introduction</title>
    <figure name="f1"/>
    <section id="1.1">
      <para>text<figure name="f2"/></para>
    </section>
  </section>
  <section id="2">
    <title>Background</title>
    <para/>
  </section>
  <appendix>
    <figure name="f9"/>
  </appendix>
</book>
"""


class TestMotivatingQuery:
    def pipeline(self, frames=16):
        tree = parse_xml(DOCUMENT)
        encoding = binarize(tree)
        disk = DiskManager(page_size=128)
        bufmgr = BufferManager(disk, frames)
        sections = ElementSet.from_tree_tag(
            bufmgr, tree, "section", encoding.tree_height
        )
        figures = ElementSet.from_tree_tag(
            bufmgr, tree, "figure", encoding.tree_height
        )
        return tree, encoding, sections, figures

    def test_section_figure_join(self):
        tree, encoding, sections, figures = self.pipeline()
        report, pairs = PBiTreeJoinFramework().join(sections, figures)
        # figures f1 and f2 are inside sections; f2 under two sections
        assert report.result_count == 3
        names = set()
        for _a, d_code in pairs:
            node = encoding.node_of(d_code)
            for child in tree.children[node]:
                if tree.tags[child] == "@name":
                    names.add(tree.texts[child])
        assert names == {"f1", "f2"}

    def test_decode_ancestors(self):
        tree, encoding, sections, figures = self.pipeline()
        _report, pairs = PBiTreeJoinFramework().join(sections, figures)
        section_ids = set()
        for a_code, _d in pairs:
            node = encoding.node_of(a_code)
            for child in tree.children[node]:
                if tree.tags[child] == "@id":
                    section_ids.add(tree.texts[child])
        assert section_ids == {"1", "1.1"}

    def test_path_query_chain_through_framework(self):
        tree, encoding, _sections, _figures = self.pipeline()
        bufmgr = _sections.bufmgr

        def framework_join(a_codes, d_codes):
            a_set = ElementSet.from_codes(
                bufmgr, a_codes, encoding.tree_height, "qa"
            )
            d_set = ElementSet.from_codes(
                bufmgr, d_codes, encoding.tree_height, "qd"
            )
            _report, pairs = PBiTreeJoinFramework().join(a_set, d_set)
            a_set.destroy()
            d_set.destroy()
            return pairs

        query = PathQuery("//book//section//figure")
        via_joins = query.evaluate_with_joins(tree, framework_join)
        navigational = sorted(query.evaluate_navigational(tree))
        assert via_joins == navigational


class TestWorkloadRoundTrips:
    def test_dblp_tree_serializes_and_reparses(self):
        tree = dblp.generate_tree(num_publications=50, seed=2)
        reparsed = parse_xml(to_xml(tree))
        assert reparsed.tag_counts() == tree.tag_counts()

    def test_xmark_join_through_storage(self):
        tree = xmark.generate_tree(scale=0.05, seed=3)
        encoding = binarize(tree)
        disk = DiskManager()
        bufmgr = BufferManager(disk, 32)
        for join in xmark.XMARK_JOINS[:4]:
            a_codes = select_by_tag(tree, join.anc_tag)
            d_codes = select_by_tag(tree, join.desc_tag)
            a_set = ElementSet.from_codes(
                bufmgr, a_codes, encoding.tree_height, join.anc_tag
            )
            d_set = ElementSet.from_codes(
                bufmgr, d_codes, encoding.tree_height, join.desc_tag
            )
            sink = JoinSink("collect")
            StackTreeDescJoin().run(a_set, d_set, sink)
            assert sorted(sink.pairs) == sorted(
                brute_force_join(a_codes, d_codes)
            ), join.name


class TestPlannerEndToEnd:
    def test_every_cell_of_table1_executes(self):
        tree = dblp.generate_tree(num_publications=300, seed=4)
        encoding = binarize(tree)
        disk = DiskManager(page_size=256)
        bufmgr = BufferManager(disk, 32)
        a_codes = select_by_tag(tree, "article")
        d_codes = select_by_tag(tree, "author")
        expected = sorted(brute_force_join(a_codes, d_codes))

        from repro.join.inljn import build_start_index
        from repro import SetProperties

        a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height, "A")
        d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height, "D")
        d_index = build_start_index(d_set, bufmgr)
        a_index = build_start_index(a_set, bufmgr)

        cases = [
            (SetProperties(), SetProperties(start_index=d_index)),
            (SetProperties(sorted=True), SetProperties(sorted=True)),
            (
                SetProperties(sorted=True, start_index=a_index),
                SetProperties(sorted=True, start_index=d_index),
            ),
            (SetProperties(), SetProperties()),
        ]
        for a_props, d_props in cases:
            algorithm = choose_algorithm(a_set, d_set, a_props, d_props)
            sink = JoinSink("collect")
            if a_props.sorted:
                sorted_a = a_set.sorted_copy()
                sorted_d = d_set.sorted_copy()
                algorithm.run(sorted_a, sorted_d, sink)
            else:
                algorithm.run(a_set, d_set, sink)
            assert sorted(sink.pairs) == expected, type(algorithm).__name__


class TestCrossDatasetConsistency:
    def test_random_subsets_of_dblp(self):
        tree = dblp.generate_tree(num_publications=400, seed=5)
        encoding = binarize(tree)
        rng = random.Random(6)
        disk = DiskManager(page_size=128)
        bufmgr = BufferManager(disk, 8)
        codes = tree.codes
        for _ in range(3):
            a_codes = rng.sample(codes, 200)
            d_codes = rng.sample(codes, 200)
            a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
            d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height)
            _report, pairs = PBiTreeJoinFramework().join(a_set, d_set)
            assert sorted(pairs) == sorted(brute_force_join(a_codes, d_codes))
