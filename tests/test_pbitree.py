"""Unit and property tests for the PBiTree code algebra (Section 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import pbitree as pt

# strategies: valid codes in PBiTrees up to height 40
TREE_HEIGHTS = st.integers(min_value=2, max_value=40)


@st.composite
def code_in_tree(draw, min_height=2, max_height=40):
    tree_height = draw(st.integers(min_value=min_height, max_value=max_height))
    code = draw(st.integers(min_value=1, max_value=(1 << tree_height) - 1))
    return code, tree_height


class TestPaperExamples:
    """Every worked example printed in the paper must hold."""

    def test_f_function_examples(self):
        # "for the node with code 18 ... ancestor at height 2 is 20"
        assert pt.f_ancestor(18, 2) == 20
        assert pt.f_ancestor(18, 3) == 24
        assert pt.f_ancestor(18, 4) == 16

    def test_height_of_18(self):
        # "code 18 is for a node at height 1 (binary 10010)"
        assert pt.height_of(18) == 1

    def test_level_of_18(self):
        # "its level is 5 - 1 - 1 = 3"
        assert pt.level_of(18, 5) == 3

    def test_g_function_example(self):
        # "G(4, 3) = (1 + 2*4) * 2^(5-3-1) = 18"
        assert pt.g_code(4, 3, 5) == 18

    def test_root_of_height_5_tree_is_16(self):
        assert pt.root_code(5) == 16

    def test_coding_space(self):
        assert pt.max_code(5) == 31


class TestHeightLevel:
    def test_height_of_powers_of_two(self):
        for bit in range(40):
            assert pt.height_of(1 << bit) == bit

    def test_height_of_odd_codes_is_zero(self):
        for code in (1, 3, 5, 7, 9, 101, 2**20 + 1):
            assert pt.height_of(code) == 0

    @given(code_in_tree())
    def test_level_plus_height_is_tree_height_minus_one(self, ct):
        code, tree_height = ct
        assert pt.level_of(code, tree_height) + pt.height_of(code) == tree_height - 1

    @given(code_in_tree())
    def test_level_in_range(self, ct):
        code, tree_height = ct
        assert 0 <= pt.level_of(code, tree_height) <= tree_height - 1


class TestFG:
    @given(code_in_tree())
    def test_f_at_own_height_is_identity(self, ct):
        code, _h = ct
        assert pt.f_ancestor(code, pt.height_of(code)) == code

    @given(code_in_tree())
    def test_g_inverts_top_down(self, ct):
        code, tree_height = ct
        level, alpha = pt.top_down_of(code, tree_height)
        assert pt.g_code(alpha, level, tree_height) == code

    @given(code_in_tree())
    def test_alpha_of_matches_top_down(self, ct):
        code, tree_height = ct
        assert pt.alpha_of(code) == pt.top_down_of(code, tree_height).alpha

    @given(code_in_tree())
    def test_f_produces_node_at_requested_height(self, ct):
        code, tree_height = ct
        own = pt.height_of(code)
        for height in range(own, tree_height):
            assert pt.height_of(pt.f_ancestor(code, height)) == height

    @given(code_in_tree())
    def test_f_chain_is_monotone_in_region(self, ct):
        """Each higher ancestor's region contains the lower one's."""
        code, tree_height = ct
        region = pt.region_of(code)
        for height in range(pt.height_of(code) + 1, tree_height):
            anc_region = pt.region_of(pt.f_ancestor(code, height))
            assert anc_region.start <= region.start
            assert region.end <= anc_region.end
            region = anc_region


class TestAncestorPredicate:
    @given(code_in_tree())
    def test_not_ancestor_of_self(self, ct):
        code, _h = ct
        assert not pt.is_ancestor(code, code)
        assert pt.is_ancestor_or_self(code, code)

    @given(code_in_tree())
    def test_f_ancestors_are_ancestors(self, ct):
        code, tree_height = ct
        for height in range(pt.height_of(code) + 1, tree_height):
            assert pt.is_ancestor(pt.f_ancestor(code, height), code)

    @given(code_in_tree(), st.integers(min_value=1))
    def test_agrees_with_region_containment(self, ct, other_raw):
        code, tree_height = ct
        other = other_raw % ((1 << tree_height) - 1) + 1
        by_lemma = pt.is_ancestor(code, other)
        by_region = pt.region_of(code).contains(pt.region_of(other))
        assert by_lemma == by_region

    @given(code_in_tree(), st.integers(min_value=1))
    def test_antisymmetric(self, ct, other_raw):
        code, tree_height = ct
        other = other_raw % ((1 << tree_height) - 1) + 1
        if code != other:
            assert not (pt.is_ancestor(code, other) and pt.is_ancestor(other, code))

    def test_paper_figure2_relations(self):
        # Figure 2 (H = 5): 16 is the root, 20 covers 17..23
        assert pt.is_ancestor(16, 18)
        assert pt.is_ancestor(20, 18)
        assert pt.is_ancestor(24, 20)
        assert not pt.is_ancestor(20, 24)
        assert not pt.is_ancestor(8, 18)


class TestRegionAndPrefix:
    def test_region_example(self):
        # node 20 (height 2) spans leaves 17..23
        assert pt.region_of(20) == (17, 23)

    @given(code_in_tree())
    def test_region_width(self, ct):
        """A height-h subtree spans 2^(h+1) - 1 in-order positions."""
        code, _th = ct
        start, end = pt.region_of(code)
        assert end - start == (1 << (pt.height_of(code) + 1)) - 2
        assert start <= code <= end

    @given(code_in_tree())
    def test_start_end_accessors_match_region(self, ct):
        code, _th = ct
        assert (pt.start_of(code), pt.end_of(code)) == tuple(pt.region_of(code))

    @given(code_in_tree())
    def test_code_from_region_start_roundtrip(self, ct):
        code, _th = ct
        start = pt.start_of(code)
        assert pt.code_from_region_start(start, pt.height_of(code)) == code

    @given(code_in_tree(), st.integers(min_value=1))
    def test_prefix_code_equivalence(self, ct, other_raw):
        """Lemma 4: ancestor-or-self iff the path bits are a prefix.

        The path of a node is its prefix code without the trailing '1'
        marker bit (see :func:`prefix_of`).
        """
        code, tree_height = ct
        other = other_raw % ((1 << tree_height) - 1) + 1
        height_diff = pt.height_of(code) - pt.height_of(other)
        if height_diff >= 0:
            by_prefix = (
                pt.prefix_of(other) >> (height_diff + 1)
            ) == pt.prefix_of(code) >> 1
        else:
            by_prefix = False
        assert by_prefix == pt.is_ancestor_or_self(code, other)

    def test_region_contains_point(self):
        region = pt.region_of(20)
        assert region.contains_point(17)
        assert region.contains_point(23)
        assert not region.contains_point(24)


class TestNavigation:
    @given(code_in_tree())
    def test_parent_child_inverse(self, ct):
        code, tree_height = ct
        if pt.height_of(code) > 0:
            assert pt.parent_of(pt.left_child_of(code)) == code
            assert pt.parent_of(pt.right_child_of(code)) == code

    def test_parent_of_root_raises(self):
        with pytest.raises(ValueError):
            pt.parent_of(16, tree_height=5)

    def test_children_of_leaf_raise(self):
        with pytest.raises(ValueError):
            pt.left_child_of(1)
        with pytest.raises(ValueError):
            pt.right_child_of(3)

    @given(code_in_tree())
    def test_children_are_descendants(self, ct):
        code, _th = ct
        if pt.height_of(code) > 0:
            assert pt.is_ancestor(code, pt.left_child_of(code))
            assert pt.is_ancestor(code, pt.right_child_of(code))

    def test_root_code_requires_positive_height(self):
        with pytest.raises(ValueError):
            pt.root_code(0)


class TestSubtreeEnumeration:
    @given(code_in_tree(min_height=3, max_height=20))
    def test_subtree_codes_at_height(self, ct):
        code, _th = ct
        own = pt.height_of(code)
        if own == 0:
            return
        for height in range(own):
            codes = list(pt.subtree_codes_at_height(code, height))
            assert len(codes) == 1 << (own - height)
            for child in codes:
                assert pt.height_of(child) == height
                assert pt.is_ancestor(code, child)

    def test_subtree_codes_rejects_own_height(self):
        with pytest.raises(ValueError):
            pt.subtree_codes_at_height(20, 2)

    def test_figure2_leaves_of_20(self):
        assert list(pt.subtree_codes_at_height(20, 0)) == [17, 19, 21, 23]


class TestDocOrderKey:
    def test_ancestor_sorts_before_descendant(self):
        # 16 (root) and 1 share Start = 1; the root must come first
        assert pt.doc_order_key(16) < pt.doc_order_key(1)

    @given(code_in_tree(), st.integers(min_value=1))
    def test_matches_preorder(self, ct, other_raw):
        """doc_order_key realises pre-order: ancestors first, then by start."""
        code, tree_height = ct
        other = other_raw % ((1 << tree_height) - 1) + 1
        if code == other:
            return
        if pt.is_ancestor(code, other):
            assert pt.doc_order_key(code) < pt.doc_order_key(other)
        elif pt.is_ancestor(other, code):
            assert pt.doc_order_key(other) < pt.doc_order_key(code)
        else:
            # disjoint subtrees: order by region start, which cannot tie
            assert (pt.doc_order_key(code) < pt.doc_order_key(other)) == (
                pt.start_of(code) < pt.start_of(other)
            )


class TestValidate:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pt.validate_code(0)
        with pytest.raises(ValueError):
            pt.validate_code(-5)

    def test_rejects_out_of_space(self):
        with pytest.raises(ValueError):
            pt.validate_code(32, tree_height=5)
        pt.validate_code(31, tree_height=5)  # boundary ok


@st.composite
def two_codes_in_tree(draw, max_height=24):
    """Two (possibly equal) codes from the same PBiTree."""
    tree_height = draw(st.integers(min_value=2, max_value=max_height))
    space = (1 << tree_height) - 1
    first = draw(st.integers(min_value=1, max_value=space))
    second = draw(st.integers(min_value=1, max_value=space))
    return first, second, tree_height


class TestLemma34Conversions:
    """Roundtrip properties for the Lemma 3 (region) and Lemma 4
    (prefix) conversions: PBiTree <-> region <-> prefix compose to the
    identity and preserve the ancestor relation."""

    @given(code_in_tree())
    def test_region_roundtrip(self, ct):
        code, _tree_height = ct
        height = pt.height_of(code)
        region = pt.region_of(code)
        assert pt.code_from_region_start(region.start, height) == code
        # the region is centred on the code and spans the whole subtree
        assert region.end - region.start == 2 * ((1 << height) - 1)
        assert region.start + region.end == 2 * code

    @given(code_in_tree())
    def test_prefix_roundtrip(self, ct):
        code, _tree_height = ct
        assert pt.prefix_of(code) << pt.height_of(code) == code
        # prefix codes always end in the node's own '1' marker bit
        assert pt.prefix_of(code) & 1 == 1

    @given(code_in_tree())
    def test_region_then_prefix_composition_is_identity(self, ct):
        code, _tree_height = ct
        height = pt.height_of(code)
        via_region = pt.code_from_region_start(pt.region_of(code).start, height)
        via_prefix = pt.prefix_of(via_region) << pt.height_of(via_region)
        assert via_prefix == code

    @given(two_codes_in_tree())
    def test_region_containment_iff_ancestor(self, codes):
        """Lemma 3: proper region containment == proper ancestorship."""
        first, second, _tree_height = codes
        assert pt.region_of(first).contains(pt.region_of(second)) == (
            pt.is_ancestor(first, second)
        )

    @given(two_codes_in_tree())
    def test_prefix_bit_prefix_iff_ancestor_or_self(self, codes):
        """Lemma 4: 'a's path is a bit-prefix of d's' == ancestor-or-self."""
        first, second, _tree_height = codes
        height_a = pt.height_of(first)
        height_d = pt.height_of(second)
        prefix_matches = height_a >= height_d and (
            pt.prefix_of(second) >> (height_a - height_d + 1)
            == pt.prefix_of(first) >> 1
        )
        assert prefix_matches == pt.is_ancestor_or_self(first, second)

    @given(two_codes_in_tree())
    def test_conversions_preserve_ancestor_relation(self, codes):
        """Converting both codes to regions and back must not change
        which of the two relations (ancestor / not) holds."""
        first, second, _tree_height = codes
        back_first = pt.code_from_region_start(
            pt.region_of(first).start, pt.height_of(first)
        )
        back_second = pt.code_from_region_start(
            pt.region_of(second).start, pt.height_of(second)
        )
        assert pt.is_ancestor(back_first, back_second) == pt.is_ancestor(
            first, second
        )
