"""Differential suite for the sharded storage layout and executor.

The contract of ``repro.shard`` is *shard-count invariance*: the unit
of work is the level-``l`` slot, whose population, heap layout and
scan order depend only on ``(tree_height, level, data)`` — never on
how slots are grouped onto shards or how many workers run them.  So a
``shards=1`` run is the oracle for ``shards=N``: merged
``JoinReport``s must match field-for-field (I/O accounting included)
with only ``wall_seconds`` free to differ, serial and parallel, plain
and under chaos seeds.

Plus: a hypothesis property pinning the exactly-once pair coverage of
the VPJ scatter rule (every containment pair meets in exactly one
slot), routing-table unit coverage, save/load round-trips, and the
database/service integration points.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import ContainmentDatabase, binarize, random_tree
from repro.core.pbitree import is_ancestor, max_code
from repro.datatree.paths import select_by_tag
from repro.experiments.harness import run_lineup
from repro.obs.tracer import Tracer
from repro.shard import (
    SHARDMAP_FORMAT,
    ShardedCorpus,
    ShardedJoinExecutor,
    ShardMap,
    SlotInputs,
    default_shard_level,
)
from repro.shard.executor import slot_fault_config
from repro.storage.faults import FaultConfig
from repro.workloads.synthetic import generate, spec_by_name

#: chaos seed rotates in CI like the fault-injection suite's
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: the Figure 6(b) line-up names (multi-height datasets)
LINEUP = ["INLJN", "STACKTREE", "ADB+", "MHCJ+Rollup", "VPJ"]


def normalize(report):
    """Strip the only field legitimately run-dependent."""
    return dataclasses.replace(report, wall_seconds=0.0, trace=None)


def dataset(name="MSSL", large=1500, small=300, seed=0):
    return generate(spec_by_name(name, large=large, small=small), seed=seed)


# ---------------------------------------------------------------------------
# routing table
# ---------------------------------------------------------------------------
class TestShardMap:
    def test_default_level_floors_and_caps(self):
        assert default_shard_level(20, 1) == 3
        assert default_shard_level(20, 8) == 3
        assert default_shard_level(20, 9) == 4  # needs 16 slots
        assert default_shard_level(3, 2) == 2  # capped at height - 1
        assert default_shard_level(2, 2) == 1
        with pytest.raises(ValueError):
            default_shard_level(3, 8)  # 8 shards need level 3, max is 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(tree_height=10, level=10, num_shards=1)
        with pytest.raises(ValueError):
            ShardMap(tree_height=10, level=2, num_shards=5)  # only 4 slots
        with pytest.raises(ValueError):
            ShardMap(tree_height=0, level=0, num_shards=1)

    def test_slot_to_shard_partition(self):
        for num_shards in (1, 2, 3, 4, 8):
            shard_map = ShardMap(tree_height=12, level=3, num_shards=num_shards)
            covered = []
            for shard in range(num_shards):
                slots = shard_map.slots_of_shard(shard)
                assert len(slots) >= 1  # every shard owns a slot
                for slot in slots:
                    assert shard_map.shard_of_slot(slot) == shard
                covered.extend(slots)
            assert covered == list(range(shard_map.num_slots))

    def test_ancestor_slots_start_at_owner(self):
        shard_map = ShardMap(tree_height=6, level=2, num_shards=2)
        for code in range(1, int(max_code(6)) + 1):
            slots = shard_map.ancestor_slots(code)
            assert slots[0] == shard_map.owner_slot(code)
            assert list(slots) == sorted(slots)

    def test_scatter_rejects_out_of_space_codes(self):
        shard_map = ShardMap(tree_height=5, level=2, num_shards=2)
        with pytest.raises(ValueError):
            shard_map.scatter([0])
        with pytest.raises(ValueError):
            shard_map.scatter([int(max_code(5)) + 1])

    def test_roundtrip_dict(self):
        shard_map = ShardMap(tree_height=21, level=4, num_shards=3)
        assert ShardMap.from_dict(shard_map.to_dict()) == shard_map


# ---------------------------------------------------------------------------
# the exactly-once property (hypothesis)
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    tree_height=st.integers(min_value=2, max_value=7),
    level=st.integers(min_value=0, max_value=6),
    data=st.data(),
)
def test_scatter_covers_every_pair_exactly_once(tree_height, level, data):
    """Every containment pair meets in exactly one slot; every code is
    owned by exactly one slot and replicated only ancestor-role."""
    level = min(level, tree_height - 1)
    shard_map = ShardMap(tree_height, level, num_shards=1)
    space = list(range(1, int(max_code(tree_height)) + 1))
    codes = data.draw(
        st.lists(st.sampled_from(space), min_size=1, max_size=40, unique=True)
    )
    owned, replica = shard_map.scatter(codes)

    # ownership partition: each code in exactly one owned list
    flat_owned = [code for slot in owned for code in slot]
    assert sorted(flat_owned) == sorted(codes)
    # replicas never duplicate ownership within a slot
    for slot in range(shard_map.num_slots):
        assert not set(owned[slot]) & set(replica[slot])

    # pair coverage: ancestor side = owned + replica, descendant side =
    # owned only; each true containment pair appears in exactly one slot
    for a_code in codes:
        for d_code in codes:
            if a_code == d_code or not is_ancestor(a_code, d_code):
                continue
            hits = sum(
                1
                for slot in range(shard_map.num_slots)
                if a_code in owned[slot] + replica[slot]
                and d_code in owned[slot]
            )
            assert hits == 1, (
                f"pair ({a_code}, {d_code}) found in {hits} slots "
                f"(H={tree_height}, l={level})"
            )


@settings(max_examples=30, deadline=None)
@given(
    tree_height=st.integers(min_value=2, max_value=7),
    level=st.integers(min_value=0, max_value=6),
    num_shards=st.integers(min_value=1, max_value=8),
)
def test_every_code_routes_to_its_owner_shard(tree_height, level, num_shards):
    level = min(level, tree_height - 1)
    num_shards = min(num_shards, 1 << level)
    shard_map = ShardMap(tree_height, level, num_shards)
    for code in range(1, int(max_code(tree_height)) + 1):
        shard = shard_map.shard_of_code(code)
        assert shard == shard_map.shard_of_slot(shard_map.owner_slot(code))
        assert 0 <= shard < num_shards


# ---------------------------------------------------------------------------
# corpus layout + persistence
# ---------------------------------------------------------------------------
class TestShardedCorpus:
    def test_slot_extraction_matches_scatter(self):
        data = dataset(large=600, small=150)
        corpus = ShardedCorpus(data.tree_height, 2)
        corpus.add_set("A", data.a_codes)
        owned, replica = corpus.map.scatter(data.a_codes)
        for slot in range(corpus.num_slots):
            assert (
                corpus.slot_ancestor_codes("A", slot)
                == owned[slot] + replica[slot]
            )
            assert corpus.slot_descendant_codes("A", slot) == owned[slot]

    def test_duplicate_tag_rejected(self):
        corpus = ShardedCorpus(10, 2)
        corpus.add_set("A", [1, 2, 3])
        with pytest.raises(ValueError):
            corpus.add_set("A", [4])

    def test_save_load_roundtrip(self, tmp_path):
        data = dataset(large=500, small=120)
        corpus = ShardedCorpus(data.tree_height, 3, level=3)
        corpus.add_set("A", data.a_codes)
        corpus.add_set("D", data.d_codes)
        corpus.save(tmp_path / "c")

        loaded = ShardedCorpus.load(tmp_path / "c")
        assert loaded.map == corpus.map
        assert loaded.tags == ["A", "D"]
        assert loaded.set_size("A") == len(data.a_codes)
        for tag in ("A", "D"):
            for slot in range(corpus.num_slots):
                assert loaded.slot_ancestor_codes(
                    tag, slot
                ) == corpus.slot_ancestor_codes(tag, slot)
                assert loaded.slot_descendant_codes(
                    tag, slot
                ) == corpus.slot_descendant_codes(tag, slot)

    def test_load_rejects_wrong_format(self, tmp_path):
        corpus = ShardedCorpus(10, 1)
        corpus.save(tmp_path / "c")
        shardmap = tmp_path / "c" / "shardmap.json"
        shardmap.write_text(
            shardmap.read_text().replace(SHARDMAP_FORMAT, "bogus/v0")
        )
        with pytest.raises(ValueError, match="routing table"):
            ShardedCorpus.load(tmp_path / "c")

    def test_stats_counts_replication(self):
        data = dataset(large=500, small=120)
        corpus = ShardedCorpus(data.tree_height, 2)
        corpus.add_set("A", data.a_codes)
        stats = corpus.stats()
        assert stats["sets"]["A"]["records"] == len(data.a_codes)
        assert len(stats["shards"]) == 2


# ---------------------------------------------------------------------------
# the differential oracle: shards=1 vs shards=N
# ---------------------------------------------------------------------------
def _sharded_reports(shards, workers=1, faults=None, collect=True, seed=0):
    data = dataset(seed=seed)
    lineup = run_lineup(
        "MSSL",
        data.a_codes,
        data.d_codes,
        data.tree_height,
        algorithms=LINEUP,
        collect=collect,
        faults=faults,
        workers=workers,
        shards=shards,
    )
    return {r.name: normalize(r.report) for r in lineup.results}


class TestShardDifferential:
    def test_lineup_invariant_across_shard_counts(self):
        baseline = _sharded_reports(shards=1)
        for shards in (2, 4):
            assert _sharded_reports(shards=shards) == baseline

    def test_lineup_invariant_with_workers(self):
        baseline = _sharded_reports(shards=4, workers=1)
        assert _sharded_reports(shards=4, workers=2) == baseline

    def test_lineup_invariant_under_chaos(self):
        chaos = FaultConfig(
            seed=CHAOS_SEED, read_error_rate=0.01, latency_rate=0.0
        )
        baseline = _sharded_reports(shards=1, faults=chaos)
        assert _sharded_reports(shards=2, faults=chaos) == baseline
        assert _sharded_reports(shards=4, faults=chaos, workers=2) == baseline

    def test_gathered_pairs_match_brute_force(self):
        data = dataset(large=600, small=150)
        expected = sorted(
            (a_code, d_code)
            for a_code in data.a_codes
            for d_code in data.d_codes
            if a_code != d_code and is_ancestor(a_code, d_code)
        )
        corpus = ShardedCorpus(data.tree_height, 2)
        corpus.add_set("A", data.a_codes)
        corpus.add_set("D", data.d_codes)
        executor = ShardedJoinExecutor(corpus, workers=1)
        report, pairs = executor.run(
            "MHCJ+Rollup", "A", "D", dataset="MSSL", collect=True
        )
        assert report.result_count == len(expected)
        assert pairs is not None
        assert sorted(pairs) == expected


# ---------------------------------------------------------------------------
# executor unit behaviour
# ---------------------------------------------------------------------------
class TestExecutor:
    def test_slot_fault_config_is_deterministic_and_distinct(self):
        base = FaultConfig(seed=7, read_error_rate=0.5)
        one = slot_fault_config(base, "ds", "VPJ", 3)
        again = slot_fault_config(base, "ds", "VPJ", 3)
        other = slot_fault_config(base, "ds", "VPJ", 4)
        assert one == again
        assert one.seed != other.seed
        assert one.read_error_rate == 0.5
        assert slot_fault_config(None, "ds", "VPJ", 0) is None

    def test_rejects_unknown_algorithm_and_live_injector(self):
        from repro.storage.faults import FaultInjector

        data = dataset(large=200, small=50)
        corpus = ShardedCorpus(data.tree_height, 1)
        corpus.add_set("A", data.a_codes)
        corpus.add_set("D", data.d_codes)
        executor = ShardedJoinExecutor(corpus)
        with pytest.raises(ValueError, match="unknown algorithm"):
            executor.run("NOPE", "A", "D")
        with pytest.raises(ValueError, match="FaultInjector"):
            executor.run(
                "VPJ", "A", "D", faults=FaultInjector(FaultConfig(seed=1))
            )

    def test_transient_intermediates_match_materialized_sets(self):
        data = dataset()
        corpus = ShardedCorpus(data.tree_height, 2)
        corpus.add_set("A", data.a_codes)
        corpus.add_set("D", data.d_codes)
        executor = ShardedJoinExecutor(corpus, workers=1)
        by_tag, pairs_tag = executor.run(
            "MHCJ+Rollup", "A", "D", dataset="x", collect=True
        )
        by_codes, pairs_codes = executor.run(
            "MHCJ+Rollup",
            list(data.a_codes),
            "D",
            dataset="x",
            collect=True,
        )
        assert normalize(by_codes) == normalize(by_tag)
        assert pairs_codes == pairs_tag

    def test_slot_inputs_preextracted(self):
        data = dataset()
        corpus = ShardedCorpus(data.tree_height, 2)
        corpus.add_set("A", data.a_codes)
        corpus.add_set("D", data.d_codes)
        executor = ShardedJoinExecutor(corpus, workers=1)
        anchors = SlotInputs(
            tuple(
                tuple(corpus.slot_ancestor_codes("A", slot))
                for slot in range(corpus.num_slots)
            )
        )
        descendants = SlotInputs(
            tuple(
                tuple(corpus.slot_descendant_codes("D", slot))
                for slot in range(corpus.num_slots)
            )
        )
        via_tags, _ = executor.run("VPJ", "A", "D", dataset="x")
        via_inputs, _ = executor.run("VPJ", anchors, descendants, dataset="x")
        assert normalize(via_inputs) == normalize(via_tags)
        with pytest.raises(ValueError, match="SlotInputs covers"):
            executor.run("VPJ", SlotInputs(((1,),)), "D")

    def test_fanout_span_records_slots(self):
        data = dataset(large=400, small=100)
        corpus = ShardedCorpus(data.tree_height, 2)
        corpus.add_set("A", data.a_codes)
        corpus.add_set("D", data.d_codes)
        tracer = Tracer()
        executor = ShardedJoinExecutor(corpus, workers=1)
        executor.run("VPJ", "A", "D", dataset="x", tracer=tracer)
        fanout = [s for s in tracer.roots if s.name == "shard.fanout"]
        assert len(fanout) == 1
        assert fanout[0].attributes["total_slots"] == corpus.num_slots
        assert fanout[0].children  # per-slot trace roots grafted in


# ---------------------------------------------------------------------------
# database + service integration
# ---------------------------------------------------------------------------
class TestShardedDatabase:
    def make_pair(self, shards):
        tree = random_tree(700, max_fanout=5, seed=11)
        plain = ContainmentDatabase(buffer_pages=64)
        plain.load_tree(tree, name="corpus")
        sharded = ContainmentDatabase(buffer_pages=64, shards=shards)
        sharded.load_tree(tree, name="corpus")
        return plain, sharded

    def test_query_parity(self):
        plain, sharded = self.make_pair(shards=2)
        doc_p = plain.document("corpus")
        doc_s = sharded.document("corpus")
        for path in ("//a//b", "//a//b//c", "//b//d", "//a"):
            expect = sorted(n.id for n in plain.query(doc_p, path).nodes)
            got = sorted(n.id for n in sharded.query(doc_s, path).nodes)
            assert got == expect, path

    def test_update_invalidates_corpus(self):
        plain, sharded = self.make_pair(shards=2)
        doc_s = sharded.document("corpus")
        before = len(sharded.query(doc_s, "//a").nodes)
        sharded.insert_element(doc_s, doc_s.tree.root, "a")
        after = len(sharded.query(doc_s, "//a").nodes)
        assert after == before + 1

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            ContainmentDatabase(shards=-1)

    def test_explicit_bottom_up_bypasses_shards(self):
        _, sharded = self.make_pair(shards=2)
        doc_s = sharded.document("corpus")
        result = sharded.query(doc_s, "//a//b", direction="bottom-up")
        top_down = sharded.query(doc_s, "//a//b")
        assert sorted(n.id for n in result.nodes) == sorted(
            n.id for n in top_down.nodes
        )


class TestShardedHarnessOnXml:
    def test_lineup_on_document_tags(self):
        """run_lineup over real document tag sets, sharded vs not."""
        tree = random_tree(600, max_fanout=4, seed=5)
        encoding = binarize(tree)
        a_codes = select_by_tag(tree, "a")
        d_codes = select_by_tag(tree, "b")
        kwargs = dict(algorithms=["MHCJ+Rollup", "VPJ"], collect=True)
        one = run_lineup(
            "doc", a_codes, d_codes, encoding.tree_height, shards=1, **kwargs
        )
        four = run_lineup(
            "doc", a_codes, d_codes, encoding.tree_height, shards=4, **kwargs
        )
        assert one.result_count == four.result_count
        for r_one, r_four in zip(one.results, four.results):
            assert normalize(r_one.report) == normalize(r_four.report)
