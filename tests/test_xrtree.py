"""Tests for the XR-tree (footnote [8]: Jiang et al., ICDE 2003)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    IndexNestedLoopJoin,
    JoinSink,
    binarize,
    brute_force_join,
    random_tree,
)
from repro.core import pbitree as pt
from repro.index.xrtree import XRTree
from repro.join.inljn import build_xr_index


def make_env(frames=32, page_size=256):
    disk = DiskManager(page_size=page_size)
    return disk, BufferManager(disk, frames)


def brute_stab(codes, point):
    return sorted(
        code for code in codes
        if pt.start_of(code) <= point <= pt.end_of(code)
    )


class TestStabQueries:
    @given(
        st.integers(20, 1200),
        st.integers(0, 50),
        st.sampled_from([2, 4, 16]),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_force(self, num_nodes, seed, fanout):
        tree = random_tree(num_nodes, max_fanout=fanout, seed=seed)
        binarize(tree)
        rng = random.Random(seed)
        codes = rng.sample(tree.codes, max(1, num_nodes // 2))
        _disk, bufmgr = make_env()
        xr = XRTree.build(bufmgr, codes)
        for _ in range(40):
            probe = rng.choice(tree.codes)
            point = pt.start_of(probe)
            got = sorted(code for _s, _e, code in xr.stab(point))
            assert got == brute_stab(codes, point)

    def test_empty(self):
        _disk, bufmgr = make_env()
        xr = XRTree.build(bufmgr, [])
        assert list(xr.stab(5)) == []
        assert len(xr) == 0

    def test_single_element(self):
        _disk, bufmgr = make_env()
        xr = XRTree.build(bufmgr, [20])  # region (17, 23)
        assert [c for _s, _e, c in xr.stab(20)] == [20]
        assert list(xr.stab(24)) == []

    def test_nested_chain(self):
        """All elements on one root path contain the leaf's start."""
        _disk, bufmgr = make_env()
        chain = [16, 8, 4, 2, 1]  # H=5 leftmost chain, all Start = 1
        xr = XRTree.build(bufmgr, chain)
        got = sorted(code for _s, _e, code in xr.stab(1))
        assert got == sorted(chain)

    def test_each_element_in_at_most_one_stab_list(self):
        tree = random_tree(800, seed=6)
        binarize(tree)
        _disk, bufmgr = make_env(page_size=128)
        xr = XRTree.build(bufmgr, tree.codes)
        total_in_lists = sum(
            len(heap) for heap in xr._stab_lists.values()
        )
        assert total_in_lists == xr.num_stabbed
        assert xr.num_stabbed <= len(tree.codes)

    def test_ancestors_of(self):
        tree = random_tree(400, seed=7)
        encoding = binarize(tree)
        _disk, bufmgr = make_env()
        xr = XRTree.build(bufmgr, tree.codes)
        rng = random.Random(7)
        for _ in range(60):
            probe = rng.choice(tree.codes)
            want = sorted(
                c for c in tree.codes if pt.is_ancestor(c, probe)
            )
            assert sorted(xr.ancestors_of(probe)) == want

    def test_range_scan_delegates(self):
        _disk, bufmgr = make_env()
        xr = XRTree.build(bufmgr, [4, 6, 20])
        keys = [key for key, _code in xr.range_scan(0, 100)]
        assert keys == sorted(pt.start_of(c) for c in [4, 6, 20])


class TestXRProbeJoin:
    def test_inljn_with_xr_probe_matches_brute_force(self):
        rng = random.Random(8)
        tree = random_tree(900, seed=8)
        encoding = binarize(tree)
        a_codes = rng.sample(tree.codes, 400)
        d_codes = rng.sample(tree.codes, 30)  # small D -> probe A side
        _disk, bufmgr = make_env()
        a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
        d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height)
        sink = JoinSink("collect")
        IndexNestedLoopJoin(ancestor_probe="xr").run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted(brute_force_join(a_codes, d_codes))

    def test_prebuilt_xr_index(self):
        tree = random_tree(300, seed=9)
        encoding = binarize(tree)
        _disk, bufmgr = make_env()
        a_set = ElementSet.from_codes(bufmgr, tree.codes, encoding.tree_height)
        d_set = ElementSet.from_codes(bufmgr, tree.codes[:10], encoding.tree_height)
        index = build_xr_index(a_set, bufmgr)
        report = IndexNestedLoopJoin(a_index=index).run(
            a_set, d_set, JoinSink("count")
        )
        assert report.prep_io.total == 0

    def test_bad_probe_kind_rejected(self):
        with pytest.raises(ValueError):
            IndexNestedLoopJoin(ancestor_probe="zkd")


class TestIOBehaviour:
    def test_cold_stab_charges_io(self):
        tree = random_tree(2000, seed=10)
        binarize(tree)
        disk, bufmgr = make_env(frames=4, page_size=128)
        xr = XRTree.build(bufmgr, tree.codes)
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()
        result = list(xr.stab(pt.start_of(tree.codes[100])))
        # cost = one descent + the stab-list pages along the path; far
        # below a full scan of the index
        full_scan = xr._btree.num_nodes + sum(
            heap.num_pages for heap in xr._stab_lists.values()
        )
        assert 0 < disk.stats.reads < full_scan / 4
        assert result  # the probe point has ancestors in a random tree
