"""Tests for the workload generators (synthetic, DBLP-like, XMark-like)."""

import pytest

from repro.core import pbitree as pt
from repro.core.binarize import binarize
from repro.datatree.paths import brute_force_join, select_by_tag
from repro.workloads import dblp, synthetic as syn, xmark


class TestSyntheticSpecs:
    def test_sixteen_datasets(self):
        names = {s.name for s in syn.single_height_specs()} | {
            s.name for s in syn.multi_height_specs()
        }
        assert len(names) == 16

    def test_naming_convention(self):
        spec = syn.spec_by_name("SLSH")
        assert spec.a_size > spec.d_size
        assert not spec.multi_height
        assert spec.match_fraction == syn.HIGH_MATCH_FRACTION

        spec = syn.spec_by_name("MSLL")
        assert spec.a_size < spec.d_size
        assert spec.multi_height
        assert spec.match_fraction == syn.LOW_MATCH_FRACTION

    def test_table_2b_height_counts(self):
        for spec in syn.multi_height_specs():
            want_ha, want_hd = syn._TABLE_2B_HEIGHTS[spec.name]
            assert len(spec.a_heights) == want_ha
            assert len(spec.d_heights) == want_hd

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            syn.spec_by_name("XXXX")

    def test_scaling(self):
        spec = syn.spec_by_name("SLLH", large=1234, small=56)
        assert spec.a_size == 1234 and spec.d_size == 1234
        spec = syn.spec_by_name("SSLH", large=1234, small=56)
        assert spec.a_size == 56 and spec.d_size == 1234


class TestSyntheticGeneration:
    def test_sizes_and_heights(self):
        spec = syn.spec_by_name("MLSH", large=3000, small=300)
        ds = syn.generate(spec, seed=0)
        assert len(ds.a_codes) == 3000 and len(ds.d_codes) == 300
        assert {pt.height_of(c) for c in ds.a_codes} <= set(spec.a_heights)
        assert {pt.height_of(c) for c in ds.d_codes} <= set(spec.d_heights)

    def test_codes_distinct_within_sets(self):
        ds = syn.generate(syn.spec_by_name("SLLH", large=3000, small=300), seed=1)
        assert len(set(ds.a_codes)) == len(ds.a_codes)
        assert len(set(ds.d_codes)) == len(ds.d_codes)

    def test_result_count_is_ground_truth(self):
        spec = syn.spec_by_name("MSSH", large=2000, small=300)
        ds = syn.generate(spec, seed=2)
        assert ds.num_results == len(brute_force_join(ds.a_codes, ds.d_codes))

    def test_high_vs_low_selectivity(self):
        high = syn.generate(syn.spec_by_name("SLLH", large=2000, small=200), seed=3)
        low = syn.generate(syn.spec_by_name("SLLL", large=2000, small=200), seed=3)
        assert high.num_results > 5 * low.num_results

    def test_deterministic_for_seed(self):
        spec = syn.spec_by_name("SSSH", large=1000, small=200)
        first = syn.generate(spec, seed=7)
        second = syn.generate(spec, seed=7)
        assert first.a_codes == second.a_codes
        assert first.d_codes == second.d_codes

    def test_seeds_differ(self):
        spec = syn.spec_by_name("SSSH", large=1000, small=200)
        assert syn.generate(spec, seed=1).a_codes != syn.generate(spec, seed=2).a_codes

    def test_codes_fit_storage(self):
        for spec in syn.single_height_specs(2000, 200) + syn.multi_height_specs(2000, 200):
            ds = syn.generate(spec, seed=0)
            assert ds.tree_height <= 63
            top = (1 << ds.tree_height) - 1
            assert all(1 <= c <= top for c in ds.a_codes + ds.d_codes)

    def test_count_results_helper(self):
        assert syn.count_results([], [1, 2]) == 0
        assert syn.count_results([2], [1, 3]) == 2


class TestDBLPWorkload:
    @pytest.fixture(scope="class")
    def tree(self):
        return dblp.generate_tree(num_publications=2000, seed=1)

    def test_tree_shape(self, tree):
        counts = tree.tag_counts()
        assert counts["dblp"] == 1
        assert counts["article"] > counts["proceedings"]
        assert counts["author"] > 1000
        assert tree.height() >= 2  # cite/label nesting

    def test_all_join_tags_present(self, tree):
        counts = tree.tag_counts()
        for join in dblp.DBLP_JOINS:
            assert counts.get(join.anc_tag, 0) > 0, join.name
            assert counts.get(join.desc_tag, 0) > 0, join.name

    def test_join_cardinality_shapes(self, tree):
        binarize(tree)
        counts = {}
        for join in dblp.DBLP_JOINS:
            a = select_by_tag(tree, join.anc_tag)
            d = select_by_tag(tree, join.desc_tag)
            counts[join.name] = (len(a), len(d), len(brute_force_join(a, d)))
        # D2/D3-style: tiny descendant sets under a huge ancestor set
        assert counts["D2"][1] < counts["D4"][1]
        assert counts["D3"][1] <= counts["D2"][1]
        # every inproceedings has exactly one booktitle (1:1 per ancestor)
        assert counts["D7"][2] == counts["D7"][0]
        # every phdthesis school belongs to exactly one phdthesis
        assert counts["D8"][2] == counts["D8"][1]
        # partial joins: some descendants match no ancestor (like the
        # paper's D5/D6/D10 where #results < |D|)
        assert counts["D5"][2] < counts["D5"][1]
        assert counts["D6"][2] < counts["D6"][1]

    def test_deterministic(self):
        a = dblp.generate_tree(500, seed=9)
        b = dblp.generate_tree(500, seed=9)
        assert a.tags == b.tags and a.parents == b.parents


class TestXMarkWorkload:
    @pytest.fixture(scope="class")
    def tree(self):
        return xmark.generate_tree(scale=0.2, seed=1)

    def test_tree_shape(self, tree):
        counts = tree.tag_counts()
        assert counts["site"] == 1
        assert counts["people"] == 1
        assert counts["item"] > 100
        assert counts["person"] > 100
        assert counts.get("parlist", 0) > 0  # recursive structure exists
        assert tree.height() >= 6

    def test_b1_has_single_result(self, tree):
        binarize(tree)
        items = select_by_tag(tree, "item")
        sponsors = select_by_tag(tree, "sponsor")
        assert len(sponsors) == 1
        assert len(brute_force_join(items, sponsors)) == 1

    def test_b3_single_ancestor(self, tree):
        binarize(tree)
        people = select_by_tag(tree, "people")
        interests = select_by_tag(tree, "interest")
        assert len(people) == 1
        assert len(brute_force_join(people, interests)) == len(interests)

    def test_deep_descendants_multi_height(self, tree):
        binarize(tree)
        texts = select_by_tag(tree, "text")
        heights = {pt.height_of(c) for c in texts}
        assert len(heights) >= 3  # recursion spreads text over many heights

    def test_all_join_tags_present(self, tree):
        counts = tree.tag_counts()
        for join in xmark.XMARK_JOINS:
            assert counts.get(join.anc_tag, 0) > 0, join.name
            assert counts.get(join.desc_tag, 0) > 0, join.name

    def test_nested_ancestor_join_b9(self, tree):
        """parlist can contain parlist: the B9 ancestor set is nested."""
        binarize(tree)
        parlists = select_by_tag(tree, "parlist")
        nested = brute_force_join(parlists, parlists)
        assert nested  # at least one parlist inside another


class TestUpdateWorkload:
    """The update-heavy storm generator driving the incremental pipeline."""

    SPEC = None  # built lazily so module import stays cheap

    @pytest.fixture(scope="class")
    def results(self):
        from repro.core.codec import available_codecs, get_codec
        from repro.workloads.updates import (
            UpdateWorkloadSpec,
            run_update_workload,
        )

        spec = UpdateWorkloadSpec(nodes=80, updates=150, seed=5)
        return {
            name: run_update_workload(spec, get_codec(name))
            for name in available_codecs()
        }

    def test_covers_both_codecs(self, results):
        assert set(results) == {"pbitree", "nested-intervals"}

    def test_pbitree_pays_relabels_nested_intervals_never(self, results):
        assert results["pbitree"].stats["relabelled_nodes"] > 0
        assert results["nested-intervals"].stats["relabelled_nodes"] == 0
        assert results["nested-intervals"].relabelled_per_insert == 0.0

    def test_log_records_cover_every_operation(self, results):
        for result in results.values():
            stats = result.stats
            applied = stats["inserts"] + stats["deletes"]
            # relabels/growth log extra per-tag records on top
            assert result.log_records_applied >= applied - result.skipped_inserts

    def test_deterministic_given_seed(self):
        from repro.core.codec import get_codec
        from repro.workloads.updates import (
            UpdateWorkloadSpec,
            run_update_workload,
        )

        spec = UpdateWorkloadSpec(nodes=60, updates=100, seed=9)
        first = run_update_workload(spec, get_codec("pbitree"))
        second = run_update_workload(spec, get_codec("pbitree"))
        assert first.stats == second.stats
        assert first.log_records_applied == second.log_records_applied

    def test_as_metrics_is_flat_and_codec_scoped(self, results):
        metrics = results["pbitree"].as_metrics()
        assert all(key.startswith("updates.pbitree.") for key in metrics)
        assert all(isinstance(value, float) for value in metrics.values())
        assert metrics["updates.pbitree.operations"] == 150.0
