"""Tests for heap files and element sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager
from repro.storage.elementset import ElementSet, SortOrder
from repro.storage.heapfile import HeapFile
from repro.storage.record import CODE, PAIR


def make_env(frames=8, page_size=128):
    disk = DiskManager(page_size=page_size)
    return disk, BufferManager(disk, frames)


class TestHeapFile:
    @given(st.lists(st.integers(0, 2**63), max_size=500))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, values):
        _disk, bufmgr = make_env()
        heap = HeapFile.from_records(bufmgr, CODE, [(v,) for v in values])
        assert [r[0] for r in heap.scan()] == values
        assert len(heap) == len(values)

    def test_page_count(self):
        _disk, bufmgr = make_env(page_size=128)
        capacity = (128 - 8) // 8  # 15 records/page
        heap = HeapFile.from_records(bufmgr, CODE, [(i,) for i in range(31)])
        assert heap.capacity == capacity
        assert heap.num_pages == 3  # 15 + 15 + 1

    def test_read_page(self):
        _disk, bufmgr = make_env()
        heap = HeapFile.from_records(bufmgr, PAIR, [(i, i * 2) for i in range(40)])
        first = heap.read_page(0)
        assert first[0] == (0, 0)
        assert heap.read_page(heap.num_pages - 1)[-1] == (39, 78)

    def test_writer_context_manager(self):
        _disk, bufmgr = make_env()
        heap = HeapFile(bufmgr, CODE)
        with heap.open_writer() as writer:
            writer.append((1,))
            writer.append((2,))
        assert [r[0] for r in heap.scan()] == [1, 2]

    def test_append_after_close_rejected(self):
        _disk, bufmgr = make_env()
        heap = HeapFile(bufmgr, CODE)
        writer = heap.open_writer()
        writer.close()
        with pytest.raises(ValueError):
            writer.append((1,))

    def test_writer_leaves_no_pins(self):
        _disk, bufmgr = make_env()
        heap = HeapFile(bufmgr, CODE)
        heap.append_all([(i,) for i in range(100)])
        assert bufmgr.num_pinned == 0

    def test_destroy_releases_pages(self):
        disk, bufmgr = make_env()
        heap = HeapFile.from_records(bufmgr, CODE, [(i,) for i in range(100)])
        pages = heap.num_pages
        assert disk.num_allocated == pages
        heap.destroy()
        assert disk.num_allocated == 0
        assert heap.num_pages == 0

    def test_scan_faults_pages_once_per_scan(self):
        disk, bufmgr = make_env(frames=2, page_size=128)
        heap = HeapFile.from_records(bufmgr, CODE, [(i,) for i in range(100)])
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()
        list(heap.scan())
        assert disk.stats.reads == heap.num_pages

    def test_empty_scan(self):
        _disk, bufmgr = make_env()
        heap = HeapFile(bufmgr, CODE)
        assert list(heap.scan()) == []
        assert heap.num_pages == 0


class TestElementSet:
    def test_from_codes_and_heights_metadata(self):
        _disk, bufmgr = make_env()
        codes = [4, 12, 20, 6]
        elements = ElementSet.from_codes(bufmgr, codes, tree_height=5, name="s")
        assert elements.to_list() == codes
        assert elements.known_heights == {pt.height_of(c) for c in codes}
        assert elements.heights() == {1, 2}

    def test_heights_scan_fallback(self):
        _disk, bufmgr = make_env()
        elements = ElementSet.from_codes(bufmgr, [4, 6], 5)
        elements.known_heights = None
        assert elements.heights() == {1, 2}

    def test_from_tree_tag(self):
        from repro.core.binarize import binarize
        from repro.datatree.builder import tree_from_spec

        tree = tree_from_spec(("a", [("b", []), ("b", []), ("c", [])]))
        encoding = binarize(tree)
        _disk, bufmgr = make_env()
        b_set = ElementSet.from_tree_tag(
            bufmgr, tree, "b", encoding.tree_height
        )
        assert len(b_set) == 2
        assert b_set.sorted_by is SortOrder.NONE
        assert b_set.name == "//b"

    def test_sorted_copy(self):
        _disk, bufmgr = make_env()
        codes = [20, 4, 16, 6, 1]
        elements = ElementSet.from_codes(bufmgr, codes, 5)
        by_start = elements.sorted_copy(SortOrder.START)
        assert by_start.to_list() == sorted(codes, key=pt.doc_order_key)
        assert by_start.sorted_by == SortOrder.START
        by_code = elements.sorted_copy(SortOrder.CODE)
        assert by_code.to_list() == sorted(codes)

    def test_scan_pages_shape(self):
        _disk, bufmgr = make_env(page_size=128)
        elements = ElementSet.from_codes(bufmgr, range(1, 32), 10)
        pages = list(elements.scan_pages())
        assert sum(len(p) for p in pages) == 31
        assert len(pages) == elements.num_pages

    def test_repr_mentions_name(self):
        _disk, bufmgr = make_env()
        elements = ElementSet.from_codes(bufmgr, [1], 3, name="things")
        assert "things" in repr(elements)
