"""Tests for the disk-based B+-tree."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.bptree import BPlusTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager


def make_env(frames=32, page_size=128):
    disk = DiskManager(page_size=page_size)
    return disk, BufferManager(disk, frames)


class TestBulkLoad:
    @given(st.lists(st.integers(0, 10**6), max_size=600), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_scan_matches_input(self, keys, _seed):
        _disk, bufmgr = make_env()
        entries = sorted((k, i) for i, k in enumerate(keys))
        tree = BPlusTree.bulk_load(bufmgr, entries)
        assert list(tree.scan_all()) == entries
        assert len(tree) == len(entries)

    def test_unsorted_input_rejected(self):
        _disk, bufmgr = make_env()
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(bufmgr, [(5, 0), (1, 1)])

    def test_empty(self):
        _disk, bufmgr = make_env()
        tree = BPlusTree.bulk_load(bufmgr, [])
        assert list(tree.scan_all()) == []
        assert tree.search(4) == []
        assert tree.first_geq(0) is None

    def test_height_grows_logarithmically(self):
        _disk, bufmgr = make_env(page_size=128)  # 7 leaf entries/page
        tree = BPlusTree.bulk_load(bufmgr, [(i, i) for i in range(1000)])
        assert 3 <= tree.height <= 5

    def test_fill_factor(self):
        _disk, bufmgr = make_env()
        full = BPlusTree.bulk_load(bufmgr, [(i, i) for i in range(500)])
        half = BPlusTree.bulk_load(
            bufmgr, [(i, i) for i in range(500)], fill_factor=0.5
        )
        assert half.num_nodes > full.num_nodes

    def test_bad_fill_factor(self):
        _disk, bufmgr = make_env()
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(bufmgr, [], fill_factor=0.0)


class TestInsert:
    @given(
        st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10**6)), max_size=400)
    )
    @settings(max_examples=20, deadline=None)
    def test_insert_matches_multiset(self, items):
        _disk, bufmgr = make_env()
        tree = BPlusTree(bufmgr)
        for key, value in items:
            tree.insert(key, value)
        assert Counter(tree.scan_all()) == Counter(items)
        assert sorted(k for k, _v in tree.scan_all()) == sorted(
            k for k, _v in items
        )

    def test_interleaved_insert_and_search(self):
        _disk, bufmgr = make_env()
        tree = BPlusTree(bufmgr)
        for i in range(300):
            tree.insert(i * 7 % 100, i)
            assert i in [v for _k, v in tree.range_scan(0, 10**9)]


class TestSearch:
    def entries(self):
        return [(k, k * 10) for k in range(0, 200, 2)]  # even keys only

    def test_point_search(self):
        _disk, bufmgr = make_env()
        tree = BPlusTree.bulk_load(bufmgr, self.entries())
        assert tree.search(40) == [400]
        assert tree.search(41) == []

    def test_range_inclusive_exclusive(self):
        _disk, bufmgr = make_env()
        tree = BPlusTree.bulk_load(bufmgr, self.entries())
        assert [k for k, _ in tree.range_scan(10, 20)] == [10, 12, 14, 16, 18, 20]
        assert [k for k, _ in tree.range_scan(10, 20, include_lo=False)] == [
            12, 14, 16, 18, 20
        ]
        assert [k for k, _ in tree.range_scan(10, 20, include_hi=False)] == [
            10, 12, 14, 16, 18
        ]

    def test_range_outside_key_space(self):
        _disk, bufmgr = make_env()
        tree = BPlusTree.bulk_load(bufmgr, self.entries())
        assert list(tree.range_scan(1000, 2000)) == []

    def test_first_geq(self):
        _disk, bufmgr = make_env()
        tree = BPlusTree.bulk_load(bufmgr, self.entries())
        assert tree.first_geq(0) == (0, 0)
        assert tree.first_geq(41) == (42, 420)
        assert tree.first_geq(199) is None

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=400))
    @settings(max_examples=20, deadline=None)
    def test_duplicates_across_leaf_boundaries(self, keys):
        """Regression: bisect_left descent must find leading duplicates."""
        _disk, bufmgr = make_env(page_size=128)
        entries = sorted((k, i) for i, k in enumerate(keys))
        tree = BPlusTree.bulk_load(bufmgr, entries)
        for key in set(keys):
            want = [(k, v) for k, v in entries if k == key]
            assert list(tree.range_scan(key, key)) == want


class TestIOBehaviour:
    def test_probe_cost_is_height(self):
        disk, bufmgr = make_env(frames=4, page_size=128)
        tree = BPlusTree.bulk_load(bufmgr, [(i, i) for i in range(2000)])
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()
        tree.search(999)
        assert disk.stats.reads <= tree.height + 1

    def test_page_size_too_small_rejected(self):
        disk = DiskManager(page_size=64)
        bufmgr = BufferManager(disk, 4)
        # 64-byte pages hold 3 leaf entries: fine
        BPlusTree(bufmgr)
