"""Differential suite for the parallel execution layer.

The contract of ``repro.parallel`` is *exact equivalence*: a run with
``workers > 1`` must produce the identical sorted pair set AND the
identical page-I/O accounting as the serial run, because the parent
performs every storage access in serial order and ships only pure-CPU
kernels to the pool.  These tests enforce that bit-for-bit — pairs,
``prep_io``/``join_io`` snapshots, buffer hits/misses and false-hit
counts — over synthetic and XMark workloads, with and without fault
injection, plus unit coverage of the pool/chunking/payload machinery.
"""

import os

import pytest

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    FaultConfig,
    FaultInjector,
    JoinSink,
    MultiHeightJoin,
    MultiHeightRollupJoin,
    PermanentIOError,
    RetryPolicy,
    StorageFault,
    TransientIOError,
    VerticalPartitionJoin,
    binarize,
)
from repro.datatree.paths import select_by_tag
from repro.experiments.harness import run_lineup
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.parallel import (
    PARALLEL_MODE_ENV,
    WorkerPool,
    fault_from_payload,
    fault_to_payload,
    split_chunks,
)
from repro.workloads.synthetic import generate, spec_by_name
from repro.workloads.xmark import generate_tree

#: chaos seed rotates in CI like the fault-injection suite's
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: (name, factory) — factory(workers, mode) builds the operator
PARALLEL_ALGORITHMS = [
    (
        "VPJ",
        lambda w, m: VerticalPartitionJoin(workers=w, parallel_mode=m),
    ),
    (
        "MHCJ+Rollup",
        lambda w, m: MultiHeightRollupJoin(workers=w, parallel_mode=m),
    ),
    (
        "MHCJ",
        lambda w, m: MultiHeightJoin(workers=w, parallel_mode=m),
    ),
]
ALGORITHM_IDS = [name for name, _ in PARALLEL_ALGORITHMS]


def dataset(name="MLLL", large=2500, small=400, seed=7):
    spec = spec_by_name(name, large=large, small=small)
    return generate(spec, seed=seed)


def run_cold(
    algorithm,
    a_codes,
    d_codes,
    tree_height,
    frames=10,
    faults=None,
    retry=None,
    tracer=None,
):
    """Fresh cold bench, collect pairs; returns (pairs, report, bufmgr)."""
    disk = DiskManager(page_size=128, checksums=faults is not None, faults=faults)
    bufmgr = BufferManager(disk, frames, retry=retry)
    a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
    d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
    bufmgr.flush_all()
    bufmgr.evict_all()
    disk.stats.reset()
    sink = JoinSink("collect")
    report = algorithm.run(a_set, d_set, sink, tracer=tracer)
    return sorted(sink.pairs), report, bufmgr


def assert_equivalent(serial, parallel):
    """The whole contract: identical pairs AND identical accounting."""
    s_pairs, s_report, s_buf = serial
    p_pairs, p_report, p_buf = parallel
    assert p_pairs == s_pairs
    assert p_report.prep_io == s_report.prep_io
    assert p_report.join_io == s_report.join_io
    assert p_report.false_hits == s_report.false_hits
    assert p_report.result_count == s_report.result_count
    assert (p_buf.hits, p_buf.misses) == (s_buf.hits, s_buf.misses)


# ----------------------------------------------------------------------
# unit coverage: chunking, pool, sink absorption, fault payloads
# ----------------------------------------------------------------------
class TestSplitChunks:
    def test_concatenation_preserves_order(self):
        items = list(range(17))
        for parts in (1, 2, 3, 5, 17, 40):
            chunks = split_chunks(items, parts)
            assert [x for chunk in chunks for x in chunk] == items
            assert all(chunk for chunk in chunks)  # no empty chunks

    def test_near_even(self):
        chunks = split_chunks(list(range(10)), 3)
        sizes = sorted(len(chunk) for chunk in chunks)
        assert max(sizes) - min(sizes) <= 1

    def test_empty_input(self):
        assert split_chunks([], 4) == []

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_chunks([1], 0)


class TestWorkerPool:
    def test_single_worker_is_inline(self):
        pool = WorkerPool(1)
        assert pool.mode == "inline"
        future = pool.submit(lambda task: task * 2, 21)
        assert pool.resolve(future, lambda task: task * 2, 21) == 42
        pool.close()

    def test_env_override_forces_inline(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV, "inline")
        pool = WorkerPool(4)
        assert pool.mode == "inline"
        pool.close()

    def test_inline_exception_propagates(self):
        pool = WorkerPool(2, mode="inline")

        def boom(task):
            raise RuntimeError(f"task {task}")

        future = pool.submit(boom, 3)
        with pytest.raises(RuntimeError, match="task 3"):
            pool.resolve(future, boom, 3)
        pool.close()


class TestSinkAbsorb:
    def test_counting_sink_ignores_missing_pairs(self):
        sink = JoinSink("count")
        assert not sink.collects
        sink.absorb(5, None)
        assert sink.count == 5

    def test_collecting_sink_extends_pairs(self):
        sink = JoinSink("collect")
        sink.absorb(2, [(1, 2), (3, 4)])
        assert sink.count == 2 and sink.pairs == [(1, 2), (3, 4)]

    def test_collecting_sink_rejects_count_only_result(self):
        sink = JoinSink("collect")
        with pytest.raises(ValueError):
            sink.absorb(2, None)


class TestFaultPayloads:
    @pytest.mark.parametrize("cls", [TransientIOError, PermanentIOError])
    def test_round_trip_preserves_type_and_annotations(self, cls):
        fault = cls("injected read error", page_id=17, operation="read")
        fault.add_context("heap file 'A' page 3/9")
        fault.algorithm = "VPJ"
        rebuilt = fault_from_payload(fault_to_payload(fault))
        assert type(rebuilt) is cls
        assert rebuilt.page_id == 17 and rebuilt.operation == "read"
        assert rebuilt.algorithm == "VPJ"
        assert "heap file 'A' page 3/9" in str(rebuilt)

    def test_unknown_type_degrades_to_base_fault(self):
        payload = fault_to_payload(
            TransientIOError("x", page_id=1, operation="read")
        )
        payload["type"] = "SomethingNew"
        assert type(fault_from_payload(payload)) is StorageFault


# ----------------------------------------------------------------------
# the tentpole contract: parallel == serial, pairs and accounting
# ----------------------------------------------------------------------
class TestDifferentialSynthetic:
    @pytest.mark.parametrize("name,factory", PARALLEL_ALGORITHMS, ids=ALGORITHM_IDS)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_multi_height_workload(self, name, factory, workers):
        data = dataset("MLLL")
        serial = run_cold(
            factory(1, None), data.a_codes, data.d_codes, data.tree_height
        )
        parallel = run_cold(
            factory(workers, "inline"),
            data.a_codes, data.d_codes, data.tree_height,
        )
        assert_equivalent(serial, parallel)

    @pytest.mark.parametrize("name,factory", PARALLEL_ALGORITHMS, ids=ALGORITHM_IDS)
    def test_tiny_buffer_forces_partitioning(self, name, factory):
        """Small pool → VPJ recursion / MHCJ grace branches exercised."""
        data = dataset("MSSL", large=1800, small=350, seed=11)
        serial = run_cold(
            factory(1, None), data.a_codes, data.d_codes, data.tree_height,
            frames=6,
        )
        parallel = run_cold(
            factory(3, "inline"), data.a_codes, data.d_codes, data.tree_height,
            frames=6,
        )
        assert_equivalent(serial, parallel)

    @pytest.mark.parametrize("name,factory", PARALLEL_ALGORITHMS[:2], ids=ALGORITHM_IDS[:2])
    def test_process_pool_smoke(self, name, factory):
        """Real process pool (not inline) reaches the same answer."""
        data = dataset("MLLL", large=1200, small=250, seed=5)
        serial = run_cold(
            factory(1, None), data.a_codes, data.d_codes, data.tree_height
        )
        parallel = run_cold(
            factory(2, "process"), data.a_codes, data.d_codes, data.tree_height
        )
        assert_equivalent(serial, parallel)


class TestDifferentialXMark:
    def joins(self):
        tree = generate_tree(scale=0.45, seed=CHAOS_SEED)
        encoding = binarize(tree)
        # B8: description//text — multi-height on both sides
        a_codes = select_by_tag(tree, "description")
        d_codes = select_by_tag(tree, "text")
        return a_codes, d_codes, encoding.tree_height

    @pytest.mark.parametrize("name,factory", PARALLEL_ALGORITHMS, ids=ALGORITHM_IDS)
    def test_description_text_join(self, name, factory):
        a_codes, d_codes, tree_height = self.joins()
        serial = run_cold(factory(1, None), a_codes, d_codes, tree_height)
        parallel = run_cold(factory(4, "inline"), a_codes, d_codes, tree_height)
        assert_equivalent(serial, parallel)


class TestDifferentialUnderFaults:
    """Transient chaos: the fault schedule replays identically because
    the parallel parent issues the exact same page-operation sequence."""

    FAULTS = dict(read_error_rate=0.04, write_error_rate=0.02,
                  torn_page_rate=0.02)

    @pytest.mark.parametrize("name,factory", PARALLEL_ALGORITHMS[:2], ids=ALGORITHM_IDS[:2])
    def test_transient_schedule_replays(self, name, factory):
        data = dataset("MLLL", large=1500, small=300, seed=CHAOS_SEED + 3)
        retry = RetryPolicy(max_attempts=6)
        serial = run_cold(
            factory(1, None), data.a_codes, data.d_codes, data.tree_height,
            faults=FaultInjector(FaultConfig(seed=CHAOS_SEED, **self.FAULTS)),
            retry=retry,
        )
        parallel = run_cold(
            factory(3, "inline"), data.a_codes, data.d_codes, data.tree_height,
            faults=FaultInjector(FaultConfig(seed=CHAOS_SEED, **self.FAULTS)),
            retry=retry,
        )
        assert_equivalent(serial, parallel)
        # the schedule really fired: retries are visible in both
        assert parallel[1].total_io.retries == serial[1].total_io.retries


# ----------------------------------------------------------------------
# tracing: fanout span carries worker spans, root I/O delta unchanged
# ----------------------------------------------------------------------
class TestParallelTracing:
    def test_fanout_span_and_exact_root_io(self):
        data = dataset("MLLL", large=1500, small=300, seed=9)
        serial_tracer = Tracer()
        serial = run_cold(
            VerticalPartitionJoin(), data.a_codes, data.d_codes,
            data.tree_height, tracer=serial_tracer,
        )
        parallel_tracer = Tracer()
        parallel = run_cold(
            VerticalPartitionJoin(workers=2, parallel_mode="inline"),
            data.a_codes, data.d_codes, data.tree_height,
            tracer=parallel_tracer,
        )
        assert_equivalent(serial, parallel)
        s_root = serial_tracer.roots[-1]
        p_root = parallel_tracer.roots[-1]
        assert p_root.io == s_root.io
        fanout = p_root.find("parallel.fanout")
        assert fanout is not None
        # the fanout span opens after all storage work: no I/O on it
        assert fanout.io.total == 0
        assert fanout.children, "worker spans must be attached"
        assert all("task" in child.name for child in fanout.children)


# ----------------------------------------------------------------------
# lineup-scope parallelism
# ----------------------------------------------------------------------
class TestParallelLineup:
    def lineups(self, **kwargs):
        data = dataset("MSSL", large=1500, small=300, seed=4)
        return run_lineup(
            "MSSL", data.a_codes, data.d_codes, data.tree_height,
            buffer_pages=20, page_size=256, single_height=False, **kwargs,
        )

    def test_matches_serial_reports(self):
        serial = self.lineups()
        parallel = self.lineups(workers=2, parallel_mode="inline")
        assert parallel.result_count == serial.result_count
        for s, p in zip(serial.results, parallel.results):
            assert p.name == s.name
            assert p.report.result_count == s.report.result_count
            assert p.report.total_io.reads == s.report.total_io.reads
            assert p.report.total_io.writes == s.report.total_io.writes
            assert (p.report.buffer_hits, p.report.buffer_misses) == (
                s.report.buffer_hits, s.report.buffer_misses
            )

    def test_process_pool_smoke(self):
        serial = self.lineups()
        parallel = self.lineups(workers=2, parallel_mode="process")
        assert parallel.result_count == serial.result_count

    def test_live_injector_rejected(self):
        with pytest.raises(ValueError, match="FaultConfig"):
            self.lineups(
                workers=2, parallel_mode="inline",
                faults=FaultInjector(FaultConfig(seed=1)),
            )

    def test_fault_config_accepted_and_absorbed(self):
        config = FaultConfig(seed=CHAOS_SEED, read_error_rate=0.02)
        serial = self.lineups(faults=config, retry=RetryPolicy(max_attempts=6))
        parallel = self.lineups(
            workers=2, parallel_mode="inline",
            faults=config, retry=RetryPolicy(max_attempts=6),
        )
        assert parallel.result_count == serial.result_count

    def test_permanent_escalation_raises_typed_fault(self):
        """Workers ship faults back as payloads; the parent re-raises a
        typed StorageFault, never a pickling error or a silent zero."""
        with pytest.raises(StorageFault):
            self.lineups(
                workers=2, parallel_mode="inline",
                faults=FaultConfig(seed=CHAOS_SEED, read_error_rate=1.0),
                retry=RetryPolicy(max_attempts=1),
            )

    def test_metrics_and_traces_merged(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        parallel = self.lineups(
            workers=2, parallel_mode="inline",
            tracer=tracer, metrics=metrics,
        )
        assert parallel.results and parallel.results[0].report.trace is not None
        fanout_roots = [r for r in tracer.roots if r.name == "parallel.fanout"]
        assert fanout_roots and fanout_roots[-1].children
        # merged gauges are sums over the workers' pools, with the hit
        # rate recomputed from the summed counts — not averaged
        hits = metrics.gauge("buffer.hits").value
        misses = metrics.gauge("buffer.misses").value
        assert hits > 0 and misses > 0
        assert metrics.gauge("buffer.hit_rate").value == pytest.approx(
            hits / (hits + misses)
        )
