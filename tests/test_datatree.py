"""Tests for the DataTree model and builders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatree.builder import random_tree, tree_from_spec
from repro.datatree.node import DataTree


class TestConstruction:
    def test_single_root(self):
        tree = DataTree()
        root = tree.add_root("doc")
        assert root == 0
        assert len(tree) == 1
        assert tree.root == 0
        assert tree.is_leaf(root)

    def test_second_root_rejected(self):
        tree = DataTree()
        tree.add_root("doc")
        with pytest.raises(ValueError):
            tree.add_root("doc2")

    def test_child_of_missing_node_rejected(self):
        tree = DataTree()
        tree.add_root("doc")
        with pytest.raises(IndexError):
            tree.add_child(7, "x")

    def test_empty_tree_has_no_root(self):
        with pytest.raises(ValueError):
            DataTree().root

    def test_children_keep_document_order(self):
        tree = DataTree()
        root = tree.add_root("r")
        kids = [tree.add_child(root, f"c{i}") for i in range(5)]
        assert tree.children[root] == kids


class TestStructureQueries:
    def tree(self):
        return tree_from_spec(
            ("a", [("b", [("d", []), ("e", [])]), ("c", [("f", [])])])
        )

    def test_depth(self):
        tree = self.tree()
        assert tree.depth_of(0) == 0
        assert tree.depth_of(1) == 1
        assert tree.depth_of(2) == 2

    def test_is_ancestor(self):
        tree = self.tree()
        assert tree.is_ancestor(0, 2)       # a above d
        assert tree.is_ancestor(1, 3)       # b above e
        assert not tree.is_ancestor(2, 1)   # d not above b
        assert not tree.is_ancestor(1, 1)   # proper only

    def test_height(self):
        assert self.tree().height() == 2
        single = DataTree()
        single.add_root("x")
        assert single.height() == 0

    def test_max_fanout(self):
        assert self.tree().max_fanout() == 2

    def test_tag_counts(self):
        tree = tree_from_spec(("a", [("b", []), ("b", []), ("c", [])]))
        assert tree.tag_counts() == {"a": 1, "b": 2, "c": 1}


class TestTraversal:
    def test_preorder(self):
        tree = tree_from_spec(("a", [("b", [("d", [])]), ("c", [])]))
        tags = [tree.tags[n] for n in tree.iter_preorder()]
        assert tags == ["a", "b", "d", "c"]

    def test_preorder_empty(self):
        assert list(DataTree().iter_preorder()) == []

    def test_iter_by_tag(self):
        tree = tree_from_spec(("a", [("b", []), ("a", [("b", [])])]))
        assert [tree.tags[n] for n in tree.iter_by_tag("b")] == ["b", "b"]
        assert len(list(tree.iter_by_tag("a"))) == 2
        assert list(tree.iter_by_tag("zzz")) == []

    def test_descendants_of(self):
        tree = tree_from_spec(("a", [("b", [("d", [])]), ("c", [])]))
        descendants = [tree.tags[n] for n in tree.descendants_of(0)]
        assert descendants == ["b", "d", "c"]
        assert list(tree.descendants_of(2)) == []


class TestNodeView:
    def test_view_navigation(self):
        tree = tree_from_spec(("a", "hello", [("b", [])]))
        view = tree.node(0)
        assert view.tag == "a"
        assert view.text == "hello"
        assert view.parent is None
        assert [child.tag for child in view.children] == ["b"]
        assert tree.node(1).parent.id == 0

    def test_view_rejects_bad_id(self):
        tree = tree_from_spec(("a", []))
        with pytest.raises(IndexError):
            tree.node(3)


class TestSpecBuilder:
    def test_plain_string(self):
        tree = tree_from_spec("solo")
        assert len(tree) == 1 and tree.tags[0] == "solo"

    def test_text_form(self):
        tree = tree_from_spec(("t", "payload"))
        assert tree.texts[0] == "payload"

    def test_text_and_children(self):
        tree = tree_from_spec(("t", "x", [("c", [])]))
        assert tree.texts[0] == "x" and len(tree) == 2

    def test_bad_spec_rejected(self):
        with pytest.raises(TypeError):
            tree_from_spec(42)
        with pytest.raises(TypeError):
            tree_from_spec(("a", 42))


class TestRandomTree:
    @given(st.integers(1, 500), st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_size_and_connectivity(self, n, seed):
        tree = random_tree(n, seed=seed)
        assert len(tree) == n
        for node in range(1, n):
            assert 0 <= tree.parents[node] < node  # parents precede children

    @given(st.integers(2, 300), st.integers(2, 6), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_fanout_bound(self, n, fanout, seed):
        tree = random_tree(n, max_fanout=fanout, seed=seed)
        assert tree.max_fanout() <= fanout

    def test_deterministic(self):
        a = random_tree(100, seed=5)
        b = random_tree(100, seed=5)
        assert a.parents == b.parents and a.tags == b.tags

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            random_tree(0)
