"""Tests for the codec interface and the nested-intervals backend."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import pbitree as pt
from repro.core.codec import (
    NestedIntervalCodec,
    NestedIntervalEncoding,
    PBiTreeCodec,
    available_codecs,
    get_codec,
)
from repro.core.update import CodeSpaceError
from repro.datatree.builder import random_tree, tree_from_spec

ALL_CODECS = [PBiTreeCodec(), NestedIntervalCodec()]


class TestRegistry:
    def test_both_backends_registered(self):
        assert available_codecs() == ["nested-intervals", "pbitree"]

    def test_lookup_roundtrip(self):
        for name in available_codecs():
            assert get_codec(name).name == name

    def test_unknown_codec_names_choices(self):
        with pytest.raises(KeyError, match="nested-intervals"):
            get_codec("morton")


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestCodecContract:
    """Both backends satisfy the same encode/update contract."""

    def test_encode_validates(self, codec):
        tree = random_tree(120, seed=5)
        encoding = codec.encode(tree)
        encoding.validate()
        assert all(code >= 1 for code in tree.codes)

    def test_ancestor_relation_matches_structure(self, codec):
        tree = random_tree(90, seed=11)
        codec.encode(tree)
        rng = random.Random(11)
        for _ in range(300):
            u = rng.randrange(len(tree))
            v = rng.randrange(len(tree))
            assert tree.is_ancestor(u, v) == pt.is_ancestor(
                tree.codes[u], tree.codes[v]
            )

    def test_update_storm_preserves_contract(self, codec):
        tree = random_tree(40, seed=7)
        encoding = codec.encode(tree)
        rng = random.Random(7)
        for _ in range(150):
            live = [n for n in range(len(tree)) if encoding.is_alive(n)]
            if rng.random() < 0.7 or len(live) < 3:
                encoding.insert_child(rng.choice(live), "n")
            else:
                non_root = [n for n in live if tree.parents[n] >= 0]
                if non_root:
                    encoding.delete_subtree(rng.choice(non_root))
        encoding.validate()
        live = [n for n in range(len(tree)) if encoding.is_alive(n)]
        for _ in range(300):
            u, v = rng.choice(live), rng.choice(live)
            assert tree.is_ancestor(u, v) == pt.is_ancestor(
                tree.codes[u], tree.codes[v]
            )

    def test_disallowed_growth_is_atomic(self, codec):
        tree = tree_from_spec(("root", [("leaf", [])]))
        encoding = codec.encode(tree, allow_growth=False)
        nodes_before = len(tree)
        parent = 1
        with pytest.raises(CodeSpaceError):
            for _ in range(64):
                parent = encoding.insert_child(parent, "deeper")
        assert encoding.stats.inserts == len(tree) - nodes_before
        encoding.validate()

    def test_events_replay_to_live_code_map(self, codec):
        tree = random_tree(30, seed=3)
        encoding = codec.encode(tree)
        shadow = {
            tree.codes[n]: n
            for n in range(len(tree))
            if encoding.is_alive(n)
        }

        def listener(event):
            if event.kind == "insert":
                assert event.new_code not in shadow
                shadow[event.new_code] = event.node
            elif event.kind == "relabel":
                for node, old_code, _new in event.moves:
                    assert shadow.pop(old_code) == node
                for node, _old, new_code in event.moves:
                    shadow[new_code] = node
            elif event.kind == "delete":
                assert shadow.pop(event.old_code) == event.node
            elif event.kind == "grow":
                shifted = {
                    pt.grown_code(code, event.delta): node
                    for code, node in shadow.items()
                }
                shadow.clear()
                shadow.update(shifted)
            else:  # pragma: no cover
                raise AssertionError(event.kind)

        encoding.listeners.append(listener)
        rng = random.Random(13)
        for _ in range(200):
            live = [n for n in range(len(tree)) if encoding.is_alive(n)]
            if rng.random() < 0.75 or len(live) < 3:
                encoding.insert_child(rng.choice(live), "n")
            else:
                non_root = [n for n in live if tree.parents[n] >= 0]
                if non_root:
                    encoding.delete_subtree(rng.choice(non_root))
        expected = {
            tree.codes[n]: n
            for n in range(len(tree))
            if encoding.is_alive(n)
        }
        assert shadow == expected


class TestNestedIntervalSpecifics:
    def test_paths_are_prefix_closed_on_ancestry(self):
        tree = random_tree(60, seed=2)
        encoding = NestedIntervalEncoding(tree)
        for node in range(len(tree)):
            parent = tree.parents[node]
            if parent < 0:
                continue
            path = encoding.path_of(node)
            parent_path = encoding.path_of(parent)
            shift = path.bit_length() - parent_path.bit_length()
            assert shift > 0
            assert path >> shift == parent_path

    def test_inserts_never_relabel_existing_nodes(self):
        """The codec-comparison headline: nested-interval inserts are
        relabel-free — only projection growth (a global shift) occurs."""
        tree = random_tree(40, seed=19)
        encoding = NestedIntervalEncoding(tree)
        paths_before = [encoding.path_of(n) for n in range(len(tree))]
        rng = random.Random(19)
        for _ in range(250):
            live = [n for n in range(len(tree)) if encoding.is_alive(n)]
            encoding.insert_child(rng.choice(live), "n")
        assert encoding.stats.relabelled_nodes == 0
        assert encoding.stats.local_relabels == 0
        # native labels of the original nodes never moved
        assert [
            encoding.path_of(n) for n in range(len(paths_before))
        ] == paths_before
        encoding.validate()

    def test_sibling_ordinals_are_never_reused(self):
        tree = tree_from_spec(("root", [("a", []), ("b", [])]))
        encoding = NestedIntervalEncoding(tree)
        encoding.delete_subtree(1)
        node = encoding.insert_child(0, "c")
        # the freed ordinal-0 path stays retired; the new child gets
        # ordinal 2 (paths grow, codes never collide with tombstones)
        assert encoding.path_of(node) != encoding.path_of(1)
        encoding.validate()

    def test_growth_shifts_projection_only(self):
        tree = tree_from_spec(("root", [("leaf", [])]))
        encoding = NestedIntervalEncoding(tree)
        node = 1
        growths_seen = 0
        for _ in range(6):
            codes_before = list(tree.codes)
            h_before = encoding.tree_height
            node = encoding.insert_child(node, "deeper")
            if encoding.tree_height > h_before:
                growths_seen += 1
                delta = encoding.tree_height - h_before
                assert tree.codes[:len(codes_before)] == [
                    pt.grown_code(code, delta) for code in codes_before
                ]
        assert growths_seen >= 1
        assert encoding.stats.tree_growths == growths_seen
        assert encoding.stats.relabelled_nodes == 0

    def test_root_path_is_sentinel(self):
        tree = tree_from_spec(("root", []))
        encoding = NestedIntervalEncoding(tree)
        assert encoding.path_of(0) == 1
        assert tree.codes[0] == pt.root_code(encoding.tree_height)

    @given(st.integers(0, 2000), st.integers(2, 50))
    @settings(max_examples=20, deadline=None)
    def test_projection_matches_structure_property(self, seed, size):
        tree = random_tree(size, seed=seed)
        NestedIntervalEncoding(tree)
        rng = random.Random(seed)
        for _ in range(100):
            u = rng.randrange(len(tree))
            v = rng.randrange(len(tree))
            assert tree.is_ancestor(u, v) == pt.is_ancestor(
                tree.codes[u], tree.codes[v]
            )


class TestCodecJoinInterop:
    """Every join algorithm runs unchanged on either backend."""

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_stacktree_join_matches_brute_force(self, codec):
        from repro import (
            BufferManager, DiskManager, ElementSet, JoinSink,
            StackTreeDescJoin, brute_force_join,
        )

        tree = random_tree(200, seed=23, tags=("a", "b", "c"))
        encoding = codec.encode(tree)
        rng = random.Random(23)
        for _ in range(100):
            live = [n for n in range(len(tree)) if encoding.is_alive(n)]
            encoding.insert_child(rng.choice(live), rng.choice("ab"))
        live = [n for n in range(len(tree)) if encoding.is_alive(n)]
        a_codes = [tree.codes[n] for n in live if tree.tags[n] == "a"]
        d_codes = [tree.codes[n] for n in live if tree.tags[n] == "b"]
        bufmgr = BufferManager(DiskManager(), 16)
        a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height)
        d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height)
        sink = JoinSink("collect")
        StackTreeDescJoin().run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted(brute_force_join(a_codes, d_codes))
