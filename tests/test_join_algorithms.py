"""Algorithm-specific behaviour: ordering, false hits, skipping,
partitioning mechanics — the properties the paper attributes to each
algorithm beyond bare correctness."""

import random

import pytest

from repro import (
    AncDesBPlusJoin,
    BufferManager,
    DiskManager,
    ElementSet,
    IndexNestedLoopJoin,
    JoinSink,
    MPMGJoin,
    MultiHeightJoin,
    MultiHeightRollupJoin,
    SingleHeightJoin,
    StackTreeAncJoin,
    StackTreeDescJoin,
    VerticalPartitionJoin,
    binarize,
    brute_force_join,
    random_tree,
)
from repro.core import pbitree as pt
from repro.join.mhcj import choose_rollup_height
from repro.join.shcj import single_height_of
from repro.workloads import synthetic as syn


def make_sets(a_codes, d_codes, tree_height, frames=8, page_size=128):
    disk = DiskManager(page_size=page_size)
    bufmgr = BufferManager(disk, frames)
    a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
    d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
    return disk, a_set, d_set


def encoded_random(n=400, seed=3, fanout=8):
    tree = random_tree(n, max_fanout=fanout, seed=seed)
    encoding = binarize(tree)
    return tree, encoding


class TestStackTreeOrdering:
    def inputs(self):
        tree, encoding = encoded_random(500, seed=9)
        rng = random.Random(1)
        a_codes = rng.sample(tree.codes, 200)
        d_codes = rng.sample(tree.codes, 200)
        return a_codes, d_codes, encoding.tree_height

    def test_desc_variant_outputs_descendant_order(self):
        a_codes, d_codes, tree_height = self.inputs()
        _disk, a_set, d_set = make_sets(a_codes, d_codes, tree_height)
        sink = JoinSink("collect")
        StackTreeDescJoin().run(a_set, d_set, sink)
        d_keys = [pt.doc_order_key(d) for _a, d in sink.pairs]
        assert d_keys == sorted(d_keys)

    def test_anc_variant_outputs_ancestor_order(self):
        a_codes, d_codes, tree_height = self.inputs()
        _disk, a_set, d_set = make_sets(a_codes, d_codes, tree_height)
        sink = JoinSink("collect")
        StackTreeAncJoin().run(a_set, d_set, sink)
        a_keys = [pt.doc_order_key(a) for a, _d in sink.pairs]
        assert a_keys == sorted(a_keys)

    def test_variants_agree(self):
        a_codes, d_codes, tree_height = self.inputs()
        _disk, a_set, d_set = make_sets(a_codes, d_codes, tree_height)
        desc_sink, anc_sink = JoinSink("collect"), JoinSink("collect")
        StackTreeDescJoin().run(a_set, d_set, desc_sink)
        StackTreeAncJoin().run(a_set, d_set, anc_sink)
        assert sorted(desc_sink.pairs) == sorted(anc_sink.pairs)

    def test_optimal_io_on_sorted_inputs(self):
        """Pre-sorted inputs: stack-tree reads each input page once."""
        a_codes, d_codes, tree_height = self.inputs()
        disk, a_set, d_set = make_sets(
            sorted(a_codes, key=pt.doc_order_key),
            sorted(d_codes, key=pt.doc_order_key),
            tree_height,
        )
        a_set.sorted_by = "start"
        d_set.sorted_by = "start"
        a_set.bufmgr.flush_all()
        a_set.bufmgr.evict_all()
        disk.stats.reset()
        report = StackTreeDescJoin().run(a_set, d_set, JoinSink("count"))
        assert report.prep_io.total == 0  # no on-the-fly sort
        assert report.join_io.reads == a_set.num_pages + d_set.num_pages


class TestSHCJ:
    def test_rejects_multi_height_set(self):
        tree, encoding = encoded_random()
        _disk, a_set, d_set = make_sets(
            tree.codes, tree.codes, encoding.tree_height
        )
        if len(a_set.heights()) > 1:
            with pytest.raises(ValueError):
                SingleHeightJoin().run(a_set, d_set, JoinSink("count"))

    def test_explicit_height_skips_discovery(self):
        spec = syn.spec_by_name("SSSH", large=2000, small=300)
        ds = syn.generate(spec, seed=4)
        _disk, a_set, d_set = make_sets(ds.a_codes, ds.d_codes, ds.tree_height)
        height = spec.a_heights[0]
        sink = JoinSink("collect")
        report = SingleHeightJoin(height=height).run(a_set, d_set, sink)
        assert report.result_count == ds.num_results
        assert report.false_hits == 0

    def test_single_height_of_helper(self):
        spec = syn.spec_by_name("SSSL", large=2000, small=200)
        ds = syn.generate(spec, seed=4)
        _disk, a_set, d_set = make_sets(ds.a_codes, ds.d_codes, ds.tree_height)
        assert single_height_of(a_set) == spec.a_heights[0]
        assert single_height_of(d_set) == spec.d_heights[0]

    def test_descendants_at_or_above_height_filtered(self):
        """F(d, h) for height(d) >= h is not an ancestor: must not match."""
        tree_height = 8
        anc = pt.g_code(0, 3, tree_height)     # height 4
        high = pt.f_ancestor(anc, 5)           # above the set's height
        sibling = pt.g_code(1, 3, tree_height)
        _disk, a_set, d_set = make_sets(
            [anc], [high, sibling, anc], tree_height
        )
        sink = JoinSink("collect")
        SingleHeightJoin(height=4).run(a_set, d_set, sink)
        assert sink.pairs == []


class TestMHCJ:
    def test_partition_count_equals_heights(self):
        tree, encoding = encoded_random(600, seed=5)
        rng = random.Random(0)
        a_codes = rng.sample(tree.codes, 300)
        _disk, a_set, d_set = make_sets(a_codes, tree.codes, encoding.tree_height)
        report = MultiHeightJoin().run(a_set, d_set, JoinSink("count"))
        assert report.partitions == len(a_set.heights())

    def test_more_partitions_costs_more_descendant_scans(self):
        """MHCJ re-reads D once per height class: cost grows with k."""
        spec = syn.spec_by_name("MLSL", large=4000, small=400)
        ds = syn.generate(spec, seed=2)
        disk, a_set, d_set = make_sets(
            ds.a_codes, ds.d_codes, ds.tree_height, frames=4
        )
        a_set.bufmgr.flush_all(); a_set.bufmgr.evict_all(); disk.stats.reset()
        plain = MultiHeightJoin().run(a_set, d_set, JoinSink("count"))
        a_set.bufmgr.flush_all(); a_set.bufmgr.evict_all(); disk.stats.reset()
        rolled = MultiHeightRollupJoin().run(a_set, d_set, JoinSink("count"))
        assert plain.partitions > rolled.partitions
        assert plain.total_pages > rolled.total_pages


class TestRollup:
    def test_false_hits_counted_and_filtered(self):
        spec = syn.spec_by_name("MSSH", large=3000, small=500)
        ds = syn.generate(spec, seed=3)
        _disk, a_set, d_set = make_sets(ds.a_codes, ds.d_codes, ds.tree_height)
        sink = JoinSink("collect")
        report = MultiHeightRollupJoin().run(a_set, d_set, sink)
        assert report.result_count == ds.num_results
        assert report.false_hits > 0  # rollup over 7 heights must misfire
        expected = sorted(brute_force_join(ds.a_codes, ds.d_codes))
        assert sorted(sink.pairs) == expected

    def test_single_height_input_has_no_false_hits(self):
        spec = syn.spec_by_name("SSSH", large=3000, small=400)
        ds = syn.generate(spec, seed=3)
        _disk, a_set, d_set = make_sets(ds.a_codes, ds.d_codes, ds.tree_height)
        report = MultiHeightRollupJoin().run(a_set, d_set, JoinSink("count"))
        assert report.false_hits == 0
        assert report.partitions == 1

    def test_strategy_choices(self):
        assert choose_rollup_height([1, 3, 7], "max") == 7
        assert choose_rollup_height([1, 3, 7], "min") == 1
        assert choose_rollup_height([1, 3, 7], "median") == 3
        with pytest.raises(ValueError):
            choose_rollup_height([], "max")
        with pytest.raises(ValueError):
            choose_rollup_height([1], "nope")

    def test_explicit_target_height(self):
        tree, encoding = encoded_random(300, seed=6)
        rng = random.Random(2)
        a_codes = rng.sample(tree.codes, 150)
        d_codes = rng.sample(tree.codes, 150)
        target = max(pt.height_of(c) for c in a_codes) + 1
        _disk, a_set, d_set = make_sets(a_codes, d_codes, encoding.tree_height)
        sink = JoinSink("collect")
        MultiHeightRollupJoin(target_height=target).run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted(brute_force_join(a_codes, d_codes))


class TestADBPlus:
    def test_skips_on_low_selectivity(self):
        """Sparse matches leave the stack empty often: skips must fire."""
        spec = syn.spec_by_name("SLLL", large=6000, small=600)
        ds = syn.generate(spec, seed=5)
        _disk, a_set, d_set = make_sets(
            ds.a_codes, ds.d_codes, ds.tree_height, frames=16
        )
        report = AncDesBPlusJoin().run(a_set, d_set, JoinSink("count"))
        assert "probes" in report.notes
        probes = sum(
            int(part.split("=")[1]) for part in report.notes.split()[2:]
        )
        assert probes > 0

    def test_prebuilt_indexes_skip_prep(self):
        from repro.join.inljn import build_start_index

        tree, encoding = encoded_random(300, seed=8)
        disk, a_set, d_set = make_sets(
            tree.codes[:150], tree.codes[150:], encoding.tree_height, frames=32
        )
        a_index = build_start_index(a_set, a_set.bufmgr)
        d_index = build_start_index(d_set, d_set.bufmgr)
        report = AncDesBPlusJoin(a_index=a_index, d_index=d_index).run(
            a_set, d_set, JoinSink("count")
        )
        assert report.prep_io.total == 0


class TestINLJN:
    def test_outer_side_heuristic(self):
        tree, encoding = encoded_random(400, seed=10)
        _disk, small, large = make_sets(
            tree.codes[:20], tree.codes, encoding.tree_height, frames=32
        )
        join = IndexNestedLoopJoin()
        assert join._outer_side(small, large) == "A"
        assert join._outer_side(large, small) == "D"

    @pytest.mark.parametrize("outer", ["A", "D"])
    def test_forced_outer_sides_agree(self, outer):
        tree, encoding = encoded_random(400, seed=12)
        rng = random.Random(4)
        a_codes = rng.sample(tree.codes, 150)
        d_codes = rng.sample(tree.codes, 150)
        _disk, a_set, d_set = make_sets(
            a_codes, d_codes, encoding.tree_height, frames=32
        )
        sink = JoinSink("collect")
        IndexNestedLoopJoin(force_outer=outer).run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted(brute_force_join(a_codes, d_codes))

    def test_random_probe_reads_counted(self):
        spec = syn.spec_by_name("SSLH", large=5000, small=100)
        ds = syn.generate(spec, seed=6)
        disk, a_set, d_set = make_sets(
            ds.a_codes, ds.d_codes, ds.tree_height, frames=8
        )
        a_set.bufmgr.flush_all(); a_set.bufmgr.evict_all(); disk.stats.reset()
        report = IndexNestedLoopJoin().run(a_set, d_set, JoinSink("count"))
        assert report.join_io.random_reads > 0


class TestVPJ:
    def test_partitions_created_when_large(self):
        spec = syn.spec_by_name("SLLL", large=8000, small=800)
        ds = syn.generate(spec, seed=7)
        _disk, a_set, d_set = make_sets(
            ds.a_codes, ds.d_codes, ds.tree_height, frames=8
        )
        report = VerticalPartitionJoin().run(a_set, d_set, JoinSink("count"))
        assert report.partitions > 0
        assert report.result_count == ds.num_results

    def test_memory_join_when_one_side_fits(self):
        tree, encoding = encoded_random(300, seed=13)
        _disk, a_set, d_set = make_sets(
            tree.codes[:10], tree.codes, encoding.tree_height, frames=16
        )
        report = VerticalPartitionJoin().run(a_set, d_set, JoinSink("count"))
        assert report.partitions == 0  # straight to memory join

    def test_replicated_ancestors_not_duplicated(self):
        """High ancestors replicate across partitions; results must not."""
        tree_height = 16
        root = pt.root_code(tree_height)
        descendants = [pt.g_code(alpha, 10, tree_height) for alpha in range(800)]
        _disk, a_set, d_set = make_sets(
            [root], descendants, tree_height, frames=4
        )
        sink = JoinSink("collect")
        VerticalPartitionJoin().run(a_set, d_set, sink)
        assert sorted(sink.pairs) == sorted((root, d) for d in descendants)

    def test_io_stays_near_three_passes(self):
        """Without recursion VPJ costs about 3(||A|| + ||D||)."""
        spec = syn.spec_by_name("SLLL", large=10_000, small=1000)
        ds = syn.generate(spec, seed=8)
        disk, a_set, d_set = make_sets(
            ds.a_codes, ds.d_codes, ds.tree_height, frames=24
        )
        a_set.bufmgr.flush_all(); a_set.bufmgr.evict_all(); disk.stats.reset()
        report = VerticalPartitionJoin().run(a_set, d_set, JoinSink("count"))
        pages = a_set.num_pages + d_set.num_pages
        assert report.total_pages <= 4.5 * pages


class TestMPMGJN:
    def test_rescans_cost_more_than_stacktree_on_nested_data(self):
        """Deep nesting makes MPMGJN re-scan descendant segments."""
        from repro.datatree.node import DataTree

        # a chain of nested ancestors, each with a block of leaves: the
        # nested regions force MPMGJN to re-read descendant segments.
        # (3 leaves + 1 chain child = 4 children -> k=2 levels per link,
        # keeping the PBiTree within the 63-bit storage code space)
        tree = DataTree()
        node = tree.add_root("r")
        chain = [node]
        for _ in range(24):
            node = tree.add_child(node, "c")
            chain.append(node)
        leaves = []
        for anchor in chain:
            for _ in range(3):
                leaves.append(tree.add_child(anchor, "x"))
        encoding = binarize(tree)
        a_codes = [tree.codes[n] for n in chain]
        d_codes = [tree.codes[n] for n in leaves]
        disk, a_set, d_set = make_sets(
            a_codes, d_codes, encoding.tree_height, frames=4
        )
        a_set.bufmgr.flush_all(); a_set.bufmgr.evict_all(); disk.stats.reset()
        merge = MPMGJoin().run(a_set, d_set, JoinSink("count"))
        a_set.bufmgr.flush_all(); a_set.bufmgr.evict_all(); disk.stats.reset()
        stack = StackTreeDescJoin().run(a_set, d_set, JoinSink("count"))
        assert merge.result_count == stack.result_count
        assert merge.join_io.reads > stack.join_io.reads


class TestInputValidation:
    def test_mismatched_tree_heights_rejected(self):
        disk = DiskManager()
        bufmgr = BufferManager(disk, 8)
        a_set = ElementSet.from_codes(bufmgr, [4], 5, "A")
        d_set = ElementSet.from_codes(bufmgr, [4], 6, "D")
        with pytest.raises(ValueError):
            StackTreeDescJoin().run(a_set, d_set, JoinSink("count"))
