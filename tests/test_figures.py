"""Tests for ASCII figure rendering."""

import pytest

from repro.experiments.figures import render_grouped_bars, render_series


class TestRenderSeries:
    def test_basic_shape(self):
        text = render_series(
            ["1%", "2%"],
            {"A": [100.0, 50.0], "B": [25.0, 25.0]},
            title="t",
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert sum("A |" in line or "A  |" in line for line in lines) >= 1
        assert text.count("#") > 0

    def test_scaling_to_peak(self):
        text = render_series(["x"], {"big": [100.0], "small": [50.0]}, width=10)
        big_line = next(line for line in text.splitlines() if "big" in line)
        small_line = next(line for line in text.splitlines() if "small" in line)
        assert big_line.count("#") == 10
        assert small_line.count("#") == 5

    def test_zero_values_render(self):
        text = render_series(["x"], {"z": [0.0]})
        assert "| 0" in text.replace("  ", " ")

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError):
            render_series([], {"a": []})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series(["x", "y"], {"a": [1.0]})


class TestGroupedBars:
    def test_renders_each_row(self):
        text = render_grouped_bars([("one", 10.0), ("two", 5.0)], title="h")
        assert text.splitlines()[0] == "h"
        assert "one" in text and "two" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_grouped_bars([])
