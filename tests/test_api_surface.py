"""Coverage of the smaller API surfaces: reports, sinks, encodings,
harness utilities, proximity corners."""

import pytest

from repro import (
    BufferManager,
    DiskManager,
    ElementSet,
    JoinSink,
    binarize,
    random_tree,
)
from repro.core import pbitree as pt
from repro.core.encoding import PBiTreeEncoding
from repro.datatree.builder import tree_from_spec
from repro.experiments.harness import Workbench, timed
from repro.join.base import JoinReport
from repro.join.proximity import sibling_pairs
from repro.storage.stats import IOSnapshot


class TestJoinSink:
    def test_count_mode_keeps_no_pairs(self):
        sink = JoinSink("count")
        sink.emit(1, 2)
        sink.emit(3, 4)
        assert sink.count == 2 and sink.pairs == []

    def test_emit_many_collect(self):
        sink = JoinSink("collect")
        sink.emit_many([(1, 2), (3, 4)])
        assert sink.pairs == [(1, 2), (3, 4)]
        assert sink.count == 2

    def test_emit_many_count(self):
        sink = JoinSink("count")
        sink.emit_many(iter([(1, 2), (3, 4), (5, 6)]))
        assert sink.count == 3

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            JoinSink("stream")


class TestJoinReport:
    def test_total_io_combines_phases(self):
        report = JoinReport(
            algorithm="x",
            result_count=0,
            prep_io=IOSnapshot(reads=10, writes=5, random_reads=2),
            join_io=IOSnapshot(reads=20, writes=0, random_reads=20),
        )
        assert report.total_pages == 35
        assert report.total_io.random_reads == 22

    def test_cost_with_penalty(self):
        report = JoinReport(
            algorithm="x",
            result_count=0,
            join_io=IOSnapshot(reads=10, writes=0, random_reads=10),
        )
        assert report.cost(1.0) == 10
        assert report.cost(5.0) == 50


class TestEncodingAPI:
    def setup_method(self):
        self.tree = tree_from_spec(("a", [("b", []), ("c", [])]))
        self.encoding = binarize(self.tree, min_height=5)

    def test_node_of_roundtrip(self):
        for node, code in enumerate(self.tree.codes):
            assert self.encoding.node_of(code) == node

    def test_node_of_virtual_raises(self):
        virtual = next(
            code for code in range(1, 32) if code not in self.tree.codes
        )
        with pytest.raises(KeyError):
            self.encoding.node_of(virtual)

    def test_is_virtual(self):
        assert not self.encoding.is_virtual(self.tree.codes[0])
        virtual = next(
            code for code in range(1, 32) if code not in self.tree.codes
        )
        assert self.encoding.is_virtual(virtual)

    def test_is_virtual_out_of_space_rejected(self):
        with pytest.raises(ValueError):
            self.encoding.is_virtual(99)

    def test_metadata(self):
        assert self.encoding.coding_space == (1, 31)
        assert self.encoding.bits_per_code == 5
        assert "H=5" in repr(self.encoding)
        assert self.encoding.level_of_node(0) == 0
        assert list(self.encoding.codes()) == self.tree.codes


class TestHarnessUtilities:
    def test_timed(self):
        seconds, value = timed(lambda x: x * 2, 21)
        assert value == 42
        assert seconds >= 0

    def test_workbench_policies(self):
        for policy in ("lru", "clock"):
            bench = Workbench.create(buffer_pages=4, policy=policy)
            assert bench.bufmgr.policy == policy


class TestSiblingPairsCorners:
    def test_empty_and_single(self):
        assert list(sibling_pairs([], 5)) == []
        assert list(sibling_pairs([4], 5)) == []

    def test_root_level_has_no_siblings(self):
        assert list(sibling_pairs([pt.root_code(5)], 5)) == []

    def test_wide_placement_window(self):
        tree = random_tree(60, seed=3)
        encoding = binarize(tree)
        narrow = set(sibling_pairs(tree.codes, encoding.tree_height, 1))
        wide = set(sibling_pairs(tree.codes, encoding.tree_height, 6))
        assert narrow <= wide

    def test_duplicate_codes_collapse(self):
        tree = tree_from_spec(("a", [("b", []), ("c", [])]))
        encoding = binarize(tree)
        codes = tree.codes + tree.codes  # duplicates
        pairs = list(sibling_pairs(codes, encoding.tree_height))
        assert len(pairs) == len(set(pairs))


class TestElementSetLifecycle:
    def test_destroy_frees_pages(self):
        disk = DiskManager(page_size=128)
        bufmgr = BufferManager(disk, 8)
        elements = ElementSet.from_codes(bufmgr, range(1, 100, 2), 10)
        assert disk.num_allocated > 0
        elements.destroy()
        assert disk.num_allocated == 0

    def test_too_tall_tree_rejected(self):
        disk = DiskManager()
        bufmgr = BufferManager(disk, 4)
        with pytest.raises(ValueError):
            ElementSet.from_codes(bufmgr, [1], tree_height=80)
