"""Chaos suite: every join algorithm must survive storage faults.

Two guarantees are enforced for the whole algorithm line-up (INLJN,
MPMGJN, Stack-Tree, Anc_Des_B+, SHCJ, MHCJ, MHCJ+Rollup, VPJ):

* under a *seeded transient* fault schedule (read/write errors, torn
  pages) the join output is byte-identical to the fault-free run, with
  the absorbed faults visible as ``IOStats.retries``;
* under a *permanent* fault schedule the join raises a typed
  :class:`StorageFault` carrying the page id and operation — it never
  returns silently truncated results.

The chaos seed rotates in CI: set ``REPRO_CHAOS_SEED`` to replay a
logged failure exactly (see docs/faults.md).
"""

import os
import random
from collections import Counter

import pytest

from repro import (
    AncDesBPlusJoin,
    BufferManager,
    DiskManager,
    ElementSet,
    FaultConfig,
    FaultInjector,
    IndexNestedLoopJoin,
    JoinSink,
    MPMGJoin,
    MultiHeightJoin,
    MultiHeightRollupJoin,
    PermanentIOError,
    RetryPolicy,
    SingleHeightJoin,
    StackTreeDescJoin,
    StorageFault,
    TransientIOError,
    VerticalPartitionJoin,
    binarize,
    random_tree,
)
from repro.core import pbitree as pt
from repro.storage.disk import PageCorruptionError

#: rotating chaos seed — CI sets this; defaults to a fixed reproducible run
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

ALGORITHMS = [
    ("INLJN", IndexNestedLoopJoin),
    ("MPMGJN", MPMGJoin),
    ("Stack-Tree", StackTreeDescJoin),
    ("Anc_Des_B+", AncDesBPlusJoin),
    ("SHCJ", SingleHeightJoin),
    ("MHCJ", MultiHeightJoin),
    ("MHCJ+Rollup", MultiHeightRollupJoin),
    ("VPJ", VerticalPartitionJoin),
]
ALGORITHM_IDS = [name for name, _cls in ALGORITHMS]

#: the acceptance bar: transient faults at >= 1% per page read
TRANSIENT_FAULTS = dict(
    read_error_rate=0.05,
    write_error_rate=0.03,
    torn_page_rate=0.03,
)


def make_inputs(algorithm_name: str):
    """One shared dataset; SHCJ gets a single-height ancestor side."""
    tree = random_tree(260, max_fanout=6, seed=29)
    encoding = binarize(tree)
    rng = random.Random(5)
    a_codes = rng.sample(tree.codes, 150)
    d_codes = rng.sample(tree.codes, 180)
    if algorithm_name == "SHCJ":
        modal_height, _count = Counter(
            pt.height_of(code) for code in a_codes
        ).most_common(1)[0]
        a_codes = [c for c in a_codes if pt.height_of(c) == modal_height]
    return a_codes, d_codes, encoding.tree_height


def run_cold(
    algorithm,
    a_codes,
    d_codes,
    tree_height,
    faults=None,
    frames=8,
    retry=None,
):
    """Materialise cold element sets and run one join, faults and all.

    Returns ``(sorted pairs, disk, report)``.
    """
    disk = DiskManager(page_size=128, checksums=True, faults=faults)
    bufmgr = BufferManager(disk, frames, retry=retry)
    a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
    d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
    bufmgr.flush_all()
    bufmgr.evict_all()
    disk.stats.reset()
    sink = JoinSink("collect")
    report = algorithm.run(a_set, d_set, sink)
    return sorted(sink.pairs), disk, report


# ----------------------------------------------------------------------
# tentpole guarantee 1: transient faults never change the answer
# ----------------------------------------------------------------------
class TestTransientChaos:
    @pytest.mark.parametrize("name,cls", ALGORITHMS, ids=ALGORITHM_IDS)
    @pytest.mark.parametrize("seed_offset", [0, 1, 2])
    def test_output_identical_to_fault_free_run(self, name, cls, seed_offset):
        a_codes, d_codes, tree_height = make_inputs(name)
        baseline, _disk, _report = run_cold(cls(), a_codes, d_codes, tree_height)

        injector = FaultInjector(
            FaultConfig(seed=CHAOS_SEED + seed_offset, **TRANSIENT_FAULTS)
        )
        # floor of one guaranteed fault: small joins (SHCJ's modal-height
        # ancestor side is a couple of pages) can draw zero faults from
        # the rates alone under an unlucky rotating seed
        injector.schedule("read-error", at=2)
        chaotic, disk, report = run_cold(
            cls(), a_codes, d_codes, tree_height, faults=injector
        )
        assert chaotic == baseline, (
            f"{name} changed its output under transient faults "
            f"(chaos seed {CHAOS_SEED + seed_offset})"
        )
        assert injector.stats.total_injected > 0, (
            f"chaos run injected nothing — rates/seed "
            f"{CHAOS_SEED + seed_offset} too weak to test anything"
        )
        # the paper's cost metric must expose fault handling
        assert disk.stats.retries > 0
        assert disk.stats.giveups == 0
        assert report.total_io.retries == disk.stats.retries

    @pytest.mark.parametrize("name,cls", ALGORITHMS, ids=ALGORITHM_IDS)
    def test_scheduled_torn_read_is_retried(self, name, cls):
        """A one-shot torn page is caught by the checksum and re-read."""
        a_codes, d_codes, tree_height = make_inputs(name)
        baseline, _disk, _report = run_cold(cls(), a_codes, d_codes, tree_height)

        injector = FaultInjector(seed=CHAOS_SEED)
        injector.schedule("torn-page", at=2)
        chaotic, disk, _report = run_cold(
            cls(), a_codes, d_codes, tree_height, faults=injector
        )
        assert chaotic == baseline
        assert injector.stats.torn_reads == 1
        assert disk.stats.retries >= 1


# ----------------------------------------------------------------------
# tentpole guarantee 2: permanent faults fail fast, typed, with context
# ----------------------------------------------------------------------
class TestPermanentFaults:
    @pytest.mark.parametrize("name,cls", ALGORITHMS, ids=ALGORITHM_IDS)
    def test_permanent_read_error_raises_typed_fault(self, name, cls):
        a_codes, d_codes, tree_height = make_inputs(name)
        disk = DiskManager(page_size=128, checksums=True)
        bufmgr = BufferManager(disk, 8)
        a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
        d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
        bufmgr.flush_all()
        bufmgr.evict_all()

        injector = FaultInjector(seed=CHAOS_SEED)
        injector.schedule("read-error", at=1, permanent=True)
        disk.set_faults(injector)

        with pytest.raises(StorageFault) as exc_info:
            cls().run(a_set, d_set, JoinSink("collect"))
        fault = exc_info.value
        assert fault.page_id is not None
        assert fault.operation == "read"
        assert not fault.transient
        assert fault.algorithm is not None
        assert disk.stats.giveups >= 1

    @pytest.mark.parametrize("name,cls", ALGORITHMS, ids=ALGORITHM_IDS)
    def test_permanently_torn_page_exhausts_retries(self, name, cls):
        """Stored-page corruption survives re-reads: bounded retries must
        give up and escalate instead of spinning or succeeding."""
        a_codes, d_codes, tree_height = make_inputs(name)
        disk = DiskManager(page_size=128, checksums=True)
        bufmgr = BufferManager(disk, 8)
        a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
        d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
        bufmgr.flush_all()
        bufmgr.evict_all()

        injector = FaultInjector(seed=CHAOS_SEED)
        disk.set_faults(injector)
        injector.mark_page_torn(d_set.heap.page_ids[0])

        with pytest.raises(PermanentIOError) as exc_info:
            cls().run(a_set, d_set, JoinSink("collect"))
        fault = exc_info.value
        assert fault.page_id == d_set.heap.page_ids[0]
        assert fault.operation == "read"
        assert isinstance(fault.__cause__, PageCorruptionError)
        assert disk.stats.giveups == 1
        assert disk.stats.retries == bufmgr.retry.max_attempts - 1

    def test_permanent_write_error_raises_typed_fault(self):
        disk = DiskManager(page_size=128, checksums=True)
        bufmgr = BufferManager(disk, 4)
        injector = FaultInjector(seed=CHAOS_SEED)
        disk.set_faults(injector)
        injector.schedule("write-error", at=1, permanent=True)
        frame = bufmgr.new_page()
        bufmgr.unpin(frame.page_id, dirty=True)
        with pytest.raises(StorageFault) as exc_info:
            bufmgr.flush_all()
        fault = exc_info.value
        assert fault.operation == "write"
        assert fault.page_id == frame.page_id

    @pytest.mark.parametrize("name,cls", ALGORITHMS, ids=ALGORITHM_IDS)
    @pytest.mark.parametrize("at", [5, 15, 30])
    def test_mid_join_fault_never_leaks_pins_or_masks_the_fault(
        self, name, cls, at
    ):
        """A permanent fault deep inside a join (while partition/run
        writers hold pinned output pages) must still surface as a typed
        StorageFault — not as a pin-leak ValueError from cleanup — and
        must leave the pool reusable for the next join."""
        a_codes, d_codes, tree_height = make_inputs(name)
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.schedule("read-error", at=at, permanent=True)
        disk = DiskManager(page_size=128, checksums=True, faults=injector)
        bufmgr = BufferManager(disk, 6)
        a_set = ElementSet.from_codes(bufmgr, a_codes, tree_height, "A")
        d_set = ElementSet.from_codes(bufmgr, d_codes, tree_height, "D")
        bufmgr.flush_all()
        bufmgr.evict_all()
        disk.stats.reset()

        try:
            cls().run(a_set, d_set, JoinSink("collect"))
        except StorageFault:
            pass
        else:
            # only acceptable way to finish: the join did fewer than
            # ``at`` reads, so the scheduled fault never fired
            assert injector.stats.scheduled_fired == 0
        leaked = [
            pid for pid, frame in bufmgr._frames.items() if frame.pin_count > 0
        ]
        assert leaked == [], f"{name} leaked pinned pages {leaked}"
        # the same engine must serve a correct join after the abort
        # (fault source repaired: detach the injector)
        disk.set_faults(None)
        baseline, _disk, _report = run_cold(cls(), a_codes, d_codes, tree_height)
        sink = JoinSink("collect")
        cls().run(a_set, d_set, sink)
        assert sorted(sink.pairs) == baseline


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        def drive(injector):
            fired = []
            for op in range(200):
                try:
                    injector.on_read(op % 7)
                except TransientIOError:
                    fired.append(op)
            return fired

        first = drive(FaultInjector(seed=42, read_error_rate=0.1))
        second = drive(FaultInjector(seed=42, read_error_rate=0.1))
        third = drive(FaultInjector(seed=43, read_error_rate=0.1))
        assert first == second
        assert first  # something fired at a 10% rate over 200 ops
        assert first != third

    def test_scheduled_fault_fires_on_nth_matching_op(self):
        injector = FaultInjector(seed=0)
        injector.schedule("read-error", at=3, page_id=5)
        injector.on_read(5)
        injector.on_read(4)  # different page: not a match
        injector.on_read(5)
        with pytest.raises(TransientIOError) as exc_info:
            injector.on_read(5)
        assert exc_info.value.page_id == 5
        # one-shot: the next read is clean
        injector.on_read(5)
        assert injector.stats.scheduled_fired == 1

    def test_latency_fault_counted(self):
        injector = FaultInjector(seed=0, latency_rate=1.0, latency_seconds=0.0)
        injector.on_read(0)
        injector.on_write(0)
        assert injector.stats.latency_events == 2

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(latency_seconds=-1)
        with pytest.raises(ValueError):
            FaultInjector(FaultConfig(), read_error_rate=0.1)

    def test_bad_schedule_rejected(self):
        injector = FaultInjector(seed=0)
        with pytest.raises(ValueError):
            injector.schedule("disk-on-fire")
        with pytest.raises(ValueError):
            injector.schedule("read-error", at=0)

    def test_tearing_injector_requires_checksums(self):
        injector = FaultInjector(seed=0, torn_page_rate=0.5)
        with pytest.raises(ValueError):
            DiskManager(page_size=128, checksums=False, faults=injector)
        DiskManager(page_size=128, checksums=True, faults=injector)


class TestRetryPolicy:
    def test_backoff_is_bounded(self):
        policy = RetryPolicy(max_attempts=6, backoff_base=0.01, backoff_cap=0.03)
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        assert delays == sorted(delays)
        assert max(delays) == 0.03

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy().delay(3) == 0.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)

    def test_retry_budget_is_configurable(self):
        injector = FaultInjector(seed=0)
        disk = DiskManager(page_size=128, checksums=True, faults=injector)
        bufmgr = BufferManager(disk, 2, retry=RetryPolicy(max_attempts=2))
        pid = disk.allocate()
        injector.mark_page_torn(pid)
        with pytest.raises(PermanentIOError):
            bufmgr.pin(pid)
        assert disk.stats.retries == 1
        assert disk.stats.giveups == 1

    def test_transient_fault_absorbed_by_one_retry(self):
        injector = FaultInjector(seed=0)
        disk = DiskManager(page_size=128, checksums=True, faults=injector)
        bufmgr = BufferManager(disk, 2)
        pid = disk.allocate()
        injector.schedule("read-error", at=1, page_id=pid)
        frame = bufmgr.pin(pid)
        assert frame.page_id == pid
        assert disk.stats.retries == 1
        assert disk.stats.giveups == 0


# ----------------------------------------------------------------------
# wiring: harness and database front door
# ----------------------------------------------------------------------
class TestHarnessAndDbWiring:
    def test_run_lineup_under_transient_faults(self):
        from repro.experiments.harness import run_lineup

        a_codes, d_codes, tree_height = make_inputs("lineup")
        quiet = run_lineup(
            "chaos",
            a_codes,
            d_codes,
            tree_height,
            buffer_pages=8,
            page_size=128,
            algorithms=("STACKTREE", "MHCJ+Rollup", "VPJ"),
        )
        noisy = run_lineup(
            "chaos",
            a_codes,
            d_codes,
            tree_height,
            buffer_pages=8,
            page_size=128,
            algorithms=("STACKTREE", "MHCJ+Rollup", "VPJ"),
            faults=FaultConfig(seed=CHAOS_SEED, **TRANSIENT_FAULTS),
        )
        assert noisy.result_count == quiet.result_count
        assert any(
            result.report.total_io.retries > 0 for result in noisy.results
        )

    def test_database_query_under_transient_faults(self):
        from repro.db import ContainmentDatabase

        xml = "<a>" + "<b><c/><d><c/></d></b>" * 25 + "</a>"

        def matches(db):
            doc = db.load_xml(xml, name="chaos")
            return sorted(node.id for node in db.query(doc, "//b//c"))

        plain = matches(ContainmentDatabase(page_size=128, buffer_pages=4))
        injector = FaultInjector(
            FaultConfig(seed=CHAOS_SEED, **TRANSIENT_FAULTS)
        )
        chaotic_db = ContainmentDatabase(
            page_size=128, buffer_pages=4, faults=injector
        )
        assert matches(chaotic_db) == plain
        assert chaotic_db.disk.checksums  # auto-enabled with faults
        assert injector.reads_seen > 0
        assert chaotic_db.fault_stats is injector.stats


# ----------------------------------------------------------------------
# regression: VPJ's rollup fallback must not leak its temp sets
# ----------------------------------------------------------------------
class TestVpjFallbackCleanup:
    """``VerticalPartitionJoin._fallback`` concatenates the partition
    into two temporary element sets and hands them to an inner rollup
    join.  A fault raised while building the second set or inside the
    inner join used to leak the already-built sets' pages: cleanup sat
    after the join instead of in a ``finally``.  The sweep below fires a
    permanent read error at every phase of the fallback and checks the
    disk returns to its pre-join page count every time.
    """

    def bench(self):
        tree = random_tree(420, max_fanout=5, seed=31)
        encoding = binarize(tree)
        rng = random.Random(7)
        a_codes = rng.sample(tree.codes, 260)
        d_codes = rng.sample(tree.codes, 300)
        injector = FaultInjector(seed=CHAOS_SEED)
        disk = DiskManager(page_size=128, checksums=True, faults=injector)
        bufmgr = BufferManager(disk, 4)  # both sides exceed budget - 2
        a_set = ElementSet.from_codes(bufmgr, a_codes, encoding.tree_height, "A")
        d_set = ElementSet.from_codes(bufmgr, d_codes, encoding.tree_height, "D")
        bufmgr.flush_all()
        bufmgr.evict_all()
        return injector, disk, bufmgr, a_set, d_set

    def fault_free_reads(self):
        injector, disk, bufmgr, a_set, d_set = self.bench()
        VerticalPartitionJoin(max_recursion=0).run(
            a_set, d_set, JoinSink("count")
        )
        assert injector.stats.scheduled_fired == 0
        return injector.reads_seen

    def test_faulted_fallback_releases_every_temp_page(self):
        total_reads = self.fault_free_reads()
        assert total_reads > 8
        # sweep the whole fallback: faults while concatenating temp A,
        # while concatenating temp D, and inside the inner rollup join;
        # the chaos seed rotates the sampled positions in CI
        positions = sorted(
            {1 + (CHAOS_SEED + step * total_reads // 7) % total_reads
             for step in range(1, 7)}
        )
        for at in positions:
            injector, disk, bufmgr, a_set, d_set = self.bench()
            baseline = disk.num_allocated
            injector.schedule("read-error", at=at, permanent=True)
            with pytest.raises(StorageFault):
                VerticalPartitionJoin(max_recursion=0).run(
                    a_set, d_set, JoinSink("count")
                )
            assert injector.stats.scheduled_fired == 1
            assert bufmgr.num_pinned == 0, f"pin leaked at read {at}"
            assert disk.num_allocated == baseline, (
                f"fallback leaked {disk.num_allocated - baseline} pages "
                f"when faulted at read {at}"
            )
