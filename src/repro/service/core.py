"""The query service: concurrent containment joins over one corpus.

:class:`QueryService` wraps a loaded
:class:`~repro.db.ContainmentDatabase` and answers path queries from
many threads at once.  The existing machinery is single-threaded by
design (one disk, one buffer pool, one I/O ledger), so the service
builds every admitted query a **session**:

* a :class:`~repro.storage.disk.SessionDiskView` — the shared page
  table with session-private :class:`~repro.storage.stats.IOStats`
  and fault injector, so concurrent queries cannot corrupt each
  other's :class:`~repro.join.base.JoinReport` I/O deltas;
* a session-private :class:`~repro.storage.buffer.BufferManager`
  (every query starts cold — deterministic hit/miss accounting, no
  cross-query frame contention and no pool locking);
* the corpus element sets rebound through the session pool
  (:meth:`~repro.storage.elementset.ElementSet.with_bufmgr`);
* a per-query :class:`~repro.obs.tracer.Tracer` (the shared tracer's
  span stack is not thread-safe).

Sessions are *views*, not snapshots: a session reads the shared page
table live, so any in-place mutation of a document's pages while one
of its queries is executing could produce a torn mix of old and new
pages.  The service therefore gates mutation on a per-document
reader/writer latch: every admitted query holds a *reader* slot on
its document for the whole execute phase, and the two mutation paths
— the *prepare* phase when it drains a non-empty pending-update log,
and :meth:`QueryService.exclusive` — run under the global storage
lock **and** wait for the document's readers to drain first.  Prepare
phases that have nothing to apply never wait, so queries on the same
document still execute fully concurrently; queries on *other*
documents are untouched by a document's page patches and keep running
through an update.  Overload and tenant limits are handled by the
:class:`~repro.service.admission.AdmissionController`; any
:class:`~repro.storage.buffer.BufferPoolExhaustedError` that still
escapes a session pool is converted into a typed
:class:`~repro.service.admission.BackpressureRejection` rather than
crashing the connection.  Warm paths skip the planning scan through
the :class:`~repro.service.plancache.PlanCache`.

Chaos testing: a service built with a ``chaos`` fault config derives
each session's injector seed from (base seed, document, path), so a
given query always draws the same fault stream no matter how many
other queries run beside it — fault behaviour is replayable under
concurrency, which the differential suite relies on.

Index-accelerated queries: when a document has persistent indexes
(B+-tree / interval tree), the prepare phase peeks them under the
storage lock and the execute phase probes **session views**
(``session_view``) — the same index pages rebound through the
session's private buffer pool, with staleness delegated to the base
index — so index probes never pin through the owning document's
shared pool and are session-safe.  (This closes the v1 limitation of
planning from set metadata only.)

Sharded mode: when the underlying database was opened with
``shards > 0``, queries run scatter-gather over the document's
:class:`~repro.shard.corpus.ShardedCorpus` instead of a session
pipeline.  Slot inputs are extracted from the per-shard engines
during the *prepare* phase (under the storage lock — the shard pools
are shared state like everything else touched there) and each slot
then joins on a cold worker-private bench, so the execute phase
needs no shared pages at all: sessions route probes to the owning
shards by construction.  Chaos seeds derive per (document, path)
first and per slot second, keeping fault streams replayable and
shard-count-invariant.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core import batch as batch_module
from ..datatree.paths import PathQuery
from ..db import ContainmentDatabase, Document
from ..index import flat as flat_module
from ..index.bptree import BPlusTree
from ..index.interval_tree import IntervalTree
from ..join.base import JoinAlgorithm, JoinReport
from ..join.pipeline import PathPipeline
from ..join.planner import SetProperties, choose_algorithm
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..storage.buffer import BufferManager, BufferPoolExhaustedError
from ..storage.elementset import ElementSet, SortOrder
from ..storage.faults import FaultConfig, FaultInjector
from .admission import AdmissionController, BackpressureRejection, TenantQuota
from .plancache import PlanCache, PlanEntry, PlanKey, step_fingerprint, table1_cell

__all__ = ["QueryOutcome", "QueryService"]


@dataclass
class QueryOutcome:
    """One answered query: matches plus the full execution evidence."""

    tenant: str
    document: str
    path: str
    codes: list[int]
    direction: str
    cache_hit: bool
    planning_io: int
    reports: list[JoinReport] = field(default_factory=list)
    wall_seconds: float = 0.0
    tracer: Optional[Tracer] = None

    @property
    def count(self) -> int:
        return len(self.codes)

    @property
    def total_io(self) -> int:
        return self.planning_io + sum(r.total_pages for r in self.reports)

    def span_names(self) -> list[str]:
        """Flat list of every span name this query's tracer recorded."""
        if self.tracer is None:
            return []
        names: list[str] = []
        stack = list(self.tracer.roots)
        while stack:
            span = stack.pop()
            names.append(span.name)
            stack.extend(span.children)
        return names


def _derived_seed(base_seed: int, document: str, path: str) -> int:
    """Deterministic per-query fault seed: interleaving-invariant.

    (crc32 is already non-negative on Python 3, so the digest is a
    valid seed as-is.)
    """
    return zlib.crc32(f"{base_seed}:{document}:{path}".encode())


class _DocGate:
    """Reader latch for one document's shared pages.

    Execute phases hold a reader slot; mutation paths (update-draining
    prepares, :meth:`QueryService.exclusive`) wait for readers to
    drain *while holding the service storage lock*, which blocks new
    readers from registering — so draining always terminates, and a
    steady query stream cannot starve an update (writer preference by
    construction).
    """

    __slots__ = ("_cond", "_readers")

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0

    @property
    def readers(self) -> int:
        with self._cond:
            return self._readers

    def reader_enter(self) -> None:
        with self._cond:
            self._readers += 1

    def reader_exit(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def await_drained(self) -> None:
        """Block until no execute phase holds this document's pages."""
        with self._cond:
            while self._readers:
                self._cond.wait()


class QueryService:
    """Thread-safe multi-tenant query front end over one database.

    ``max_in_flight`` bounds concurrent sessions (total frame memory is
    ``max_in_flight * session_pages``); ``session_pages`` sizes each
    session's private pool (defaults to the database pool's size);
    ``quotas`` / ``default_quota`` configure per-tenant admission;
    ``plan_cache_size`` bounds the plan cache (0 disables it);
    ``chaos`` attaches deterministic per-session fault injection (the
    config's seed is the *base* seed; requires the database to have
    checksums when the config tears pages).
    """

    def __init__(
        self,
        db: ContainmentDatabase,
        max_in_flight: int = 4,
        session_pages: Optional[int] = None,
        quotas: Optional[dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        plan_cache_size: int = 128,
        chaos: Optional[FaultConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.db = db
        self.metrics = (
            metrics
            if metrics is not None
            else (db.metrics if db.metrics is not None else MetricsRegistry())
        )
        self.session_pages = (
            session_pages if session_pages is not None else db.bufmgr.num_pages
        )
        if self.session_pages < 3:
            raise ValueError("session pools need at least 3 pages")
        self.admission = AdmissionController(
            max_in_flight,
            self.metrics,
            quotas=quotas,
            default_quota=default_quota,
        )
        self.plan_cache = PlanCache(plan_cache_size, self.metrics)
        self.chaos = chaos
        #: serializes every shared-storage phase: prepares, exclusive()
        #: mutation, and the shared-pool flush they both perform
        self._storage_lock = threading.Lock()
        self._doc_gates: dict[str, _DocGate] = {}
        self._doc_gates_guard = threading.Lock()

    # ------------------------------------------------------------------
    def _doc_gate(self, name: str) -> _DocGate:
        with self._doc_gates_guard:
            gate = self._doc_gates.get(name)
            if gate is None:
                gate = _DocGate()
                self._doc_gates[name] = gate
            return gate

    @contextmanager
    def exclusive(self, document: str) -> Iterator[Document]:
        """Quiesce ``document`` for out-of-band mutation.

        Holds the storage lock (no prepare phase runs anywhere) and
        waits for every in-flight *execute* phase on ``document`` to
        finish before yielding — sessions read the shared page table
        live, so updates applied inside this block (``insert_element``
        / ``delete_element`` / ``flush``) would otherwise interleave
        with a running join's page reads and tear its answers.
        Queries on other documents keep executing: their pages are
        untouched by this document's patches.  All out-of-band
        mutation of a served database must go through this method.
        Do not nest ``exclusive`` blocks — the storage lock is not
        reentrant.
        """
        gate = self._doc_gate(document)
        with self._storage_lock:
            gate.await_drained()
            yield self.db.document(document)

    # ------------------------------------------------------------------
    @staticmethod
    def _step_properties(
        elements: ElementSet,
        start_index: Optional[BPlusTree] = None,
        interval_index: Optional[IntervalTree] = None,
    ) -> SetProperties:
        single = None
        if elements.known_heights is not None and len(elements.known_heights) == 1:
            single = next(iter(elements.known_heights))
        return SetProperties(
            sorted=elements.sorted_by == SortOrder.START,
            start_index=start_index,
            interval_index=interval_index,
            single_height=single,
        )

    def _plan_key(
        self,
        document: Document,
        path: str,
        steps: list[ElementSet],
        props: list[SetProperties],
    ) -> PlanKey:
        fingerprints = tuple(step_fingerprint(step) for step in steps)
        cells = tuple(
            table1_cell(a, d) for a, d in zip(props, props[1:])
        )
        return (
            document.name,
            path,
            self.db.codec.name,
            batch_module.batching_enabled(),
            flat_module.flat_enabled(),
            document.store.version,
            fingerprints,
            cells,
        )

    # ------------------------------------------------------------------
    def execute(
        self,
        tenant: str,
        document: str,
        path: str,
        use_cache: bool = True,
    ) -> QueryOutcome:
        """Answer one path query for ``tenant``.

        Raises :class:`~repro.service.admission.ServiceRejection`
        subclasses for overload/quota (typed, retryable; the per-tenant
        ``rejected`` counter is bumped) — any other exception is a real
        error and bumps ``service.tenant.<tenant>.errors``.
        """
        started = time.perf_counter()
        with self.admission.admit(tenant):
            try:
                outcome = self._run(tenant, document, path, use_cache)
            except BackpressureRejection:
                # keep the global breakdown consistent with the
                # per-tenant counters (admission-time rejections bump
                # both; this is the mid-join conversion path)
                self.metrics.counter("service.rejected.backpressure").inc()
                self.metrics.counter(f"service.tenant.{tenant}.rejected").inc()
                raise
            except Exception:
                self.metrics.counter("service.errors").inc()
                self.metrics.counter(f"service.tenant.{tenant}.errors").inc()
                raise
        outcome.wall_seconds = time.perf_counter() - started
        self.metrics.counter("service.queries").inc()
        self.metrics.counter(f"service.tenant.{tenant}.completed").inc()
        self.metrics.counter(f"service.tenant.{tenant}.results").inc(
            outcome.count
        )
        self.metrics.histogram("service.latency_ms").observe(
            outcome.wall_seconds * 1000.0
        )
        return outcome

    def _run(
        self, tenant: str, document: str, path: str, use_cache: bool
    ) -> QueryOutcome:
        if self.db.shards > 0:
            return self._run_sharded(tenant, document, path)
        doc = self.db.document(document)
        query = PathQuery(path)
        gate = self._doc_gate(document)

        # -- prepare: shared-state access under the storage lock -------
        with self._storage_lock:
            if doc.store.pending_updates():
                # draining the log patches this document's pages in
                # place; an execute phase on the same document reads
                # those pages live through the shared page table, so
                # its sessions must finish first (new ones are held
                # off by the storage lock we already hold)
                gate.await_drained()
            base_steps = [
                doc.store.element_set(tag) for tag in query.steps
            ]
            # the pending log is drained by now, so the peeks are pure
            # cache reads: they surface whichever persistent indexes
            # survived the updates, never build one
            base_props = [
                self._step_properties(
                    step,
                    start_index=doc.store.peek_start_index(tag),
                    interval_index=doc.store.peek_interval_index(tag),
                )
                for tag, step in zip(query.steps, base_steps)
            ]
            # session pools read the disk page table directly, so any
            # corpus page still dirty in the shared pool must hit the
            # table first (write-back is charged to the shared ledger,
            # not to any session's report)
            self.db.bufmgr.flush_all()
            key = self._plan_key(doc, path, base_steps, base_props)
            session = self._open_session(document, path)
            steps = [step.with_bufmgr(session) for step in base_steps]
            # rebind every surfaced index through the session pool too:
            # probing the base index would pin pages in the shared pool
            # from a concurrent execute phase (and charge the wrong
            # ledger).  Views delegate staleness to the base index.
            props_by_id = {
                id(step): SetProperties(
                    sorted=props.sorted,
                    start_index=(
                        props.start_index.session_view(session)
                        if props.start_index is not None
                        else None
                    ),
                    interval_index=(
                        props.interval_index.session_view(session)
                        if props.interval_index is not None
                        else None
                    ),
                    single_height=props.single_height,
                )
                for step, props in zip(steps, base_props)
            }
            gate.reader_enter()

        def _factory(a_set: ElementSet, d_set: ElementSet) -> JoinAlgorithm:
            return choose_algorithm(
                a_set,
                d_set,
                props_by_id.get(id(a_set)),
                props_by_id.get(id(d_set)),
            )

        try:
            cached: Optional[PlanEntry] = None
            if use_cache:
                cached = self.plan_cache.get(key)

            # -- execute: concurrent, reader slot held on the document -
            tracer = Tracer()
            pipeline = PathPipeline(
                session,
                algorithm_factory=_factory,
                direction=cached.direction if cached is not None else None,
                tracer=tracer,
            )
            try:
                with tracer.span("service.query", tenant=tenant, path=path):
                    result = pipeline.execute(steps)
            except BufferPoolExhaustedError as exc:
                raise BackpressureRejection(
                    f"session pool exhausted mid-join ({exc.num_pages} "
                    "pages); retry with less concurrency",
                    retry_after=self.admission.retry_after,
                ) from exc
            finally:
                session.evict_all()

            if use_cache and cached is None and len(steps) > 1:
                self.plan_cache.put(
                    key,
                    PlanEntry(
                        direction=result.direction,
                        cells=key[7],
                        estimated_cost=result.estimated_cost,
                    ),
                )

            codes = [
                code
                for code in result.codes
                if doc.updatable.node_of(code) is not None
            ]
        finally:
            gate.reader_exit()
        return QueryOutcome(
            tenant=tenant,
            document=document,
            path=path,
            codes=codes,
            direction=result.direction,
            cache_hit=cached is not None,
            planning_io=result.planning_io,
            reports=result.reports,
            tracer=tracer,
        )

    def _run_sharded(self, tenant: str, document: str, path: str) -> QueryOutcome:
        """Scatter-gather execution when the database is sharded.

        The prepare phase extracts every slot input from the per-shard
        engines under the storage lock (the shard pools are shared
        state, exactly like the main pool); each slot then joins on a
        cold worker-private bench, so the execute phase needs no
        shared pages at all.  The reader slot is still held: the final
        liveness filter reads the document's live updatable tree.
        """
        from ..shard.executor import ShardedJoinExecutor, SlotInputs

        doc = self.db.document(document)
        query = PathQuery(path)
        gate = self._doc_gate(document)

        # -- prepare: shared-state access under the storage lock -------
        with self._storage_lock:
            if doc.store.pending_updates():
                gate.await_drained()
            # scattering a tag reads its element set through the
            # shared pool; updates already dropped any stale corpus
            self.db.bufmgr.flush_all()
            corpus = self.db.shard_corpus(doc)
            for tag in query.steps:
                self.db._shard_set(doc, tag)
            single_codes: Optional[list[int]] = None
            anchor: Optional[SlotInputs] = None
            descendant_inputs: list[SlotInputs] = []
            if len(query.steps) == 1:
                single_codes = sorted(
                    int(code)
                    for code in doc.store.element_set(query.steps[0]).scan()
                )
            else:
                anchor = SlotInputs(
                    tuple(
                        tuple(corpus.slot_ancestor_codes(query.steps[0], slot))
                        for slot in range(corpus.num_slots)
                    )
                )
                descendant_inputs = [
                    SlotInputs(
                        tuple(
                            tuple(corpus.slot_descendant_codes(tag, slot))
                            for slot in range(corpus.num_slots)
                        )
                    )
                    for tag in query.steps[1:]
                ]
            gate.reader_enter()

        chaos_base: Optional[FaultConfig] = None
        if self.chaos is not None:
            chaos_base = FaultConfig(
                seed=_derived_seed(self.chaos.seed, document, path),
                read_error_rate=self.chaos.read_error_rate,
                write_error_rate=self.chaos.write_error_rate,
                torn_page_rate=self.chaos.torn_page_rate,
                latency_rate=self.chaos.latency_rate,
                latency_seconds=self.chaos.latency_seconds,
            )

        try:
            # -- execute: slot benches are worker-private; inline here
            # (the service's own thread pool is the concurrency layer —
            # the library never spawns processes behind the caller)
            tracer = Tracer()
            reports: list[JoinReport] = []
            executor = ShardedJoinExecutor(corpus, workers=1)
            try:
                with tracer.span(
                    "service.query", tenant=tenant, path=path, sharded=True
                ):
                    if single_codes is not None:
                        codes = single_codes
                    else:
                        assert anchor is not None
                        survivors: list[int] = []
                        current: "SlotInputs | list[int]" = anchor
                        for step_index, descendants in enumerate(
                            descendant_inputs, start=1
                        ):
                            report, pairs = executor.run(
                                "MHCJ+Rollup",
                                current,
                                descendants,
                                dataset=f"{document}.step{step_index}",
                                buffer_pages=self.session_pages,
                                page_size=self.db.disk.page_size,
                                collect=True,
                                faults=chaos_base,
                                tracer=tracer,
                            )
                            reports.append(report)
                            assert pairs is not None
                            survivors = sorted(
                                {d_code for _a_code, d_code in pairs}
                            )
                            current = survivors
                        codes = survivors
            except BufferPoolExhaustedError as exc:
                raise BackpressureRejection(
                    f"slot bench pool exhausted mid-join ({exc.num_pages} "
                    "pages); retry with less concurrency",
                    retry_after=self.admission.retry_after,
                ) from exc

            codes = [
                code
                for code in codes
                if doc.updatable.node_of(code) is not None
            ]
        finally:
            gate.reader_exit()
        return QueryOutcome(
            tenant=tenant,
            document=document,
            path=path,
            codes=codes,
            direction="top-down",
            cache_hit=False,
            planning_io=0,
            reports=reports,
            tracer=tracer,
        )

    def _open_session(self, document: str, path: str) -> BufferManager:
        """A session-private buffer pool over a view of the shared disk."""
        faults: Optional[FaultInjector] = None
        if self.chaos is not None:
            config = FaultConfig(
                seed=_derived_seed(self.chaos.seed, document, path),
                read_error_rate=self.chaos.read_error_rate,
                write_error_rate=self.chaos.write_error_rate,
                torn_page_rate=self.chaos.torn_page_rate,
                latency_rate=self.chaos.latency_rate,
                latency_seconds=self.chaos.latency_seconds,
            )
            faults = FaultInjector(config)
        view = self.db.disk.session_view(faults=faults)
        return BufferManager(
            view,
            self.session_pages,
            self.db.bufmgr.policy,
            retry=self.db.bufmgr.retry,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """A snapshot of the service-level metrics (for the protocol)."""
        names = [
            name
            for name in self.metrics.names()
            if name.startswith("service.")
        ]
        out: dict[str, object] = {}
        for name in names:
            metric = self.metrics.get(name)
            if metric is not None:
                out[name] = metric.as_value()
        return out
