"""Multi-tenant query service tier over the containment-join engine.

The ROADMAP's north star is a production-scale service answering
containment joins for many concurrent users; this package is that
tier.  It layers, bottom-up:

* :mod:`.admission` — in-flight bounds, per-tenant quotas, typed
  backpressure rejections;
* :mod:`.plancache` — stats-fingerprint-keyed plan reuse that skips
  the pipeline's planning scan on warm paths;
* :mod:`.core` — :class:`QueryService`, which gives each admitted
  query a session-private disk view + buffer pool so the existing
  single-threaded join machinery runs correctly in parallel;
* :mod:`.server` / :mod:`.client` — a JSON-lines TCP protocol
  (``python -m repro serve`` / ``remote-query``).

See ``docs/service.md`` for the architecture and guarantees.
"""

from .admission import (
    AdmissionController,
    BackpressureRejection,
    QuotaExceededRejection,
    ServiceRejection,
    TenantQuota,
)
from .client import ServiceClient, ServiceProtocolError
from .core import QueryOutcome, QueryService
from .plancache import PlanCache, PlanEntry
from .server import ContainmentServer, ServerThread

__all__ = [
    "AdmissionController",
    "BackpressureRejection",
    "QuotaExceededRejection",
    "ServiceRejection",
    "TenantQuota",
    "ServiceClient",
    "ServiceProtocolError",
    "QueryOutcome",
    "QueryService",
    "PlanCache",
    "PlanEntry",
    "ContainmentServer",
    "ServerThread",
]
