"""Admission control for the multi-tenant query service.

The buffer pool is the scarce resource: every admitted query opens a
session-private pool over the shared page table, so the number of
in-flight joins bounds total frame memory.  The controller enforces
that bound *before* a query touches storage, converting overload into
typed, retryable rejections instead of letting
:class:`~repro.storage.buffer.BufferPoolExhaustedError` (or worse, an
OOM) escape to a client mid-join:

* **Backpressure** — the global in-flight limit is reached.  The
  client receives :class:`BackpressureRejection` with a ``retry_after``
  hint sized to the service's observed latency.
* **Quota** — a tenant exceeded its own concurrency or total-query
  allowance (:class:`TenantQuota`).  Other tenants are unaffected;
  that is the point of per-tenant admission.

Admission is a context manager (:meth:`AdmissionController.admit`), so
a slot is always returned — on success, rejection or a query that
dies downstream.  All counters go through the (thread-safe)
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..obs.metrics import MetricsRegistry

__all__ = [
    "ServiceRejection",
    "BackpressureRejection",
    "QuotaExceededRejection",
    "TenantQuota",
    "AdmissionController",
]

#: default retry hint (seconds) for rejected queries
DEFAULT_RETRY_AFTER = 0.05


class ServiceRejection(Exception):
    """A query was refused admission (typed, retryable backpressure).

    Not an internal error: the query never ran, no storage state was
    touched, and the client may retry after ``retry_after`` seconds.
    """

    code = "rejected"

    def __init__(self, message: str, retry_after: float = DEFAULT_RETRY_AFTER) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class BackpressureRejection(ServiceRejection):
    """The service is at its global in-flight join limit."""

    code = "backpressure"


class QuotaExceededRejection(ServiceRejection):
    """The tenant exhausted its own concurrency or query allowance."""

    code = "quota"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (``None`` = unlimited).

    ``max_in_flight`` bounds the tenant's concurrent queries;
    ``max_queries`` bounds its lifetime total (a hard budget for
    metered tenants).
    """

    max_in_flight: Optional[int] = None
    max_queries: Optional[int] = None


class AdmissionController:
    """Bounds in-flight joins against buffer-pool capacity.

    ``max_in_flight`` is the global concurrency ceiling — the service
    sizes it so that ``max_in_flight * session_pool_pages`` stays
    within the memory budget.  ``quotas`` maps tenant name to
    :class:`TenantQuota`; unknown tenants get ``default_quota``.
    """

    def __init__(
        self,
        max_in_flight: int,
        metrics: MetricsRegistry,
        quotas: Optional[dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = max_in_flight
        self.metrics = metrics
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._in_flight = 0
        self._tenant_in_flight: dict[str, int] = {}
        self._tenant_issued: dict[str, int] = {}

    # ------------------------------------------------------------------
    def quota_for(self, tenant: str) -> Optional[TenantQuota]:
        """The quota governing ``tenant`` (explicit, default, or none)."""
        return self.quotas.get(tenant, self.default_quota)

    @property
    def in_flight(self) -> int:
        """Currently admitted queries (all tenants)."""
        return self._in_flight

    def tenant_in_flight(self, tenant: str) -> int:
        """Currently admitted queries for one tenant."""
        with self._lock:
            return self._tenant_in_flight.get(tenant, 0)

    # ------------------------------------------------------------------
    @contextmanager
    def admit(self, tenant: str) -> Iterator[None]:
        """Hold one admission slot for the ``with`` body.

        Raises :class:`BackpressureRejection` when the service is
        saturated and :class:`QuotaExceededRejection` when the tenant
        is over its own limits; in both cases nothing is held and the
        rejection counters are bumped.
        """
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                self.metrics.counter("service.rejected.backpressure").inc()
                self.metrics.counter(f"service.tenant.{tenant}.rejected").inc()
                raise BackpressureRejection(
                    f"service at capacity ({self.max_in_flight} in-flight "
                    "joins); retry later",
                    retry_after=self.retry_after,
                )
            quota = self.quota_for(tenant)
            mine = self._tenant_in_flight.get(tenant, 0)
            issued = self._tenant_issued.get(tenant, 0)
            if quota is not None:
                if (
                    quota.max_in_flight is not None
                    and mine >= quota.max_in_flight
                ):
                    self.metrics.counter("service.rejected.quota").inc()
                    self.metrics.counter(
                        f"service.tenant.{tenant}.rejected"
                    ).inc()
                    raise QuotaExceededRejection(
                        f"tenant {tenant!r} at its concurrency quota "
                        f"({quota.max_in_flight}); retry later",
                        retry_after=self.retry_after,
                    )
                if (
                    quota.max_queries is not None
                    and issued >= quota.max_queries
                ):
                    self.metrics.counter("service.rejected.quota").inc()
                    self.metrics.counter(
                        f"service.tenant.{tenant}.rejected"
                    ).inc()
                    raise QuotaExceededRejection(
                        f"tenant {tenant!r} exhausted its query quota "
                        f"({quota.max_queries})",
                        retry_after=self.retry_after,
                    )
            self._in_flight += 1
            self._tenant_in_flight[tenant] = mine + 1
            self._tenant_issued[tenant] = issued + 1
        self.metrics.counter("service.admitted").inc()
        self.metrics.counter(f"service.tenant.{tenant}.admitted").inc()
        try:
            yield
        finally:
            with self._lock:
                self._in_flight -= 1
                remaining = self._tenant_in_flight.get(tenant, 1) - 1
                if remaining:
                    self._tenant_in_flight[tenant] = remaining
                else:
                    self._tenant_in_flight.pop(tenant, None)
