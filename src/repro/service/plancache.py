"""Plan cache for the query service: skip re-planning warm paths.

Planning a path pipeline costs real I/O — the direction decision scans
every step's element set to collect :class:`~repro.join.statistics.
SetStatistics` (charged as ``planning_io`` under the ``pipeline.plan``
span).  For a service answering the same handful of paths thousands of
times over a corpus that changes rarely, that scan is pure waste: the
statistics cannot have changed unless the data did.

The cache therefore keys on everything the plan depends on, following
the stats-driven selection discipline of Table 1 (and of Bouros et
al.'s revisit of containment-join selection):

* the document and path;
* the containment **codec** backing the document;
* the **batch / flat execution switches** (they change the operators'
  access patterns, hence the cost picture);
* the **document-store version** — bumped every time buffered updates
  apply to pages (``DocumentStore.pending_updates`` draining), which is
  exactly when cached statistics go stale;
* a cheap **per-step fingerprint** (cardinality, page count, sort
  order, height profile) — a second line of defence that catches any
  mutation path the version counter might miss;
* the per-step planner **Table-1 cell**, so a plan cached when a set
  was index-free is never replayed after an index appears.

A hit replays the cached pipeline *direction*, which makes the
pipeline skip the statistics scan entirely: no ``pipeline.plan`` span,
``planning_io == 0``.  Per-step operator selection is re-derived from
set metadata at execution time (it is I/O-free), so the cache never
stores live algorithm objects — those carry per-run tracer state and
must not be shared across queries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..join.planner import SetProperties
from ..obs.metrics import MetricsRegistry
from ..storage.elementset import ElementSet

__all__ = [
    "PlanKey",
    "PlanEntry",
    "PlanCache",
    "step_fingerprint",
    "table1_cell",
]

#: one step's cheap statistics fingerprint (no I/O to compute)
StepFingerprint = Tuple[int, int, Optional[str], Optional[frozenset[int]]]

#: full cache key — see module docstring for the fields
PlanKey = Tuple[
    str,  # document name
    str,  # path
    str,  # codec name
    bool,  # batching enabled
    bool,  # flat indexes enabled
    int,  # document-store version
    Tuple[StepFingerprint, ...],
    Tuple[str, ...],  # per-step Table-1 cells
]


def step_fingerprint(elements: ElementSet) -> StepFingerprint:
    """A cheap (I/O-free) stats fingerprint of one element set."""
    return (
        len(elements),
        elements.num_pages,
        elements.sorted_by,
        elements.known_heights,
    )


def table1_cell(a_props: SetProperties, d_props: SetProperties) -> str:
    """The planner's Table-1 cell for one join step's input properties.

    Mirrors the branch structure of :func:`~repro.join.planner.
    choose_algorithm` without touching any data: sortedness and usable
    indexes pick the row, single-height the rollup degeneration.
    """
    both_sorted = a_props.sorted and d_props.sorted
    both_indexed = a_props.indexed and d_props.indexed
    if both_sorted and both_indexed:
        return "sorted+indexed"
    if both_sorted:
        return "sorted"
    if d_props.start_index is not None or a_props.interval_index is not None:
        return "indexed"
    if a_props.single_height is not None:
        return "single-height"
    return "unsorted-unindexed"


@dataclass(frozen=True)
class PlanEntry:
    """A cached plan: the pipeline direction plus observability context.

    ``cells`` records the Table-1 cell of each base step at caching
    time (they are also part of the key, so a replayed entry is always
    consistent with the current cells).
    """

    direction: str
    cells: Tuple[str, ...]
    estimated_cost: float = 0.0


class PlanCache:
    """A bounded LRU of :class:`PlanEntry` keyed by :data:`PlanKey`.

    Thread-safe; ``capacity=0`` disables caching entirely (every
    lookup misses, nothing is stored) — the differential tests use
    that to keep cold and warm runs byte-identical.  Hit/miss/eviction
    counts surface as ``service.plan_cache.*`` metrics.
    """

    def __init__(self, capacity: int, metrics: MetricsRegistry) -> None:
        if capacity < 0:
            raise ValueError("plan cache capacity cannot be negative")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[PlanKey, PlanEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: PlanKey) -> Optional[PlanEntry]:
        """The cached entry for ``key``, bumping hit/miss counters."""
        if not self.enabled:
            self.metrics.counter("service.plan_cache.misses").inc()
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.metrics.counter("service.plan_cache.misses").inc()
        else:
            self.metrics.counter("service.plan_cache.hits").inc()
        return entry

    def put(self, key: PlanKey, entry: PlanEntry) -> None:
        """Insert (or refresh) one entry, evicting the LRU at capacity."""
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.metrics.counter("service.plan_cache.evictions").inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
