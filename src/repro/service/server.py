"""TCP front end: an asyncio acceptor over a thread-pool of joins.

The wire protocol is JSON lines (one request object per line, one
response object per line, UTF-8):

Requests::

    {"op": "query", "tenant": "t1", "document": "doc", "path": "//a//b"}
    {"op": "page", "cursor": "c0"}
    {"op": "ping"}
    {"op": "stats"}
    {"op": "close"}

``tenant`` must match ``[A-Za-z0-9_-]{1,64}`` (:data:`TENANT_RE`) —
tenant names feed dotted metric keys, so the charset keeps one tenant
from forging another's ``service.tenant.<t>.*`` entries and the cap
bounds metric cardinality.

Responses always carry ``status``:

* ``{"status": "ok", ...}`` — op-specific payload; a query reply has
  ``count`` (exact), ``codes`` (the first ``MAX_WIRE_CODES``),
  ``direction``, ``cache_hit``, ``planning_io``, ``wall_seconds`` and
  a per-step ``reports`` summary.  When the result set overflows the
  cap, the reply also carries a ``cursor`` token: each ``page`` op
  drains the next ``MAX_WIRE_CODES`` codes and repeats the token
  until the set is exhausted (the final page omits ``cursor``).
  Cursors are connection-scoped, at most :data:`MAX_CURSORS` live at
  once (oldest evicted first), and die with the connection —
  continuation is a courtesy window, not a durable snapshot handle;
* ``{"status": "rejected", "code": "backpressure"|"quota",
  "retry_after": seconds, "error": msg}`` — typed backpressure, the
  client should retry after the hint;
* ``{"status": "error", "error": msg}`` — the query failed; the
  connection stays usable.

The asyncio loop only parses lines and schedules; every query runs in
a :class:`~concurrent.futures.ThreadPoolExecutor` worker via
:meth:`~repro.service.core.QueryService.execute`, whose admission
controller — not the socket layer — decides how many joins are
actually in flight.  :class:`ServerThread` hosts the whole loop in a
daemon thread for tests, benchmarks and the CLI.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..join.base import JoinReport
from .admission import ServiceRejection
from .core import QueryOutcome, QueryService

__all__ = ["ContainmentServer", "ServerThread", "MAX_CURSORS", "MAX_WIRE_CODES"]

#: result codes included inline in a query (or page) response; larger
#: result sets continue through connection-scoped ``page`` cursors
MAX_WIRE_CODES = 1000

#: paging cursors kept per connection; opening more evicts the oldest
#: (bounds the undelivered-codes memory a client can park serverside)
MAX_CURSORS = 8


class _ConnectionState:
    """Per-connection paging state: cursor token -> undelivered codes."""

    __slots__ = ("cursors", "_next_token")

    def __init__(self) -> None:
        self.cursors: dict[str, list[int]] = {}
        self._next_token = 0

    def park(self, codes: list[int]) -> str:
        """Stash overflow codes; returns the continuation token."""
        token = f"c{self._next_token}"
        self._next_token += 1
        self.cursors[token] = codes
        while len(self.cursors) > MAX_CURSORS:
            self.cursors.pop(next(iter(self.cursors)))
        return token

    def page(self, token: str) -> tuple[list[int], bool]:
        """Next chunk for ``token`` plus whether more pages remain.

        Raises :class:`KeyError` for unknown (or evicted) tokens.  A
        token with remaining codes is re-parked under the same name,
        which also refreshes its eviction recency.
        """
        remaining = self.cursors.pop(token)
        chunk = remaining[:MAX_WIRE_CODES]
        rest = remaining[MAX_WIRE_CODES:]
        if rest:
            self.cursors[token] = rest
        return chunk, bool(rest)

#: tenant names accepted at the wire boundary.  Tenant strings are
#: interpolated into dotted metric names (``service.tenant.<t>.*``),
#: so a client-supplied name containing a dot (e.g. ``"a.completed"``)
#: could forge or collide with another tenant's metric keys exposed by
#: the ``stats`` op; the length cap bounds metric cardinality.
TENANT_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def _report_summary(report: JoinReport) -> dict[str, object]:
    return {
        "algorithm": report.algorithm,
        "result_count": report.result_count,
        "total_pages": report.total_pages,
        "false_hits": report.false_hits,
    }


def _ok_payload(
    outcome: QueryOutcome, state: _ConnectionState
) -> dict[str, object]:
    payload: dict[str, object] = {
        "status": "ok",
        "count": outcome.count,
        "codes": outcome.codes[:MAX_WIRE_CODES],
        "direction": outcome.direction,
        "cache_hit": outcome.cache_hit,
        "planning_io": outcome.planning_io,
        "wall_seconds": outcome.wall_seconds,
        "reports": [_report_summary(r) for r in outcome.reports],
    }
    if outcome.count > MAX_WIRE_CODES:
        payload["cursor"] = state.park(outcome.codes[MAX_WIRE_CODES:])
    return payload


class ContainmentServer:
    """Asyncio TCP server over one :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: Optional[int] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._workers = (
            max_workers
            if max_workers is not None
            else service.admission.max_in_flight + 2
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves the actual port."""
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-join"
        )
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = _ConnectionState()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line, state)
                if response is None:  # clean close requested
                    break
                writer.write(
                    json.dumps(response, sort_keys=True).encode() + b"\n"
                )
                await writer.drain()
        except asyncio.CancelledError:
            pass  # server shutdown reaps idle connections; just drop it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, line: bytes, state: _ConnectionState
    ) -> Optional[dict[str, object]]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"status": "error", "error": f"bad request line: {exc}"}
        if not isinstance(request, dict):
            return {"status": "error", "error": "request must be an object"}
        op = request.get("op")
        if op == "close":
            return None
        if op == "ping":
            return {"status": "ok", "pong": True}
        if op == "stats":
            return {"status": "ok", "stats": self.service.stats()}
        if op == "page":
            token = request.get("cursor")
            if not isinstance(token, str) or token not in state.cursors:
                return {
                    "status": "error",
                    "error": f"unknown cursor {token!r} (expired or evicted)",
                }
            chunk, more = state.page(token)
            payload: dict[str, object] = {
                "status": "ok",
                "codes": chunk,
                "count": len(chunk),
            }
            if more:
                payload["cursor"] = token
            return payload
        if op != "query":
            return {"status": "error", "error": f"unknown op {op!r}"}
        tenant = request.get("tenant", "default")
        document = request.get("document")
        path = request.get("path")
        if not isinstance(tenant, str) or not isinstance(document, str) \
                or not isinstance(path, str):
            return {
                "status": "error",
                "error": "query needs string tenant/document/path",
            }
        if not TENANT_RE.match(tenant):
            return {
                "status": "error",
                "error": "invalid tenant: must match [A-Za-z0-9_-]{1,64}",
            }
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        try:
            outcome = await loop.run_in_executor(
                self._executor, self.service.execute, tenant, document, path
            )
        except ServiceRejection as rejection:
            return {
                "status": "rejected",
                "code": rejection.code,
                "retry_after": rejection.retry_after,
                "error": str(rejection),
            }
        except Exception as exc:  # noqa: BLE001 - the wire boundary
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
        return _ok_payload(outcome, state)


class ServerThread:
    """Host a :class:`ContainmentServer` on a daemon thread.

    ``with ServerThread(service) as server:`` yields a started server
    whose ``port`` is bound; tests and the load generator connect
    blocking clients against it.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: Optional[int] = None,
    ) -> None:
        self.server = ContainmentServer(
            service, host=host, port=port, max_workers=max_workers
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server failed to start in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            await self.server.start()
            self._started.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            # connections whose clients vanished without a close op still
            # have a _handle task parked on readline; reap them so the
            # loop closes without "task was destroyed" warnings
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
