"""Blocking JSON-lines client for the containment query service.

A thin socket wrapper over the protocol documented in
:mod:`repro.service.server`.  One client holds one connection; it is
not itself thread-safe — the load generator opens one per worker
thread, which also exercises the server's concurrent sessions.
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, Optional

__all__ = ["ServiceClient", "ServiceProtocolError", "connect"]


class ServiceProtocolError(RuntimeError):
    """The server closed mid-reply or sent something unparseable."""


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.
    ContainmentServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def _call(self, request: dict[str, object]) -> dict[str, object]:
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceProtocolError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceProtocolError(f"bad response line: {exc}") from exc
        if not isinstance(response, dict):
            raise ServiceProtocolError("response was not an object")
        return response

    def query(
        self,
        document: str,
        path: str,
        tenant: str = "default",
    ) -> dict[str, object]:
        """Run one path query; returns the raw response dict.

        ``response["status"]`` is ``"ok"``, ``"rejected"`` (typed
        backpressure — retry after ``response["retry_after"]``) or
        ``"error"``.
        """
        return self._call(
            {"op": "query", "tenant": tenant, "document": document, "path": path}
        )

    def page(self, cursor: str) -> dict[str, object]:
        """Fetch the next page of a paged result set (raw response)."""
        return self._call({"op": "page", "cursor": cursor})

    def query_all(
        self,
        document: str,
        path: str,
        tenant: str = "default",
    ) -> dict[str, object]:
        """Like :meth:`query` but follows continuation cursors.

        The returned response carries the *complete* ``codes`` list
        and no ``cursor`` key, no matter how far past the wire cap the
        result set runs.  Non-``ok`` first responses are returned
        as-is (rejections stay typed and retryable); a page fetch that
        fails mid-iteration raises :class:`ServiceProtocolError` — the
        result would otherwise be silently truncated.
        """
        response = self.query(document, path, tenant=tenant)
        if response.get("status") != "ok":
            return response
        codes = list(response.get("codes") or [])
        cursor = response.get("cursor")
        while isinstance(cursor, str):
            page = self.page(cursor)
            if page.get("status") != "ok":
                raise ServiceProtocolError(
                    f"page fetch failed mid-result: {page.get('error')}"
                )
            codes.extend(page.get("codes") or [])
            cursor = page.get("cursor")
        response["codes"] = codes
        response.pop("cursor", None)
        return response

    def iter_codes(
        self,
        document: str,
        path: str,
        tenant: str = "default",
    ) -> Iterator[int]:
        """Stream a query's codes page by page (constant client memory).

        Raises :class:`ServiceProtocolError` when the query itself is
        rejected or errors — an iterator cannot return a typed
        rejection, so callers who need retry semantics use
        :meth:`query` / :meth:`query_all` instead.
        """
        response = self.query(document, path, tenant=tenant)
        while True:
            if response.get("status") != "ok":
                raise ServiceProtocolError(
                    f"query failed: {response.get('error')}"
                )
            for code in response.get("codes") or []:
                yield int(code)
            cursor = response.get("cursor")
            if not isinstance(cursor, str):
                return
            response = self.page(cursor)

    def ping(self) -> bool:
        return self._call({"op": "ping"}).get("status") == "ok"

    def stats(self) -> dict[str, object]:
        response = self._call({"op": "stats"})
        stats = response.get("stats")
        return stats if isinstance(stats, dict) else {}

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.write(b'{"op": "close"}\n')
            self._file.flush()
        except (OSError, ValueError):
            pass
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<ServiceClient {self.host}:{self.port}>"


def connect(
    host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
) -> Optional[ServiceClient]:
    """Try to connect; ``None`` when the server is not accepting."""
    try:
        return ServiceClient(host, port, timeout=timeout)
    except OSError:
        return None
