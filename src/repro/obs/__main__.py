"""CLI: schema-check BENCH summary files.

``python -m repro.obs BENCH_smoke.json [...]`` — exit 0 when every file
is a valid :data:`~repro.obs.export.BENCH_SCHEMA` summary, 1 when any
fails validation, 2 on unreadable/unparseable input.  CI runs this over
the artifact the traced smoke benchmark emits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .export import BENCH_SCHEMA, validate_bench_summary

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=f"Validate BENCH summary files against {BENCH_SCHEMA}.",
    )
    parser.add_argument("files", nargs="+", help="BENCH_*.json files to check")
    options = parser.parse_args(argv)

    status = 0
    for name in options.files:
        path = Path(name)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            return 2
        problems = validate_bench_summary(data)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok ({BENCH_SCHEMA})")
    return status


if __name__ == "__main__":
    sys.exit(main())
