"""Span-tree tracer: where inside a join does the cost go?

The paper argues every comparison in page I/Os and elapsed time
(Section 4, Figures 6a-6h), but a single total per run cannot say
*which phase* — partitioning, probing, merging, rollup, recursion —
paid it.  A :class:`Tracer` produces a tree of :class:`Span` objects
(``span("vpj.partition")``, ``span("shcj.probe")``, ...), each carrying
its wall time, the :class:`~repro.storage.stats.IOSnapshot` delta
observed while it was open, and the buffer-pool hit/miss delta.

Tracing is strictly opt-in and zero-cost when disabled: the default
tracer used by the join framework is :data:`NULL_TRACER`, whose
``span()`` hands back one shared no-op span — no snapshots are taken,
no objects are allocated, so Figure 6 reproductions are unaffected.

Spans nest lexically::

    tracer = Tracer()
    with tracer.span("lineup") as span:
        report = algorithm.run(ancestors, descendants, sink, tracer=tracer)
        span.set("results", report.result_count)
    print(format_span_tree(tracer.roots))   # see repro.obs.export

A span's I/O delta is *inclusive* (it covers its children);
:attr:`Span.self_io` subtracts the children back out.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import TYPE_CHECKING, Iterator, Optional

from ..storage.stats import IOSnapshot

if TYPE_CHECKING:
    from ..storage.buffer import BufferManager

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One traced phase: name, wall time, I/O delta, buffer hit/miss delta."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "wall_seconds",
        "io",
        "buffer_hits",
        "buffer_misses",
        "error",
        "_tracer",
        "_start",
        "_io_before",
        "_hits_before",
        "_misses_before",
    )

    def __init__(self, name: str, tracer: "Optional[Tracer]" = None) -> None:
        self.name = name
        self.attributes: dict[str, object] = {}
        self.children: list[Span] = []
        self.wall_seconds = 0.0
        self.io = IOSnapshot()
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.error: Optional[str] = None
        self._tracer = tracer
        self._start = 0.0
        self._io_before = IOSnapshot()
        self._hits_before = 0
        self._misses_before = 0

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._enter(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self.error = exc_type.__name__
        if self._tracer is not None:
            self._tracer._exit(self)

    # -- recording ------------------------------------------------------
    def set(self, key: str, value: object) -> None:
        """Attach one attribute (``span.set("partitions", 12)``)."""
        self.attributes[key] = value

    # -- derived views --------------------------------------------------
    @property
    def total_pages(self) -> int:
        """Inclusive page transfers (reads + writes) under this span."""
        return self.io.total

    @property
    def self_io(self) -> IOSnapshot:
        """This span's I/O minus everything attributed to child spans."""
        io = self.io
        for child in self.children:
            io = io - child.io
        return io

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pre-order over this subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Optional[Span]":
        """First span named ``name`` in this subtree (pre-order), or None."""
        for _depth, span in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} io={self.io.total} "
            f"wall={self.wall_seconds:.4f}s children={len(self.children)}>"
        )


class Tracer:
    """Collects a span tree; binds to a buffer pool for I/O attribution.

    ``bind`` attaches the :class:`BufferManager` whose disk stats and
    hit/miss counters every subsequent span snapshots.  Spans opened
    before a pool is bound still measure wall time (their I/O deltas
    stay zero) — the join framework binds the pool it runs against, so
    in practice the first ``run(..., tracer=...)`` completes the wiring.
    """

    #: False on :class:`NullTracer`; lets callers skip expensive
    #: attribute computation (``if tracer.enabled: span.set(...)``)
    enabled = True

    def __init__(self, bufmgr: "Optional[BufferManager]" = None) -> None:
        self.bufmgr = bufmgr
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def bind(self, bufmgr: "BufferManager") -> None:
        """Attach the pool to measure (first binding wins)."""
        if self.bufmgr is None:
            self.bufmgr = bufmgr

    def span(self, name: str, **attributes: object) -> Span:
        """Open a new span as a context manager."""
        span = Span(name, tracer=self)
        if attributes:
            span.attributes.update(attributes)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Drop all collected spans (keeps the binding)."""
        self.roots.clear()
        self._stack.clear()

    # -- span lifecycle (called by Span.__enter__/__exit__) -------------
    def _enter(self, span: Span) -> None:
        bufmgr = self.bufmgr
        if bufmgr is not None:
            span._io_before = bufmgr.disk.stats.snapshot()
            span._hits_before = bufmgr.hits
            span._misses_before = bufmgr.misses
        span._start = time.perf_counter()
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        span.wall_seconds = time.perf_counter() - span._start
        bufmgr = self.bufmgr
        if bufmgr is not None:
            span.io = bufmgr.disk.stats.delta(span._io_before)
            span.buffer_hits = bufmgr.hits - span._hits_before
            span.buffer_misses = bufmgr.misses - span._misses_before
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive: mismatched exit order
            self._stack.remove(span)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)


class _NullSpan(Span):
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None


_NULL_SPAN = _NullSpan("null")


class NullTracer(Tracer):
    """Disabled tracer: every ``span()`` is the same shared no-op span.

    This is the join framework's default, so an untraced run performs
    no snapshots, allocates no span objects and keeps no state — the
    zero-cost-when-disabled guarantee the Figure 6 benchmarks rely on.
    """

    enabled = False

    def bind(self, bufmgr: "BufferManager") -> None:
        return None

    def span(self, name: str, **attributes: object) -> Span:
        return _NULL_SPAN

    def _enter(self, span: Span) -> None:
        return None

    def _exit(self, span: Span) -> None:
        return None


#: process-wide disabled tracer (the default everywhere)
NULL_TRACER = NullTracer()
