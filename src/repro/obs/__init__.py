"""Observability: span-tree tracing, metrics, and benchmark exporters.

The paper's whole evaluation is argued in page-I/O counts and elapsed
time; this package makes those numbers inspectable *inside* a run:

* :mod:`repro.obs.tracer` — a :class:`Tracer` producing a span tree
  per join phase (wall time, I/O delta, buffer hits/misses), with a
  zero-cost :data:`NULL_TRACER` default;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters /
  gauges / histograms unifying ``IOStats``, the buffer pool, the fault
  injector and per-operator output cardinalities;
* :mod:`repro.obs.export` — JSON-lines trace dump, human-readable
  span-tree table, and the schema-checked ``BENCH_*.json`` summary
  writer (validated via ``python -m repro.obs FILE``).

Dependency-free by design (standard library only), like the rest of
the reproduction.
"""

from .export import (
    BENCH_SCHEMA,
    bench_summary,
    format_span_tree,
    spans_from_jsonl,
    trace_to_jsonl,
    validate_bench_summary,
    write_bench_summary,
    write_trace_jsonl,
)
from .metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "BENCH_SCHEMA",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "spans_from_jsonl",
    "format_span_tree",
    "bench_summary",
    "validate_bench_summary",
    "write_bench_summary",
]
