"""Exporters: JSON-lines traces, span-tree tables, BENCH summaries.

Three consumers, three formats:

* **JSON lines** (:func:`trace_to_jsonl` / :func:`spans_from_jsonl`) —
  one object per span with ``id``/``parent`` links, loss-lessly
  round-trippable, for offline analysis of a traced run;
* **span-tree table** (:func:`format_span_tree`) — the human-readable
  per-phase cost breakdown printed by ``python -m repro --trace``;
* **BENCH summary** (:func:`bench_summary` /
  :func:`write_bench_summary` / :func:`validate_bench_summary`) — the
  ``BENCH_<name>.json`` artifact a benchmark run leaves behind so the
  perf trajectory has machine-readable points.  The schema is checked
  on write and re-checkable in CI via ``python -m repro.obs``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..storage.stats import IOSnapshot
from .tracer import Span, Tracer

if TYPE_CHECKING:
    from ..join.base import JoinReport

__all__ = [
    "BENCH_SCHEMA",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "spans_from_jsonl",
    "format_span_tree",
    "bench_summary",
    "validate_bench_summary",
    "write_bench_summary",
]

#: schema tag stamped into (and required of) every BENCH_*.json
BENCH_SCHEMA = "repro.bench/v1"

_IO_FIELDS = ("reads", "writes", "random_reads", "allocations", "retries", "giveups")


def _roots_of(trace: Union[Tracer, Span, Sequence[Span]]) -> list[Span]:
    if isinstance(trace, Tracer):
        return list(trace.roots)
    if isinstance(trace, Span):
        return [trace]
    return list(trace)


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------
def trace_to_jsonl(trace: Union[Tracer, Span, Sequence[Span]]) -> str:
    """Serialise a span tree, one JSON object per line, pre-order."""
    lines: list[str] = []
    next_id = 0

    def dump(span: Span, parent: Optional[int]) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        record: dict[str, object] = {
            "id": span_id,
            "parent": parent,
            "name": span.name,
            "wall_seconds": span.wall_seconds,
            "buffer_hits": span.buffer_hits,
            "buffer_misses": span.buffer_misses,
            "attributes": span.attributes,
            "error": span.error,
        }
        for field in _IO_FIELDS:
            record[field] = getattr(span.io, field)
        lines.append(json.dumps(record, sort_keys=True, default=str))
        for child in span.children:
            dump(child, span_id)

    for root in _roots_of(trace):
        dump(root, None)
    return "\n".join(lines)


def write_trace_jsonl(
    trace: Union[Tracer, Span, Sequence[Span]], path: Union[str, Path]
) -> Path:
    """Write :func:`trace_to_jsonl` output to ``path``."""
    target = Path(path)
    text = trace_to_jsonl(trace)
    target.write_text(text + ("\n" if text else ""), encoding="utf-8")
    return target


def spans_from_jsonl(text: str) -> list[Span]:
    """Rebuild the span forest from :func:`trace_to_jsonl` output."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        span = Span(str(record["name"]))
        span.wall_seconds = float(record["wall_seconds"])
        span.buffer_hits = int(record["buffer_hits"])
        span.buffer_misses = int(record["buffer_misses"])
        span.attributes = dict(record["attributes"])
        span.error = record["error"]
        span.io = IOSnapshot(**{field: int(record[field]) for field in _IO_FIELDS})
        by_id[int(record["id"])] = span
        parent = record["parent"]
        if parent is None:
            roots.append(span)
        else:
            by_id[int(parent)].children.append(span)
    return roots


# ---------------------------------------------------------------------------
# span-tree table
# ---------------------------------------------------------------------------
def format_span_tree(trace: Union[Tracer, Span, Sequence[Span]]) -> str:
    """Render the span forest as an indented per-phase cost table."""
    headers = (
        "span", "wall_ms", "io", "reads", "writes",
        "rand", "hits", "misses", "notes",
    )
    rows: list[tuple[str, ...]] = []
    for root in _roots_of(trace):
        for depth, span in root.walk():
            notes = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            if span.error:
                notes = f"error={span.error}" + (f", {notes}" if notes else "")
            rows.append((
                "  " * depth + span.name,
                f"{span.wall_seconds * 1000.0:.2f}",
                str(span.io.total),
                str(span.io.reads),
                str(span.io.writes),
                str(span.io.random_reads),
                str(span.buffer_hits),
                str(span.buffer_misses),
                notes,
            ))
    if not rows:
        return "(no spans recorded)"
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        for column in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(width) for cell, width in zip(row[1:-1], widths[1:-1])]
        cells.append(row[-1])
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# BENCH_*.json summaries
# ---------------------------------------------------------------------------
def bench_summary(
    name: str,
    entries: Iterable[tuple[str, str, "JoinReport"]],
    metrics: Optional[dict[str, object]] = None,
) -> dict[str, object]:
    """Build a ``BENCH_<name>.json``-compatible summary.

    ``entries`` are ``(algorithm_label, dataset, report)`` triples —
    one per benchmarked operator run.  ``metrics`` is an optional
    :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` payload.
    """
    algorithms: list[dict[str, object]] = []
    for label, dataset, report in entries:
        total = report.total_io
        algorithms.append({
            "name": label,
            "dataset": dataset,
            "total_io": total.total,
            "reads": total.reads,
            "writes": total.writes,
            "random_reads": total.random_reads,
            "wall_seconds": report.wall_seconds,
            "results": report.result_count,
            "false_hits": report.false_hits,
            "buffer_hits": report.buffer_hits,
            "buffer_misses": report.buffer_misses,
        })
    return {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "algorithms": algorithms,
        "metrics": dict(metrics) if metrics else {},
    }


_ALGO_INT_KEYS = (
    "total_io", "reads", "writes", "random_reads",
    "results", "false_hits", "buffer_hits", "buffer_misses",
)


def validate_bench_summary(data: object) -> list[str]:
    """Schema-check a BENCH summary; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"summary must be a JSON object, got {type(data).__name__}"]
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    if not isinstance(data.get("bench"), str) or not data.get("bench"):
        problems.append("bench must be a non-empty string")
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    algorithms = data.get("algorithms")
    if not isinstance(algorithms, list) or not algorithms:
        problems.append("algorithms must be a non-empty list")
        return problems
    for index, entry in enumerate(algorithms):
        where = f"algorithms[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            problems.append(f"{where}.name must be a non-empty string")
        if not isinstance(entry.get("dataset"), str):
            problems.append(f"{where}.dataset must be a string")
        for key in _ALGO_INT_KEYS:
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"{where}.{key} must be a non-negative integer")
        wall = entry.get("wall_seconds")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
            problems.append(f"{where}.wall_seconds must be a non-negative number")
    return problems


def write_bench_summary(
    summary: dict[str, object], path: Union[str, Path]
) -> Path:
    """Validate and write a BENCH summary; raises ``ValueError`` if invalid."""
    problems = validate_bench_summary(summary)
    if problems:
        raise ValueError(
            "refusing to write an invalid BENCH summary:\n  " + "\n  ".join(problems)
        )
    target = Path(path)
    target.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return target
