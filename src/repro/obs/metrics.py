"""Metrics registry: one namespace for every counter the system keeps.

:class:`IOStats`, the buffer pool's hit/miss counters, the fault
injector's retry/giveup tallies and per-operator output cardinalities
each live on their own object; :class:`MetricsRegistry` unifies them
behind three metric kinds —

* :class:`Counter` — monotonically increasing integer (``inc``);
* :class:`Gauge` — last-written float (``set``);
* :class:`Histogram` — bucketed distribution (``observe``), used for
  seek distances and per-run I/O;

— plus ``record_*`` adapters that fold the existing sources in.  A
registry can also :meth:`~MetricsRegistry.attach_disk` to a
:class:`~repro.storage.disk.DiskManager` to observe every page transfer
live (per-op counters and a seek-distance histogram, the observable
behind the sequential/random split).

Everything is dependency-free and renders to a plain dict
(:meth:`~MetricsRegistry.as_dict`) for the JSON exporters.

Every metric is **thread-safe**: ``inc``/``set``/``observe`` are
read-modify-write sequences (``self.value += amount`` is three
bytecodes), so two threads incrementing the same counter can lose
updates without a lock.  The service tier hammers one registry from
many concurrent queries; each metric therefore carries its own lock
and the registry guards its name table, so concurrent totals are
exact (see tests/test_concurrency.py).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional, Sequence, TypeVar, Union, cast

from ..storage.stats import IOSnapshot

if TYPE_CHECKING:
    from ..core.update import UpdateStats
    from ..join.base import JoinReport
    from ..storage.buffer import BufferManager
    from ..storage.disk import DiskManager
    from ..storage.faults import FaultStats

__all__ = ["Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry"]


class Counter:
    """Monotonic integer counter (thread-safe)."""

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_value(self) -> object:
        return self.value


class Gauge:
    """Last-written float value (thread-safe)."""

    kind = "gauge"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        """Atomic read-modify-write delta (per-tenant accumulators)."""
        with self._lock:
            self.value += amount

    def as_value(self) -> object:
        return self.value


#: default histogram bucket upper bounds (page distances / page counts)
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096)


class Histogram:
    """Fixed-bucket histogram with count/total/min/max (thread-safe)."""

    kind = "histogram"
    __slots__ = (
        "name", "bounds", "bucket_counts", "count", "total", "min", "max",
        "_lock",
    )

    def __init__(self, name: str, bounds: Sequence[int] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # one count per bound plus the overflow bucket
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_value(self) -> object:
        buckets: dict[str, int] = {
            f"<={bound}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
        }
        buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": buckets,
        }


Metric = Union[Counter, Gauge, Histogram]

_M = TypeVar("_M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named metrics plus adapters for the system's existing counters."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._disk_head: int = -1
        # registry lock: guards the name table (get-or-create races) and
        # the disk-head position of the attach_disk observer; individual
        # metric mutation is covered by the per-metric locks.
        self._lock = threading.RLock()

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram(name, bounds))

    def _get_or_create(self, name: str, fresh: _M) -> _M:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                self._metrics[name] = fresh
                return fresh
        if existing.kind != fresh.kind:
            raise ValueError(
                f"metric {name!r} already registered as a {existing.kind}, "
                f"requested as a {fresh.kind}"
            )
        return cast("_M", existing)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- adapters over the existing observability sources ---------------
    def record_io(self, snapshot: IOSnapshot, prefix: str = "io") -> None:
        """Fold an :class:`IOSnapshot` (or delta) into counters."""
        self.counter(f"{prefix}.reads").inc(snapshot.reads)
        self.counter(f"{prefix}.writes").inc(snapshot.writes)
        self.counter(f"{prefix}.random_reads").inc(snapshot.random_reads)
        self.counter(f"{prefix}.sequential_reads").inc(snapshot.sequential_reads)
        self.counter(f"{prefix}.allocations").inc(snapshot.allocations)
        self.counter(f"{prefix}.retries").inc(snapshot.retries)
        self.counter(f"{prefix}.giveups").inc(snapshot.giveups)

    def record_buffer(self, bufmgr: "BufferManager") -> None:
        """Current buffer-pool hit/miss counts and hit rate, as gauges."""
        self.gauge("buffer.hits").set(bufmgr.hits)
        self.gauge("buffer.misses").set(bufmgr.misses)
        self.gauge("buffer.hit_rate").set(bufmgr.hit_rate)
        self.gauge("buffer.resident").set(bufmgr.num_resident)
        self.gauge("buffer.pinned").set(bufmgr.num_pinned)

    def record_update_stats(
        self, stats: "UpdateStats", codec: str = ""
    ) -> None:
        """Relabelling work done by updates, as idempotent gauges.

        ``codec`` scopes the names (``updates.<codec>.*``) so the
        update benchmark can record both backends side by side.
        """
        prefix = f"updates.{codec}" if codec else "updates"
        for name, value in stats.as_dict().items():
            self.gauge(f"{prefix}.{name}").set(float(value))
        self.gauge(f"{prefix}.relabelled_per_insert").set(
            stats.relabelled_per_insert
        )

    def record_fault_stats(self, stats: "FaultStats") -> None:
        """Injected-fault tallies (idempotent: gauges, not counters)."""
        self.gauge("faults.injected").set(stats.total_injected)
        self.gauge("faults.read_errors").set(stats.read_errors)
        self.gauge("faults.write_errors").set(stats.write_errors)
        self.gauge("faults.torn_reads").set(stats.torn_reads)

    def record_report(self, report: "JoinReport", dataset: str = "") -> None:
        """Per-operator output cardinality and I/O from a join report."""
        prefix = f"join.{report.algorithm}"
        self.counter(f"{prefix}.runs").inc()
        self.counter(f"{prefix}.results").inc(report.result_count)
        self.counter(f"{prefix}.false_hits").inc(report.false_hits)
        total = report.total_io
        self.counter(f"{prefix}.io").inc(total.total)
        self.counter(f"{prefix}.prep_io").inc(report.prep_io.total)
        self.counter(f"{prefix}.join_io").inc(report.join_io.total)
        self.counter(f"{prefix}.random_reads").inc(total.random_reads)
        self.counter(f"{prefix}.retries").inc(total.retries)
        self.counter(f"{prefix}.giveups").inc(total.giveups)
        self.counter(f"{prefix}.buffer_hits").inc(report.buffer_hits)
        self.counter(f"{prefix}.buffer_misses").inc(report.buffer_misses)
        self.histogram(f"{prefix}.io_per_run").observe(total.total)
        if dataset:
            self.counter(f"{prefix}.{dataset}.io").inc(total.total)

    def attach_disk(self, disk: "DiskManager") -> None:
        """Observe every page transfer of ``disk`` live.

        Registers per-operation counters (``disk.reads`` /
        ``disk.writes`` / ``disk.allocations``) and a seek-distance
        histogram (``disk.seek_distance``, in pages, 0 = the head did
        not move between consecutive transfers).
        """
        reads = self.counter("disk.reads")
        writes = self.counter("disk.writes")
        allocations = self.counter("disk.allocations")
        seeks = self.histogram("disk.seek_distance", (0, 1, 4, 16, 64, 256, 1024))

        def observe(operation: str, page_id: int) -> None:
            if operation == "read":
                reads.inc()
            elif operation == "write":
                writes.inc()
            else:
                allocations.inc()
                return  # allocations are not head movement
            with self._lock:
                if self._disk_head >= 0:
                    seeks.observe(abs(page_id - self._disk_head))
                self._disk_head = page_id

        disk.set_observer(observe)

    # -- export ----------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """Flat name -> value mapping (histograms expand to sub-dicts)."""
        return {name: self._metrics[name].as_value() for name in self.names()}

    def render(self) -> str:
        """Human-readable listing, one metric per line."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    f"{name:<40} histogram count={metric.count} "
                    f"mean={metric.mean:.1f} max={metric.max if metric.count else 0:.0f}"
                )
            else:
                value = metric.value
                rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
                lines.append(f"{name:<40} {metric.kind} {rendered}")
        return "\n".join(lines)
