"""Code-domain checker: no raw bit arithmetic on codes outside core/.

PBiTree codes, region codes (Lemma 3) and prefix codes (Lemma 4) are
all integers, and every conversion between them is a one-liner of shift
masks — which is exactly why hand-rolled conversions are dangerous: a
transposed shift produces a *valid-looking* code from the wrong domain
and a silently wrong join result.  All conversions must go through the
named helpers in :mod:`repro.core.pbitree` (``f_ancestor``,
``start_of`` / ``end_of``, ``prefix_of``, ``height_of``,
``coding_space_slice``, ...), where the algebra is stated once, next to
the lemma it implements, under property tests.

The checker flags bitwise ``<<``, ``>>`` and ``&`` expressions (and
their augmented-assignment forms) whose operands *name* a code value —
an identifier containing ``code``, ``prefix`` or ``pbi`` — in any
module outside ``repro/core``.  Test files are exempt, as is anything
carrying ``# repro: allow[code-domain]`` (for genuinely non-code uses
that happen to collide with the naming heuristic).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, SourceModule

__all__ = ["CodeDomainChecker"]

_BIT_OPS = (ast.LShift, ast.RShift, ast.BitAnd)
_CODE_MARKERS = ("code", "prefix", "pbi")


def _identifiers(node: ast.expr) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _mentions_code(*operands: ast.expr) -> str | None:
    for operand in operands:
        for identifier in _identifiers(operand):
            lowered = identifier.lower()
            for marker in _CODE_MARKERS:
                if marker in lowered:
                    return identifier
    return None


class CodeDomainChecker:
    name = "code-domain"
    description = "bit arithmetic on code values is confined to repro/core"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test or module.is_core:
            return
        flagged_lines: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _BIT_OPS):
                culprit = _mentions_code(node.left, node.right)
                op_node: ast.AST = node
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _BIT_OPS):
                target = node.target
                culprit = (
                    _mentions_code(target, node.value)
                    if isinstance(target, ast.expr)
                    else None
                )
                op_node = node
            else:
                continue
            if culprit is None or op_node.lineno in flagged_lines:
                continue
            flagged_lines.add(op_node.lineno)
            yield Finding(
                path=str(module.path),
                line=op_node.lineno,
                col=op_node.col_offset,
                checker=self.name,
                message=(
                    f"raw bit arithmetic on code value {culprit!r}: use the "
                    "Lemma 3/4 helpers in repro.core.pbitree instead"
                ),
            )
