"""View-escape checker: zero-copy page views must not outlive their pin.

The borrow contract of the batched hot path (DESIGN.md §13) is that a
page-array view — the ``memoryview("Q")`` handed out by
``RecordCodec.unpack_array`` / ``read_record_array`` and the scan
generators built on them — aliases a pinned buffer frame and dies with
the pin.  The runtime sanitizer (:mod:`repro.storage.sanitize`)
enforces this dynamically when enabled; this checker catches the same
bug class statically, at the *escape site* rather than at the eviction
that corrupts the data.

Per function, a simple forward taint analysis marks names bound to a
view source:

* calling a **value producer** (``read_record_array``, ``unpack_array``
  without ``copy=True``) taints the result;
* iterating an **iterator producer** (``scan_page_arrays``,
  ``scan_code_arrays`` without ``copy=True``) in a ``for`` taints the
  loop variable;
* taint flows through plain assignment/aliasing, ``typing.cast``,
  and *slice* subscripts (a sub-view is still a view; a scalar index
  extracts an int and is clean).

A tainted value reaching any of these sinks is flagged:

* stored to an attribute or a subscript (``self._page = view``,
  ``cache[k] = view``) — the container outlives the pin;
* ``return``/``yield`` of a tainted value, unless the enclosing
  function is itself a sanctioned producer (the re-yield wrappers
  ``scan_page_arrays``/``scan_code_arrays`` and the decode primitives
  ``unpack_array``/``read_record_array``), in which case the borrow
  contract transfers to *its* caller;
* ``.append``/``.add``/``.insert`` of a tainted value into a container;
* collecting an iterator producer with ``list``/``tuple``/``set``/
  ``sorted`` (every view in the list is already dead);
* materialising a comprehension whose element is tainted;
* a nested ``def``/``lambda`` capturing a tainted name — the closure
  can run after the pin is gone.

Taking ownership kills taint: ``owned_u64_array(view)``, ``list(view)``,
``array("Q", view)``, ``.tolist()``, ``bytes(view)`` and friends all
copy the elements, so their results are unconstrained.  Passing a view
as a plain call argument is deliberately *not* a sink (the batched
kernels consume views in-call by design); a callee that stashes its
argument is the runtime sanitizer's job to catch.  Deliberate
exceptions carry ``# repro: allow[view-escape]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, SourceModule

__all__ = ["ViewEscapeChecker"]

#: calls returning one view per call
_VALUE_PRODUCERS = {"read_record_array", "unpack_array"}
#: generators yielding one borrowed view per iteration
_ITER_PRODUCERS = {"scan_page_arrays", "scan_code_arrays"}
#: functions allowed to return/yield a view: the producers themselves
#: (their callers inherit the borrow contract)
_SANCTIONED_ESCAPES = _VALUE_PRODUCERS | _ITER_PRODUCERS
#: constructors/helpers whose result owns a copy of the elements
_COPY_KILLERS = {
    "list",
    "tuple",
    "set",
    "frozenset",
    "sorted",
    "array",
    "bytes",
    "bytearray",
    "owned_u64_array",
    "len",
    "sum",
    "min",
    "max",
}
#: methods on a view whose result owns its data
_COPY_METHODS = {"tolist", "tobytes", "hex"}
#: container methods that store their argument
_STORE_METHODS = {"append", "add", "insert", "appendleft", "put"}
#: eager collectors that materialise an iterator producer
_EAGER_COLLECTORS = {"list", "tuple", "set", "sorted"}

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.Lambda,)


def _call_name(call: ast.Call) -> str | None:
    """The trailing identifier of the called expression."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _copies_out(call: ast.Call) -> bool:
    """True when the producer call yields owned copies (``copy=True``)."""
    for keyword in call.keywords:
        if keyword.arg == "copy" and (
            not isinstance(keyword.value, ast.Constant)
            or keyword.value.value
        ):
            return True
    return any(
        isinstance(arg, ast.Constant) and arg.value is True
        for arg in call.args
    )


def _is_value_producer(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node) in _VALUE_PRODUCERS
    )


def _is_iter_producer(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node) in _ITER_PRODUCERS
        and not _copies_out(node)
    )


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _Taint:
    """Tainted-name set for one function scope."""

    def __init__(self, names: set[str]) -> None:
        self.names = names

    def expr(self, node: ast.expr) -> bool:
        """Is this expression a (possibly derived) page view?"""
        if isinstance(node, ast.Name):
            return node.id in self.names
        if _is_value_producer(node):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            # typing.cast(T, x) is a type-level no-op: taint passes
            if name == "cast" and len(node.args) == 2:
                return self.expr(node.args[1])
            # everything else — copy killers, kernels, methods — is
            # treated as consuming its arguments (runtime's job if not)
            return False
        if isinstance(node, ast.Subscript):
            # a slice of a view is a derived sub-view; a scalar index
            # extracts an int
            if isinstance(node.slice, ast.Slice):
                return self.expr(node.value)
            return False
        if isinstance(node, ast.IfExp):
            return self.expr(node.body) or self.expr(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.expr(element) for element in node.elts)
        return False


class ViewEscapeChecker:
    name = "view-escape"
    description = "zero-copy page views must not outlive their pin"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, _FUNCTION_NODES):
                yield from self._check_function(module, node)

    # ------------------------------------------------------------------
    def _check_function(
        self, module: SourceModule, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        taint = _Taint(self._tainted_names(function))
        sanctioned = function.name in _SANCTIONED_ESCAPES
        for node in _walk_scope(function):
            yield from self._check_node(module, node, taint, sanctioned)
            if isinstance(node, _SCOPE_NODES):
                # closure capture: the nested scope may run after the
                # pin is released, so no tainted free variable may leak
                captured = sorted(
                    {
                        inner.id
                        for inner in ast.walk(node)
                        if isinstance(inner, ast.Name)
                        and isinstance(inner.ctx, ast.Load)
                        and inner.id in taint.names
                        and not self._binds_locally(node, inner.id)
                    }
                )
                if captured:
                    yield self._finding(
                        module,
                        node,
                        f"closure captures page view(s) {', '.join(captured)}: "
                        "the view dies with its pin; copy first "
                        "(owned_u64_array)",
                    )

    def _tainted_names(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Fixpoint over assignments/for-targets (no kills: conservative)."""
        names: set[str] = set()
        taint = _Taint(names)
        changed = True
        while changed:
            changed = False
            for node in _walk_scope(function):
                if isinstance(node, ast.Assign) and taint.expr(node.value):
                    for target in node.targets:
                        changed |= self._bind(names, target)
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None and taint.expr(node.value):
                        changed |= self._bind(names, node.target)
                elif isinstance(node, ast.NamedExpr) and taint.expr(node.value):
                    changed |= self._bind(names, node.target)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if _is_iter_producer(node.iter):
                        changed |= self._bind(names, node.target)
                elif isinstance(node, ast.withitem):
                    if node.optional_vars is not None and taint.expr(
                        node.context_expr
                    ):
                        changed |= self._bind(names, node.optional_vars)
        return names

    @staticmethod
    def _bind(names: set[str], target: ast.expr) -> bool:
        if isinstance(target, ast.Name) and target.id not in names:
            names.add(target.id)
            return True
        return False

    @staticmethod
    def _binds_locally(scope: ast.AST, name: str) -> bool:
        """Does the nested scope bind ``name`` itself (param or local)?"""
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            arguments = scope.args
            for arg in (
                arguments.posonlyargs
                + arguments.args
                + arguments.kwonlyargs
                + ([arguments.vararg] if arguments.vararg else [])
                + ([arguments.kwarg] if arguments.kwarg else [])
            ):
                if arg.arg == name:
                    return True
        for inner in ast.walk(scope):
            if (
                isinstance(inner, ast.Name)
                and isinstance(inner.ctx, ast.Store)
                and inner.id == name
            ):
                return True
        return False

    # ------------------------------------------------------------------
    def _check_node(
        self,
        module: SourceModule,
        node: ast.AST,
        taint: _Taint,
        sanctioned: bool,
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Assign) and taint.expr(node.value):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    yield self._finding(
                        module,
                        node,
                        "page view stored past its pin (attribute/container "
                        "assignment): copy with owned_u64_array or use "
                        "copy=True",
                    )
                    break
        elif isinstance(node, ast.AnnAssign):
            if (
                node.value is not None
                and taint.expr(node.value)
                and isinstance(node.target, (ast.Attribute, ast.Subscript))
            ):
                yield self._finding(
                    module,
                    node,
                    "page view stored past its pin (attribute/container "
                    "assignment): copy with owned_u64_array or use copy=True",
                )
        elif isinstance(node, ast.Return):
            if (
                node.value is not None
                and taint.expr(node.value)
                and not sanctioned
            ):
                yield self._finding(
                    module,
                    node,
                    "page view returned from a non-producer function: the "
                    "caller outlives the pin; return an owned copy",
                )
        elif isinstance(node, ast.Yield):
            if (
                node.value is not None
                and taint.expr(node.value)
                and not sanctioned
            ):
                yield self._finding(
                    module,
                    node,
                    "page view yielded from a non-producer generator: the "
                    "consumer may outlive the pin; yield an owned copy",
                )
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if (
                name in _STORE_METHODS
                and isinstance(node.func, ast.Attribute)
                and any(taint.expr(arg) for arg in node.args)
            ):
                yield self._finding(
                    module,
                    node,
                    f"page view stored via .{name}(): the container outlives "
                    "the pin; use .extend() (copies elements) or an owned "
                    "copy",
                )
            elif name in _EAGER_COLLECTORS and any(
                _is_iter_producer(arg) for arg in node.args
            ):
                yield self._finding(
                    module,
                    node,
                    f"{name}() materialises a borrowed-view scan: every "
                    "collected view is already unpinned; scan with "
                    "copy=True instead",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            names = set(taint.names)
            for comp in node.generators:
                if _is_iter_producer(comp.iter):
                    self._bind(names, comp.target)
            inner = _Taint(names)
            elements = (
                [node.key, node.value]
                if isinstance(node, ast.DictComp)
                else [node.elt]
            )
            if any(inner.expr(element) for element in elements):
                yield self._finding(
                    module,
                    node,
                    "comprehension collects page views past their pins; "
                    "copy each page (owned_u64_array) or scan with "
                    "copy=True",
                )

    def _finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            checker=self.name,
            message=message,
        )
