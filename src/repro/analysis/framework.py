"""AST checker framework: findings, suppressions, file walking.

A checker is a small class with a ``name``, a one-line ``description``,
and a ``check(module)`` generator yielding :class:`Finding` objects.
The framework owns everything else: discovering files, parsing them
once into a :class:`SourceModule` (AST + parent links + suppression
table), filtering suppressed findings, and rendering results.

Suppression syntax — on the offending line::

    frame = heap.bufmgr.pin(page_id)  # repro: allow[pin-discipline]

``allow[a, b]`` waives several checkers at once; ``allow[*]`` waives
all of them.  Suppressions are deliberately line-scoped so a waiver
cannot silently cover new code added nearby.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol

__all__ = [
    "Finding",
    "SourceModule",
    "Checker",
    "all_checkers",
    "iter_python_files",
    "load_module",
    "run_checks",
]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")

# directory names never descended into
_SKIP_DIRS = {"__pycache__", "analysis_fixtures", ".git", ".venv", "build", "dist"}


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, addressable as ``path:line:col``."""

    path: str
    line: int
    col: int
    checker: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.checker}] {self.message}"


@dataclass
class SourceModule:
    """A parsed source file plus the per-line suppression table."""

    path: Path
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)

    @property
    def is_test(self) -> bool:
        """Test code is exempt from the style-level checkers."""
        name = self.path.name
        return (
            name.startswith("test_")
            or name == "conftest.py"
            or "tests" in self.path.parts
        )

    @property
    def is_core(self) -> bool:
        """Inside ``repro/core`` — the only home for raw code arithmetic."""
        parts = self.path.parts
        for i, part in enumerate(parts[:-1]):
            if part == "repro" and parts[i + 1] == "core":
                return True
        return False

    def suppressed(self, line: int, checker: str) -> bool:
        allowed = self.suppressions.get(line)
        if allowed is None:
            return False
        return "*" in allowed or checker in allowed

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk parent links from ``node`` (exclusive) up to the module."""
        current = self._parents.get(id(node))
        while current is not None:
            yield current
            current = self._parents.get(id(current))


class Checker(Protocol):
    """Minimal checker interface; implementations are stateless."""

    name: str
    description: str

    def check(self, module: SourceModule) -> Iterator[Finding]: ...


def _collect_suppressions(text: str) -> dict[int, frozenset[str]]:
    table: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            names = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if names:
                table[token.start[0]] = names
    except tokenize.TokenError:
        pass  # syntax problems surface as parse errors instead
    return table


def load_module(path: Path) -> SourceModule:
    """Parse ``path`` into a checkable module (raises ``SyntaxError``)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    module = SourceModule(
        path=path,
        text=text,
        tree=tree,
        suppressions=_collect_suppressions(text),
    )
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            module._parents[id(child)] = parent
    return module


def iter_python_files(roots: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``roots`` in deterministic order."""
    seen: set[Path] = set()
    for root in roots:
        if root.is_file():
            if root.suffix == ".py" and root not in seen:
                seen.add(root)
                yield root
            continue
        for path in sorted(root.rglob("*.py")):
            parts = set(path.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(part.startswith(".") for part in path.parts[1:]):
                continue
            if path not in seen:
                seen.add(path)
                yield path


def run_checks(
    roots: Iterable[Path],
    checkers: Iterable[Checker],
) -> tuple[list[Finding], list[str]]:
    """Run ``checkers`` over every file under ``roots``.

    Returns ``(findings, errors)`` where ``errors`` are files that
    failed to parse (reported rather than crashing the whole run).
    """
    checker_list = list(checkers)
    findings: list[Finding] = []
    errors: list[str] = []
    for path in iter_python_files(roots):
        try:
            module = load_module(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{path}: unparseable: {exc}")
            continue
        for checker in checker_list:
            for finding in checker.check(module):
                if not module.suppressed(finding.line, finding.checker):
                    findings.append(finding)
    findings.sort()
    return findings, errors


def all_checkers() -> list[Checker]:
    """The default checker suite, in documentation order."""
    from .annotations import AnnotationChecker
    from .code_domain import CodeDomainChecker
    from .exports import ExportChecker
    from .pin_discipline import PinDisciplineChecker
    from .span_discipline import SpanDisciplineChecker
    from .view_escape import ViewEscapeChecker

    return [
        PinDisciplineChecker(),
        ViewEscapeChecker(),
        SpanDisciplineChecker(),
        CodeDomainChecker(),
        ExportChecker(),
        AnnotationChecker(),
    ]
