"""Project-specific static analysis for the PBiTree reproduction.

The coding core juggles three interchangeable ``int`` representations —
in-order PBiTree codes, region codes (Lemma 3), and prefix codes
(Lemma 4) — and the storage layer runs on a pin/unpin buffer-pool
contract.  Both invariants were historically audited by hand; this
package turns them into machine checks that run locally
(``python -m repro.analysis src tests``) and in CI.

Checkers
--------
``pin-discipline``
    Every ``BufferManager.pin()`` / ``new_page()`` must release its
    frame on *all* paths: a ``with`` block, a ``try/finally`` with
    ``unpin``, or an ownership escape to an attribute whose holder
    releases it elsewhere.
``code-domain``
    Raw bit arithmetic (``<<``, ``>>``, ``&``) on code-valued operands
    is forbidden outside ``core/``; conversions must go through the
    Lemma 3/4 helpers in :mod:`repro.core.pbitree`.
``exports``
    ``__all__`` and the module's public definitions must agree.
``annotations``
    The public API must be fully annotated so the ``PBiCode`` /
    ``RegionCode`` / ``PrefixCode`` domain separation is enforceable.
``view-escape``
    Zero-copy page-array views (the batched hot path's borrows of
    pinned frames) must not be stored, returned, yielded or captured
    past their pin; take ownership with ``owned_u64_array`` or
    ``copy=True`` instead.
``span-discipline``
    Tracer spans must be entered and closed on every path — the
    pin-discipline leak shape applied to the observability layer.

Findings can be locally waived with ``# repro: allow[checker-name]``
on the offending line; see ``docs/static-analysis.md``.
"""

from .framework import (
    Checker,
    Finding,
    SourceModule,
    all_checkers,
    iter_python_files,
    load_module,
    run_checks,
)

__all__ = [
    "Checker",
    "Finding",
    "SourceModule",
    "all_checkers",
    "iter_python_files",
    "load_module",
    "run_checks",
]
