"""Span-discipline checker: every opened span must be closed on every path.

The tracing contract (docs/observability.md) is that a
:class:`~repro.obs.tracer.Span` returned by ``tracer.span(...)`` or a
join algorithm's ``self.trace(...)`` helper is entered and exited
exactly once — an abandoned span either never records its duration or,
worse, stays on the tracer's open-span stack and corrupts the nesting
of every span opened after it.  The same leak shape as a pin without
an unpin, so this checker mirrors :mod:`.pin_discipline`.

A span-producing call is accepted when the span provably closes:

* it is the context expression of a ``with`` statement
  (``with self.trace("x"):`` — the idiomatic form);
* its result is assigned to an *attribute* — ownership escapes to an
  object whose own lifecycle closes it;
* it is directly ``return``-ed — ownership escapes to the caller
  (the ``JoinAlgorithm.trace`` helper itself);
* its result is assigned to a name that is later the context
  expression of a ``with`` (``root = tracer.span(...)`` ...
  ``with root:``);
* its result is assigned to a name whose ``__exit__`` is called inside
  some ``finally`` block of the same function (the manual
  ``__enter__``/``try``/``finally __exit__`` shape the parallel fan-out
  uses when the span is conditional).

Anything else is flagged.  Deliberate exceptions carry
``# repro: allow[span-discipline]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, SourceModule
from .pin_discipline import _FUNCTION_NODES, _receiver_names

__all__ = ["SpanDisciplineChecker"]

#: ``.span(...)`` on anything tracer-ish, or the join-base ``self.trace``
_TRACER_HINTS = ("trace",)


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "span":
        return any(
            "trace" in name.lower() for name in _receiver_names(func.value)
        )
    if func.attr == "trace":
        # JoinAlgorithm.trace(...) — a span factory on self
        return isinstance(func.value, ast.Name) and func.value.id == "self"
    return False


def _assigned_name(stmt: ast.stmt) -> str | None:
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return stmt.target.id
    return None


def _enclosing_function(
    module: SourceModule, node: ast.AST
) -> ast.AST | None:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, _FUNCTION_NODES + (ast.Module,)):
            return ancestor
    return None


def _name_entered_by_with(scope: ast.AST, name: str) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.withitem):
            context = node.context_expr
            if isinstance(context, ast.Name) and context.id == name:
                return True
    return False


def _name_exited_in_finally(scope: ast.AST, name: str) -> bool:
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for inner in ast.walk(stmt):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "__exit__"
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id == name
                ):
                    return True
    return False


class SpanDisciplineChecker:
    name = "span-discipline"
    description = "tracer spans must be entered and closed on every path"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_span_call(node):
                continue
            if self._is_guarded(module, node):
                continue
            yield Finding(
                path=str(module.path),
                line=node.lineno,
                col=node.col_offset,
                checker=self.name,
                message=(
                    "span is not closed on every path: use `with`, "
                    "return it, or guard the manual __enter__ with "
                    "try/finally + __exit__"
                ),
            )

    def _is_guarded(self, module: SourceModule, call: ast.Call) -> bool:
        stmt: ast.stmt | None = None
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.withitem):
                return True
            if isinstance(ancestor, ast.stmt):
                stmt = ancestor
                break
        if stmt is None:
            return False

        # ownership escapes to the caller (the span-factory helpers)
        if isinstance(stmt, ast.Return):
            return True

        # ownership escapes to an object with its own lifecycle
        if isinstance(stmt, ast.Assign) and all(
            isinstance(target, ast.Attribute) for target in stmt.targets
        ):
            return True
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Attribute
        ):
            return True

        # name binding: accept `with name:` or a finally `name.__exit__`
        # anywhere in the same function
        name = _assigned_name(stmt)
        if name is not None:
            scope = _enclosing_function(module, stmt)
            if scope is not None and (
                _name_entered_by_with(scope, name)
                or _name_exited_in_finally(scope, name)
            ):
                return True
        return False
