"""Export-consistency checker: ``__all__`` must match the public API.

Two failure directions, both real maintenance hazards in a package
whose modules are re-exported through layer ``__init__`` files:

* a name listed in ``__all__`` that is not defined makes
  ``from module import *`` raise at import time — but only for star
  importers, so it can lie dormant;
* a public top-level ``def`` / ``class`` missing from ``__all__``
  silently drops out of the star-import surface and of
  ``help(module)``-driven discovery.

Modules that do not declare ``__all__`` are left alone (their public
surface is implicitly "everything without an underscore").  Variables
are only checked in the ``__all__``-to-definition direction: module
constants are often intentionally unexported.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, SourceModule

__all__ = ["ExportChecker"]


def _literal_names(node: ast.expr) -> list[tuple[str, int]] | None:
    """Extract ``__all__`` entries; ``None`` if it isn't a literal list."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names: list[tuple[str, int]] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append((element.value, element.lineno))
        else:
            return None
    return names


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module body, descending through top-level ``if`` / ``try`` guards."""
    pending: list[ast.stmt] = list(tree.body)
    while pending:
        stmt = pending.pop(0)
        if isinstance(stmt, ast.If):
            pending.extend(stmt.body)
            pending.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            pending.extend(stmt.body)
            for handler in stmt.handlers:
                pending.extend(handler.body)
            pending.extend(stmt.orelse)
            pending.extend(stmt.finalbody)
        else:
            yield stmt


class ExportChecker:
    name = "exports"
    description = "__all__ agrees with the module's public definitions"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        declared: list[tuple[str, int]] | None = None
        declared_line = 0
        defined: dict[str, int] = {}
        public_defs: dict[str, int] = {}

        for stmt in _top_level_statements(module.tree):
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                defined[stmt.name] = stmt.lineno
                if not stmt.name.startswith("_"):
                    public_defs[stmt.name] = stmt.lineno
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            declared = _literal_names(stmt.value)
                            declared_line = stmt.lineno
                        else:
                            defined[target.id] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    defined[stmt.target.id] = stmt.lineno
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    name = alias.asname or alias.name.split(".")[0]
                    defined[name] = stmt.lineno

        if declared is None:
            return

        declared_names = {name for name, _ in declared}
        for name, line in declared:
            if name not in defined:
                yield Finding(
                    path=str(module.path),
                    line=line,
                    col=0,
                    checker=self.name,
                    message=f"__all__ entry {name!r} is not defined in this module",
                )
        for name, line in sorted(public_defs.items(), key=lambda kv: kv[1]):
            if name not in declared_names:
                yield Finding(
                    path=str(module.path),
                    line=line,
                    col=0,
                    checker=self.name,
                    message=(
                        f"public definition {name!r} is missing from __all__ "
                        f"(declared at line {declared_line})"
                    ),
                )
