"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings, 2 parse/usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .framework import Checker, all_checkers, run_checks

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the PBiTree invariant checkers over a source tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--checker",
        action="append",
        metavar="NAME",
        help="run only the named checker(s); repeatable",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_checkers",
        help="list available checkers and exit",
    )
    options = parser.parse_args(argv)

    checkers: list[Checker] = all_checkers()
    if options.list_checkers:
        for checker in checkers:
            print(f"{checker.name:16s} {checker.description}")
        return 0

    if options.checker:
        known = {checker.name: checker for checker in checkers}
        unknown = [name for name in options.checker if name not in known]
        if unknown:
            print(
                f"unknown checker(s): {', '.join(unknown)} "
                f"(have: {', '.join(known)})",
                file=sys.stderr,
            )
            return 2
        checkers = [known[name] for name in options.checker]

    roots = [Path(path) for path in options.paths]
    missing = [str(root) for root in roots if not root.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings, errors = run_checks(roots, checkers)
    for error in errors:
        print(error, file=sys.stderr)
    for finding in findings:
        print(finding.render())
    if findings:
        plural = "s" if len(findings) != 1 else ""
        print(f"\n{len(findings)} finding{plural}", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
