"""Annotation-coverage checker: the public API must be fully typed.

The ``PBiCode`` / ``RegionCode`` / ``PrefixCode`` domain separation
(``core/pbitree.py``) only bites where signatures are annotated — an
untyped public function is a hole through which a region code can flow
into a slot expecting an in-order code without any tool noticing.
``mypy --strict`` enforces this in CI, but mypy is not guaranteed to be
installed in every dev environment; this checker is the dependency-free
subset that always runs with ``python -m repro.analysis``.

Rule: every *public* top-level function, and every public method
(including dunders) of a public class, must annotate all parameters
(``self`` / ``cls`` excepted) and the return type.  Names with a single
leading underscore are internal and exempt; nested functions are
exempt; test files are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, SourceModule

__all__ = ["AnnotationChecker"]

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_public(name: str) -> bool:
    if not name.startswith("_"):
        return True
    return name.startswith("__") and name.endswith("__")


def _missing_annotations(
    func: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> list[str]:
    missing: list[str] = []
    args = func.args
    positional = args.posonlyargs + args.args
    for index, arg in enumerate(positional):
        if is_method and index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if func.returns is None:
        missing.append("return")
    return missing


class AnnotationChecker:
    name = "annotations"
    description = "public functions and methods carry full type annotations"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        for stmt in module.tree.body:
            if isinstance(stmt, _FuncDef) and _is_public(stmt.name):
                yield from self._check_func(module, stmt, is_method=False)
            elif isinstance(stmt, ast.ClassDef) and _is_public(stmt.name):
                for member in stmt.body:
                    if isinstance(member, _FuncDef) and _is_public(member.name):
                        is_static = any(
                            isinstance(dec, ast.Name) and dec.id == "staticmethod"
                            for dec in member.decorator_list
                        )
                        yield from self._check_func(
                            module,
                            member,
                            is_method=not is_static,
                            owner=stmt.name,
                        )

    def _check_func(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
        owner: str | None = None,
    ) -> Iterator[Finding]:
        missing = _missing_annotations(func, is_method)
        if not missing:
            return
        qualname = f"{owner}.{func.name}" if owner else func.name
        yield Finding(
            path=str(module.path),
            line=func.lineno,
            col=func.col_offset,
            checker=self.name,
            message=(
                f"public API {qualname!r} is missing annotations for: "
                + ", ".join(missing)
            ),
        )
