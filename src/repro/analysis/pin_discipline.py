"""Pin-discipline checker: every pin must be released on every path.

The buffer-pool contract (DESIGN.md §7) is that a frame returned by
``BufferManager.pin()`` or ``new_page()`` stays pinned — and therefore
unevictable — until ``unpin()`` runs.  PR 1 fixed four leaks of this
shape by hand (``heapfile``, ``mhcj``, ``vpj``, ``external_sort``):
code that pinned, did fallible work, and unpinned on the straight-line
path only, so a mid-join ``StorageFault`` left the frame pinned and
masked the real error with "cannot evict" noise.

A pin-producing call is accepted when the frame provably escapes or is
provably released:

* it is the context expression of a ``with`` statement;
* its result is assigned to an *attribute* (``self._frame = ...``) —
  ownership escapes to an object whose own lifecycle releases it;
* some enclosing ``try`` (or a ``try`` that follows the pin in the same
  or an enclosing block) has ``unpin`` in its ``finally`` — this shape
  covers the idiomatic pin-then-guard::

      try:
          frame = bufmgr.pin(page_id)
      except StorageFault as fault:
          fault.add_context(...)
          raise
      try:
          ...use frame...
      finally:
          bufmgr.unpin(page_id)

Anything else is flagged.  Deliberate exceptions (e.g. a writer resume
path that conditionally adopts the frame) carry
``# repro: allow[pin-discipline]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, SourceModule

__all__ = ["PinDisciplineChecker"]

_PIN_METHODS = {"pin", "new_page"}
_RECEIVER_HINTS = ("buf", "pool")
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _receiver_names(node: ast.expr) -> Iterator[str]:
    """Identifiers along a dotted receiver, e.g. ``heap.bufmgr`` -> both."""
    while isinstance(node, ast.Attribute):
        yield node.attr
        node = node.value
    if isinstance(node, ast.Name):
        yield node.id


def _is_pin_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _PIN_METHODS:
        return False
    return any(
        hint in name.lower()
        for name in _receiver_names(func.value)
        for hint in _RECEIVER_HINTS
    )


def _releases_pin(nodes: list[ast.stmt]) -> bool:
    """True if the statement list contains an ``unpin`` call."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unpin"
            ):
                return True
    return False


def _is_guarding_try(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.Try) and _releases_pin(stmt.finalbody)


def _blocks_of(node: ast.AST) -> Iterator[list[ast.stmt]]:
    for _, value in ast.iter_fields(node):
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            yield value


class PinDisciplineChecker:
    name = "pin-discipline"
    description = "pin()/new_page() frames must be released on every path"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_pin_call(node):
                continue
            if self._is_guarded(module, node):
                continue
            method = node.func.attr if isinstance(node.func, ast.Attribute) else "pin"
            yield Finding(
                path=str(module.path),
                line=node.lineno,
                col=node.col_offset,
                checker=self.name,
                message=(
                    f"{method}() result is not released on every path: "
                    "use `with`, assign to an owning attribute, or "
                    "guard with try/finally + unpin"
                ),
            )

    def _is_guarded(self, module: SourceModule, call: ast.Call) -> bool:
        # climb from the call to its enclosing statement, watching for
        # a `with` item on the way up
        stmt: ast.stmt | None = None
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.withitem):
                return True
            if isinstance(ancestor, ast.stmt):
                stmt = ancestor
                break
        if stmt is None:
            return False

        # ownership escape: the frame is stored on an object that
        # releases it in its own lifecycle (writer close, destructor)
        if isinstance(stmt, ast.Assign) and all(
            isinstance(target, ast.Attribute) for target in stmt.targets
        ):
            return True
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Attribute):
            return True

        # try/finally with unpin: either enclosing the pin, or appearing
        # later in the same (or an enclosing) block within this function
        chain: list[ast.stmt] = [stmt]
        for ancestor in module.ancestors(stmt):
            if isinstance(ancestor, ast.Try) and _releases_pin(ancestor.finalbody):
                return True
            if isinstance(ancestor, _FUNCTION_NODES + (ast.Module,)):
                break
            if isinstance(ancestor, ast.stmt):
                chain.append(ancestor)

        for link in chain:
            parent = module.parent(link)
            if parent is None:
                continue
            for block in _blocks_of(parent):
                if link not in block:
                    continue
                index = block.index(link)
                if any(_is_guarding_try(later) for later in block[index + 1 :]):
                    return True
        return False
