"""External merge sort over heap files.

The cost of sorting two unsorted element sets on the fly is what the
paper charges the region-code algorithms with (Section 3.4.1 / 4): an
external sort of ``||R||`` pages with ``b`` buffer pages costs roughly
``2 * ||R|| * ceil(log_{b-1}(||R||/b) + 1)`` page transfers.  This
implementation:

* builds initial runs of ``b`` pages each (read ``b`` pages, sort in
  memory, write a run);
* merges up to ``b - 1`` runs at a time, one input page pinned per run
  plus one output page, until a single run remains.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Optional, Sequence

from ..core import batch, pbitree
from ..storage.buffer import BufferManager
from ..storage.elementset import ElementSet
from ..storage.heapfile import HeapFile

__all__ = [
    "bulk_doc_order_keys",
    "external_sort",
    "external_sort_set",
    "merge_cost_estimate",
    "sort_codes_doc_order",
]

KeyFunc = Callable[[tuple[int, ...]], object]
#: in-place-equivalent run sorter: takes the buffered records, returns
#: them sorted by the same order ``key`` defines
RunSortFunc = Callable[[list[tuple[int, ...]]], list[tuple[int, ...]]]
#: page-at-a-time merge keys: takes one page of records, returns one
#: order-equivalent integer key per record
BulkKeyFunc = Callable[[list[tuple[int, ...]]], list[int]]


def sort_codes_doc_order(
    records: list[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Run sorter for single-code records in document order.

    Decorate-sort-undecorate through the packed doc-order key (one
    kernel call) instead of a Python ``key`` callback per record.  The
    packed key orders and ties exactly like ``doc_order_key`` tuples,
    so runs come out identical to the scalar sort's.
    """
    return [(c,) for c in batch.sort_doc_order([r[0] for r in records])]


def bulk_doc_order_keys(records: list[tuple[int, ...]]) -> list[int]:
    """Bulk merge keys for single-code records in document order."""
    return batch.doc_order_keys([record[0] for record in records])


def external_sort(
    heap: HeapFile,
    key: KeyFunc,
    buffer_pages: int | None = None,
    destroy_input: bool = False,
    run_sort: Optional[RunSortFunc] = None,
    bulk_key: Optional[BulkKeyFunc] = None,
) -> HeapFile:
    """Sort ``heap`` by ``key`` using at most ``buffer_pages`` frames.

    Returns a new heap file holding the sorted records.  When
    ``destroy_input`` is set, the input file (and intermediate runs) are
    deallocated as soon as they have been consumed.  ``run_sort``
    optionally replaces the per-record ``key`` callback for the initial
    in-memory run sort; ``bulk_key`` optionally replaces it in the merge
    passes (one kernel call per input page instead of one Python call
    per record).  Both must produce exactly the order ``key`` defines.
    """
    bufmgr = heap.bufmgr
    budget = buffer_pages if buffer_pages is not None else bufmgr.num_pages
    budget = min(budget, bufmgr.num_pages)
    if budget < 3:
        raise ValueError("external sort needs at least 3 buffer pages")

    runs = _build_runs(heap, key, budget, run_sort)
    if destroy_input:
        heap.destroy()
    fan_in = budget - 1
    while len(runs) > 1:
        runs = _merge_pass(
            bufmgr, runs, key, fan_in, heap.codec, heap.name, bulk_key
        )
    if not runs:
        return HeapFile(bufmgr, heap.codec, name=f"{heap.name}[sorted]")
    result = runs[0]
    result.name = f"{heap.name}[sorted]"
    return result


def _build_runs(
    heap: HeapFile,
    key: KeyFunc,
    budget: int,
    run_sort: Optional[RunSortFunc] = None,
) -> list[HeapFile]:
    """Read ``budget`` pages at a time, sort in memory, write runs."""
    bufmgr = heap.bufmgr
    runs: list[HeapFile] = []
    buffered: list[tuple[int, ...]] = []
    pages_in_memory = 0
    for records in heap.scan_pages():
        buffered.extend(records)
        pages_in_memory += 1
        if pages_in_memory >= budget:
            runs.append(
                _write_run(bufmgr, heap, buffered, key, len(runs), run_sort)
            )
            buffered = []
            pages_in_memory = 0
    if buffered:
        runs.append(
            _write_run(bufmgr, heap, buffered, key, len(runs), run_sort)
        )
    return runs


def _write_run(
    bufmgr: BufferManager,
    heap: HeapFile,
    records: list[tuple[int, ...]],
    key: KeyFunc,
    run_index: int,
    run_sort: Optional[RunSortFunc] = None,
) -> HeapFile:
    if run_sort is not None:
        records = run_sort(records)
    else:
        records.sort(key=key)
    return HeapFile.from_records(
        bufmgr, heap.codec, records, name=f"{heap.name}[run{run_index}]"
    )


def _merge_pass(
    bufmgr: BufferManager,
    runs: list[HeapFile],
    key: KeyFunc,
    fan_in: int,
    codec,
    name: str,
    bulk_key: Optional[BulkKeyFunc] = None,
) -> list[HeapFile]:
    merged: list[HeapFile] = []
    for group_start in range(0, len(runs), fan_in):
        group = runs[group_start:group_start + fan_in]
        merged.append(_merge_runs(bufmgr, group, key, codec, name, bulk_key))
        for run in group:
            run.destroy()
    return merged


def _decorated_scan(
    run: HeapFile, bulk_key: BulkKeyFunc
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Scan a run as ``(key, record)`` pairs, keys computed per page."""
    for page in run.scan_pages():
        yield from zip(bulk_key(page), page)


def _merge_runs(
    bufmgr: BufferManager,
    runs: Sequence[HeapFile],
    key: KeyFunc,
    codec,
    name: str,
    bulk_key: Optional[BulkKeyFunc] = None,
) -> HeapFile:
    """k-way merge; one page of each run is resident at a time."""
    output = HeapFile(bufmgr, codec, name=f"{name}[merge]")
    writer = output.open_writer()
    try:
        if bulk_key is not None:
            # decorate page-at-a-time; equal keys fall back to record
            # comparison, which is fine (an integer bulk_key may only
            # tie on identical records)
            decorated = heapq.merge(
                *(_decorated_scan(run, bulk_key) for run in runs)
            )
            for _merge_key, record in decorated:
                writer.append(record)
        else:
            merged = heapq.merge(*(run.scan() for run in runs), key=key)
            for record in merged:
                writer.append(record)
    finally:
        # close even when a run scan faults, or the pinned output page
        # leaks and masks the fault during run cleanup
        writer.close()
    return output


def external_sort_set(
    elements: ElementSet,
    buffer_pages: int | None = None,
    destroy_input: bool = False,
) -> ElementSet:
    """Sort an element set into document (start) order.

    This is the "custom sorting routine" of Section 3.1: codes are
    converted to region order on the fly inside the sort key.
    """
    batched = batch.batching_enabled()
    sorted_heap = external_sort(
        elements.heap,
        key=lambda record: pbitree.doc_order_key(record[0]),
        buffer_pages=buffer_pages,
        destroy_input=destroy_input,
        run_sort=sort_codes_doc_order if batched else None,
        bulk_key=bulk_doc_order_keys if batched else None,
    )
    return ElementSet(
        sorted_heap,
        elements.tree_height,
        name=f"{elements.name}[sorted]",
        sorted_by="start",
    )


def merge_cost_estimate(num_pages: int, buffer_pages: int) -> int:
    """Analytic page-I/O cost of externally sorting ``num_pages`` pages.

    ``2 * N * (#passes)`` with ``#passes = 1 + ceil(log_{b-1}(N/b))`` —
    the quantity the paper's Section 3.4.1 compares against the
    ``3(||A|| + ||D||)`` cost of the partitioning joins.
    """
    if num_pages <= 0:
        return 0
    passes = 1
    runs = -(-num_pages // buffer_pages)  # ceil division
    fan_in = max(buffer_pages - 1, 2)
    while runs > 1:
        runs = -(-runs // fan_in)
        passes += 1
    return 2 * num_pages * passes
