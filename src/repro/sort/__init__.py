"""External merge sort (on-the-fly preparation for merge-based joins)."""

from .external_sort import external_sort, external_sort_set, merge_cost_estimate

__all__ = ["external_sort", "external_sort_set", "merge_cost_estimate"]
