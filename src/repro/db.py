"""High-level façade: documents, element sets, indexes and queries.

:class:`ContainmentDatabase` is the adoption surface of this library —
what an application uses instead of wiring disk, buffer pool, encoder,
planner and join operators together by hand:

* load XML text or a pre-built :class:`DataTree`;
* run descendant-axis path queries (``//a//b//c``) as chains of
  containment joins, planned rule-based (Table 1) or cost-based;
* create persistent indexes (B+-tree / interval tree / R-tree) that the
  planner then exploits;
* apply updates (insert/delete elements) through the configured
  containment codec (``codec="pbitree"`` virtual-node machinery or
  ``codec="nested-intervals"``), with persisted element sets patched
  in place by a per-document :class:`~repro.storage.DocumentStore`
  instead of being rebuilt — only the (unmaintained) R-tree indexes
  are still invalidated wholesale.

Example::

    db = ContainmentDatabase(buffer_pages=64)
    doc = db.load_xml(open("catalog.xml").read(), name="catalog")
    for node in db.query(doc, "//item//price"):
        print(node.tag, node.text)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shard.corpus import ShardedCorpus

from .core.codec import ContainmentCodec, MutableEncoding, get_codec
from .datatree.node import DataTree, NodeView
from .datatree.paths import PathQuery
from .datatree.xml_parser import parse_xml
from .index.bptree import BPlusTree
from .index.interval_tree import IntervalTree
from .index.rtree import RTree
from .join.base import JoinReport
from .join.optimizer import CostBasedOptimizer
from .join.planner import PBiTreeJoinFramework, SetProperties
from .join.spatial import build_point_rtree
from .obs.metrics import MetricsRegistry
from .obs.tracer import NULL_TRACER, Tracer
from .storage.buffer import BufferManager
from .storage.disk import DiskManager
from .storage.docstore import DocumentStore
from .storage.elementset import ElementSet
from .storage.faults import FaultConfig, FaultInjector, FaultStats, RetryPolicy
from .storage.stats import IOSnapshot

__all__ = ["ContainmentDatabase", "Document", "QueryResult"]


@dataclass
class Document:
    """A loaded, encoded document."""

    name: str
    tree: DataTree
    updatable: MutableEncoding
    store: DocumentStore

    @property
    def tree_height(self) -> int:
        return self.updatable.tree_height

    def node(self, node_id: int) -> NodeView:
        return self.tree.node(node_id)

    def __repr__(self) -> str:
        return f"<Document {self.name!r} nodes={len(self.tree)} H={self.tree_height}>"


@dataclass
class QueryResult:
    """Matched elements plus the execution trace of each join step."""

    nodes: list[NodeView]
    reports: list[JoinReport] = field(default_factory=list)
    planning_io: int = 0

    def __iter__(self) -> Iterator[NodeView]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_io(self) -> int:
        return self.planning_io + sum(
            report.total_pages for report in self.reports
        )


class ContainmentDatabase:
    """Documents + storage + query processing in one object."""

    def __init__(
        self,
        page_size: int = 1024,
        buffer_pages: int = 64,
        policy: str = "lru",
        optimizer: str = "rule",
        faults: "FaultInjector | FaultConfig | None" = None,
        retry: Optional[RetryPolicy] = None,
        checksums: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        codec: "str | ContainmentCodec" = "pbitree",
        shards: int = 0,
        shard_level: Optional[int] = None,
    ) -> None:
        """``optimizer`` selects the default planning mode: ``"rule"``
        (the paper's Table 1) or ``"cost"`` (the Section 6 cost-based
        optimizer).

        ``codec`` selects the containment encoding backend used by
        :meth:`load_tree` — a registry name
        (:func:`~repro.core.codec.available_codecs`) or a codec
        instance; every join algorithm runs unchanged on any backend.

        ``faults`` attaches a seeded fault injector to the underlying
        disk (a :class:`FaultConfig` is wrapped automatically) and
        ``retry`` tunes the buffer pool's transient-fault retry policy.
        ``checksums`` defaults to on whenever faults are injected, so
        torn pages are detected rather than silently returned.

        ``tracer`` threads a span tree through every query's joins;
        ``metrics`` attaches live disk counters and accumulates one
        set of join counters per executed operator.  Both default to
        disabled (no overhead).

        ``shards > 0`` lays each queried document's element sets out
        as a level-``shard_level`` :class:`~repro.shard.corpus.
        ShardedCorpus` (built lazily per tag, invalidated by updates)
        and evaluates pure descendant chains scatter-gather through a
        :class:`~repro.shard.executor.ShardedJoinExecutor` instead of
        the single-engine pipeline.  Slot joins run inline here — the
        library never spawns processes behind a caller's back; use
        :func:`repro.experiments.harness.run_lineup` or the service
        tier for shard-parallel execution.
        """
        if optimizer not in ("rule", "cost"):
            raise ValueError(f"unknown optimizer mode {optimizer!r}")
        if isinstance(faults, FaultConfig):
            faults = FaultInjector(faults)
        if checksums is None:
            checksums = faults is not None
        self.disk = DiskManager(page_size, checksums=checksums, faults=faults)
        self.bufmgr = BufferManager(self.disk, buffer_pages, policy, retry=retry)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind(self.bufmgr)
        self.metrics = metrics
        if metrics is not None:
            metrics.attach_disk(self.disk)
        self.optimizer_mode = optimizer
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self._framework = PBiTreeJoinFramework()
        self._cost_optimizer = CostBasedOptimizer()
        self._documents: dict[str, Document] = {}
        self._rtree_indexes: dict[tuple[str, str], RTree] = {}
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.shards = shards
        self.shard_level = shard_level
        #: per-document sharded layouts, built lazily and dropped
        #: wholesale on update (rebuild-on-next-query; incremental
        #: shard maintenance is future work)
        self._shard_corpora: dict[str, "ShardedCorpus"] = {}

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_xml(
        self,
        text: str,
        name: str = "doc",
        codec: "str | ContainmentCodec | None" = None,
    ) -> Document:
        """Parse, encode and register an XML document."""
        return self.load_tree(parse_xml(text), name, codec=codec)

    def load_tree(
        self,
        tree: DataTree,
        name: str = "doc",
        codec: "str | ContainmentCodec | None" = None,
    ) -> Document:
        """Encode and register ``tree`` (``codec`` overrides the default)."""
        if name in self._documents:
            raise ValueError(f"document {name!r} already loaded")
        if codec is None:
            chosen = self.codec
        else:
            chosen = get_codec(codec) if isinstance(codec, str) else codec
        encoding = chosen.encode(tree)
        document = Document(
            name=name,
            tree=tree,
            updatable=encoding,
            store=DocumentStore(
                self.bufmgr,
                encoding,
                name=name,
                metrics=self.metrics,
                tracer=self.tracer,
            ),
        )
        self._documents[name] = document
        return document

    def document(self, name: str) -> Document:
        return self._documents[name]

    # ------------------------------------------------------------------
    # element sets and indexes
    # ------------------------------------------------------------------
    def element_set(self, document: Document, tag: str) -> ElementSet:
        """The on-disk element set for one tag, kept current by the
        document's :class:`~repro.storage.DocumentStore` (updates are
        applied as page patches, not rebuilds)."""
        return document.store.element_set(tag)

    def create_start_index(self, document: Document, tag: str) -> BPlusTree:
        """B+-tree on region Start (serves INLJN-descendant and ADB+)."""
        return document.store.start_index(tag)

    def create_interval_index(self, document: Document, tag: str) -> IntervalTree:
        """Interval tree over regions (serves INLJN-ancestor probes)."""
        return document.store.interval_index(tag)

    def create_rtree_index(self, document: Document, tag: str) -> RTree:
        """R-tree over (Start, End) points (serves the spatial joins)."""
        key = (document.name, tag)
        if key not in self._rtree_indexes:
            self._rtree_indexes[key] = build_point_rtree(
                self.element_set(document, tag), self.bufmgr
            )
        return self._rtree_indexes[key]

    def _properties(self, document: Document, tag: str) -> SetProperties:
        elements = self.element_set(document, tag)
        single = None
        if elements.known_heights and len(elements.known_heights) == 1:
            single = next(iter(elements.known_heights))
        return SetProperties(
            sorted=False,
            start_index=document.store.peek_start_index(tag),
            interval_index=document.store.peek_interval_index(tag),
            single_height=single,
        )

    # ------------------------------------------------------------------
    # sharded layout
    # ------------------------------------------------------------------
    def shard_corpus(self, document: Document) -> "ShardedCorpus":
        """The document's sharded layout, built lazily (``shards > 0``).

        Element sets are scattered per tag on first use; an update to
        the document drops the whole corpus (rebuilt on next query).
        """
        from .shard.corpus import ShardedCorpus

        if self.shards <= 0:
            raise ValueError("database was not opened with shards > 0")
        corpus = self._shard_corpora.get(document.name)
        if corpus is None:
            corpus = ShardedCorpus(
                document.tree_height,
                self.shards,
                level=self.shard_level,
                page_size=self.disk.page_size,
                buffer_pages=self.bufmgr.num_pages,
                policy=self.bufmgr.policy,
            )
            self._shard_corpora[document.name] = corpus
        return corpus

    def _shard_set(self, document: Document, tag: str) -> str:
        """Ensure ``tag``'s element set is scattered; returns the tag."""
        corpus = self.shard_corpus(document)
        if tag not in corpus.tags:
            elements = self.element_set(document, tag)
            corpus.add_set(tag, [int(code) for code in elements.scan()])
        return tag

    def _query_sharded(self, document: Document, path: str) -> QueryResult:
        """Evaluate a descendant chain scatter-gather over the shards.

        Top-down only: each step joins the previous step's matches
        (scattered transiently) against the next tag's sharded set;
        the merged per-step reports are shard-count-invariant.
        """
        from .shard.executor import ShardedJoinExecutor

        query = PathQuery(path)
        corpus = self.shard_corpus(document)
        executor = ShardedJoinExecutor(corpus, workers=1)
        for tag in query.steps:
            self._shard_set(document, tag)
        reports: list[JoinReport] = []
        with self.tracer.span("query.sharded", path=path):
            current: "str | list[int]" = query.steps[0]
            for step_index, tag in enumerate(query.steps[1:], start=1):
                report, pairs = executor.run(
                    "MHCJ+Rollup",
                    current,
                    tag,
                    dataset=f"{document.name}.step{step_index}",
                    buffer_pages=self.bufmgr.num_pages,
                    page_size=self.disk.page_size,
                    collect=True,
                    tracer=self.tracer,
                )
                reports.append(report)
                assert pairs is not None
                current = sorted({d_code for _a_code, d_code in pairs})
        if isinstance(current, str):
            codes: list[int] = sorted(
                int(code) for code in self.element_set(document, current).scan()
            )
        else:
            codes = current
        if self.metrics is not None:
            for report in reports:
                self.metrics.record_report(report, dataset=document.name)
        return QueryResult(
            nodes=self._decode(document, codes),
            reports=reports,
        )

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self,
        document: Document,
        path: str,
        direction: Optional[str] = None,
    ) -> QueryResult:
        """Evaluate a path query as a chain of containment joins.

        Pure descendant-axis chains (``//a//b//c``) run through
        :class:`PathPipeline`, which decides the join order (top-down
        vs bottom-up) from estimated intermediate sizes unless
        ``direction`` forces one.  Extended syntax — child axis
        ``/a/b``, predicates ``//a[b]`` — is routed through the
        :class:`~repro.datatree.xpath.XPath` evaluator (EA-joins via
        the occupancy-set parent filter).
        """
        from .join.pipeline import PathPipeline

        if self._is_extended_path(path):
            return self._query_extended(document, path)
        if self.shards > 0 and direction in (None, "top-down"):
            # sharded evaluation is top-down by construction; an
            # explicit bottom-up request falls through to the
            # single-engine pipeline
            return self._query_sharded(document, path)
        query = PathQuery(path)
        steps = [self.element_set(document, tag) for tag in query.steps]
        if len(steps) == 1:
            codes = sorted(steps[0].scan())
            nodes = self._decode(document, codes)
            return QueryResult(nodes=nodes)

        tags = dict(zip((id(s) for s in steps), query.steps))

        def factory(ancestors: ElementSet, descendants: ElementSet):
            return self._plan(
                document,
                ancestors,
                tags.get(id(ancestors)),
                descendants,
                tags.get(id(descendants)),
            )

        pipeline = PathPipeline(
            self.bufmgr,
            algorithm_factory=factory,
            direction=direction,
            tracer=self.tracer,
        )
        with self.tracer.span("query", path=path):
            result = pipeline.execute(steps)
        if self.metrics is not None:
            for report in result.reports:
                self.metrics.record_report(report, dataset=document.name)
            self.metrics.record_buffer(self.bufmgr)
        return QueryResult(
            nodes=self._decode(document, result.codes),
            reports=result.reports,
            planning_io=result.planning_io,
        )

    @staticmethod
    def _is_extended_path(path: str) -> bool:
        """True for syntax PathQuery cannot handle (child axis, [..], *)."""
        import re

        return re.fullmatch(r"(//[-\w.]+)+", path) is None

    def _query_extended(self, document: Document, path: str) -> QueryResult:
        from .datatree.xpath import XPath

        reports: list[JoinReport] = []

        def join(a_codes, d_codes):
            from .join.base import JoinSink

            a_set = ElementSet.from_codes(
                self.bufmgr, a_codes, document.tree_height, "xq.A"
            )
            d_set = ElementSet.from_codes(
                self.bufmgr, d_codes, document.tree_height, "xq.D"
            )
            sink = JoinSink("collect")
            algorithm = self._plan(document, a_set, None, d_set, None)
            report = algorithm.run(a_set, d_set, sink, tracer=self.tracer)
            reports.append(report)
            if self.metrics is not None:
                self.metrics.record_report(report, dataset=document.name)
            a_set.destroy()
            d_set.destroy()
            return sink.pairs

        xpath = XPath(path)
        codes = xpath.evaluate_with_joins(
            document.tree, join, alive=document.updatable.is_alive
        )
        return QueryResult(nodes=self._decode(document, codes), reports=reports)

    def _decode(self, document: Document, codes) -> list[NodeView]:
        out = []
        for code in codes:
            node = document.updatable.node_of(code)
            if node is not None:
                out.append(document.tree.node(node))
        return out

    def _plan(self, document, ancestors, anc_tag, descendants, desc_tag):
        if self.optimizer_mode == "cost":
            algorithm, _plan = self._cost_optimizer.choose(ancestors, descendants)
            return algorithm
        a_props = (
            self._properties(document, anc_tag)
            if anc_tag is not None
            else SetProperties()
        )
        d_props = (
            self._properties(document, desc_tag)
            if desc_tag is not None
            else SetProperties()
        )
        return self._framework.plan(ancestors, descendants, a_props, d_props)

    def explain(self, document: Document, path: str) -> str:
        """Ranked cost-based plans for every step of a path query."""
        query = PathQuery(path)
        chunks = []
        for anc_tag, desc_tag in zip(query.steps, query.steps[1:]):
            ancestors = self.element_set(document, anc_tag)
            descendants = self.element_set(document, desc_tag)
            plans = self._cost_optimizer.explain(ancestors, descendants)
            chunks.append(
                f"step //{anc_tag} <| //{desc_tag}:\n"
                + CostBasedOptimizer.format_explain(plans)
            )
        return "\n\n".join(chunks)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert_element(
        self,
        document: Document,
        parent: int,
        tag: str,
        text: Optional[str] = None,
    ) -> int:
        """Insert an element.

        The document store picks the mutation up from the encoding's
        change-event stream and patches the persisted element sets in
        place on next access; maintained indexes are patched or
        retired-and-rebuilt per their contract.  Only the R-tree
        indexes (no maintenance path) are invalidated wholesale.
        """
        node = document.updatable.insert_child(parent, tag, text)
        self._invalidate_rtrees(document)
        self._invalidate_shards(document)
        return node

    def delete_element(self, document: Document, node: int) -> int:
        removed = document.updatable.delete_subtree(node)
        if removed:
            self._invalidate_rtrees(document)
            self._invalidate_shards(document)
        return removed

    def _invalidate_rtrees(self, document: Document) -> None:
        for key in [k for k in self._rtree_indexes if k[0] == document.name]:
            del self._rtree_indexes[key]

    def _invalidate_shards(self, document: Document) -> None:
        self._shard_corpora.pop(document.name, None)

    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOSnapshot:
        return self.disk.stats.snapshot()

    @property
    def fault_stats(self) -> Optional[FaultStats]:
        """Injected-fault counters, or None when no injector is attached."""
        return self.disk.faults.stats if self.disk.faults is not None else None

    def __repr__(self) -> str:
        return (
            f"<ContainmentDatabase docs={len(self._documents)} "
            f"codec={self.codec.name!r} buffer={self.bufmgr.num_pages}p>"
        )
