"""Persist a simulated disk (and element-set catalog) to a real file.

The evaluation never needs persistence — every experiment regenerates
its data — but an adoptable library does: encode a document once, save
the element sets, reopen later.  Image format::

    magic "PBIT" | u32 version | u32 header_length | header JSON (utf-8)
    page payloads, in the order listed in the header

The header records the page size, every allocated page id and an
optional catalog: named element sets with their page-id lists,
tree heights and sort order.  CRCs of every page are stored and
verified on load.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Optional

from .buffer import BufferManager
from .disk import DiskManager
from .elementset import ElementSet
from .faults import FaultInjector, RetryPolicy
from .heapfile import HeapFile
from .record import CODE

__all__ = ["save_image", "load_image", "ImageFormatError", "LoadedImage"]

_MAGIC = b"PBIT"
_VERSION = 1
_PREFIX = struct.Struct("<4sII")


class ImageFormatError(ValueError):
    """Raised when a file is not a valid disk image (or is corrupt)."""


class LoadedImage:
    """The result of :func:`load_image`: a disk plus its catalog."""

    def __init__(self, disk: DiskManager, bufmgr: BufferManager) -> None:
        self.disk = disk
        self.bufmgr = bufmgr
        self.element_sets: dict[str, ElementSet] = {}


def save_image(
    disk: DiskManager,
    path: "str | Path",
    element_sets: Optional[dict[str, ElementSet]] = None,
) -> None:
    """Write the disk image (flush your buffer pool first!)."""
    page_ids = sorted(disk._pages)
    catalog = {}
    for name, elements in (element_sets or {}).items():
        catalog[name] = {
            "page_ids": elements.heap.page_ids,
            "num_records": elements.heap.num_records,
            "tree_height": elements.tree_height,
            "sorted_by": elements.sorted_by,
            "heights": sorted(elements.known_heights or []),
        }
    header = {
        "page_size": disk.page_size,
        "next_page_id": disk._next_page_id,
        "pages": [
            {"id": page_id, "crc": zlib.crc32(disk._pages[page_id])}
            for page_id in page_ids
        ],
        "catalog": catalog,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(_PREFIX.pack(_MAGIC, _VERSION, len(header_bytes)))
        handle.write(header_bytes)
        for page_id in page_ids:
            handle.write(disk._pages[page_id])


def load_image(
    path: "str | Path",
    buffer_pages: int = 64,
    policy: str = "lru",
    checksums: bool = False,
    faults: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
) -> LoadedImage:
    """Reconstruct a disk (and its catalog) from an image file.

    ``checksums=True`` seeds the reconstructed disk with the CRCs from
    the image header, so runtime reads stay verified after load;
    ``faults``/``retry`` configure fault injection and the buffer pool's
    retry policy on the reconstructed engine (chaos testing against
    real persisted datasets).
    """
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX.size)
        if len(prefix) < _PREFIX.size:
            raise ImageFormatError("file too short for an image header")
        magic, version, header_length = _PREFIX.unpack(prefix)
        if magic != _MAGIC:
            raise ImageFormatError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise ImageFormatError(f"unsupported image version {version}")
        try:
            header = json.loads(handle.read(header_length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ImageFormatError(f"corrupt header: {exc}") from exc

        disk = DiskManager(header["page_size"], checksums=checksums)
        for entry in header["pages"]:
            payload = handle.read(header["page_size"])
            if len(payload) != header["page_size"]:
                raise ImageFormatError(
                    f"truncated payload for page {entry['id']}"
                )
            if zlib.crc32(payload) != entry["crc"]:
                raise ImageFormatError(
                    f"page {entry['id']} failed CRC verification"
                )
            disk._pages[entry["id"]] = payload
            if checksums:
                disk._checksums[entry["id"]] = entry["crc"]
        disk._next_page_id = header["next_page_id"]
        if faults is not None:
            disk.set_faults(faults)

    image = LoadedImage(
        disk, BufferManager(disk, buffer_pages, policy, retry=retry)
    )
    for name, meta in header.get("catalog", {}).items():
        heap = HeapFile(image.bufmgr, CODE, name=name)
        heap.page_ids = list(meta["page_ids"])
        heap.num_records = meta["num_records"]
        image.element_sets[name] = ElementSet(
            heap,
            meta["tree_height"],
            name=name,
            sorted_by=meta.get("sorted_by"),
            known_heights=frozenset(meta.get("heights", [])) or None,
        )
    return image
