"""Element sets: the inputs and outputs of containment joins.

An :class:`ElementSet` is a heap file of PBiTree codes plus the
metadata the planner needs (Table 1): whether the set is sorted (in
region-``Start`` order) and whether an index exists on it.  Helper
constructors build sets from raw code lists or from an encoded data
tree by tag.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, cast

from ..core import batch, pbitree
from ..core.pbitree import Height, PBiCode
from ..datatree.node import DataTree
from .buffer import BufferManager
from .heapfile import HeapFile
from .record import CODE

__all__ = ["ElementSet", "SortOrder"]


class SortOrder:
    """Sort-order tags for element sets."""

    NONE = None
    #: document order: ascending region ``Start``, ties broken by
    #: descending ``End`` so ancestors precede descendants (what the
    #: merge-based algorithms require).
    START = "start"
    #: ascending raw code value.
    CODE = "code"


class ElementSet:
    """A set of elements identified by PBiTree codes, stored on pages."""

    def __init__(
        self,
        heap: HeapFile,
        tree_height: int,
        name: str = "",
        sorted_by: Optional[str] = SortOrder.NONE,
        known_heights: Optional[frozenset[int]] = None,
    ) -> None:
        self.heap = heap
        self.tree_height = tree_height
        self.name = name or heap.name
        self.sorted_by = sorted_by
        #: node heights present, when recorded at load time (catalog
        #: statistics — saves algorithms a discovery scan)
        self.known_heights = known_heights

    # ------------------------------------------------------------------
    @classmethod
    def from_codes(
        cls,
        bufmgr: BufferManager,
        codes: Iterable[PBiCode],
        tree_height: int,
        name: str = "",
        sorted_by: Optional[str] = SortOrder.NONE,
    ) -> "ElementSet":
        from .record import MAX_CODE_BITS

        if tree_height > MAX_CODE_BITS:
            raise ValueError(
                f"PBiTree height {tree_height} exceeds the {MAX_CODE_BITS}-bit "
                "storage code space (Section 2.3.3: pathologically deep trees "
                "need a wider record format)"
            )
        heights: set[Height] = set()

        def records() -> Iterator[tuple[int]]:
            for code in codes:
                heights.add(pbitree.height_of(code))
                yield (code,)

        if batch.batching_enabled():
            # materialised list → bulk page packing in the heap writer
            code_list = list(codes)
            heights.update(batch.heights(code_list))
            heap = HeapFile.from_records(
                bufmgr, CODE, [(code,) for code in code_list], name=name
            )
        else:
            heap = HeapFile.from_records(bufmgr, CODE, records(), name=name)
        return cls(
            heap,
            tree_height,
            name=name,
            sorted_by=sorted_by,
            known_heights=frozenset(heights),
        )

    @classmethod
    def from_tree_tag(
        cls,
        bufmgr: BufferManager,
        tree: DataTree,
        tag: str,
        tree_height: int,
        name: str = "",
    ) -> "ElementSet":
        """Element set of all nodes with ``tag`` in an encoded data tree.

        Codes come out in document order, which is *not* start order in
        general, so the set is marked unsorted — the starting condition
        the paper's new algorithms target.
        """
        codes = (tree.codes[node] for node in tree.iter_by_tag(tag))
        return cls.from_codes(
            bufmgr, codes, tree_height, name=name or f"//{tag}"
        )

    def with_bufmgr(self, bufmgr: BufferManager) -> "ElementSet":
        """A read view of this set pinned through ``bufmgr``.

        Used by the service tier: each session rebinds the shared
        corpus sets to its private buffer pool (over a
        :class:`~repro.storage.disk.SessionDiskView`), so concurrent
        queries read the same pages with isolated I/O accounting.
        Metadata (sort order, known heights) carries over; the view
        must not be destroyed.
        """
        return ElementSet(
            self.heap.view(bufmgr),
            self.tree_height,
            name=self.name,
            sorted_by=self.sorted_by,
            known_heights=self.known_heights,
        )

    # ------------------------------------------------------------------
    @property
    def bufmgr(self) -> BufferManager:
        return self.heap.bufmgr

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    def __len__(self) -> int:
        return self.heap.num_records

    def scan(self) -> Iterator[PBiCode]:
        """Yield codes in file order (sequential page reads)."""
        for page in self.scan_pages():
            yield from page

    def scan_pages(self) -> Iterator[list[PBiCode]]:
        """Yield the code list of each page.

        With batching enabled the list is built in one pass from the
        page's zero-copy field view (a single C-level loop) instead of
        materialising a tuple per record; contents and page-access
        order are identical either way.
        """
        if batch.batching_enabled():
            for fields in self.heap.scan_page_arrays():
                yield cast("list[PBiCode]", list(fields))
            return
        for records in self.heap.scan_pages():
            # one cast per page, not one constructor per record: stored
            # codes are PBiCode by the from_codes invariant
            yield cast("list[PBiCode]", [record[0] for record in records])

    def scan_code_arrays(self, copy: bool = False) -> Iterator[Sequence[PBiCode]]:
        """Yield each page's codes as a zero-copy ``Q``-cast view.

        Element-set heaps store one code per record, so the flat field
        view *is* the page's code array.  The default is a borrow with
        :meth:`HeapFile.scan_page_arrays`'s contract — valid only
        within the loop iteration, revoked on resume under
        ``REPRO_SANITIZE`` — while ``copy=True`` yields owning
        ``array("Q")`` pages that may be kept (one extra memcpy per
        page, no extra I/O).
        """
        for fields in self.heap.scan_page_arrays(copy=copy):
            yield cast("Sequence[PBiCode]", fields)

    def to_list(self) -> list[PBiCode]:
        return list(self.scan())

    # ------------------------------------------------------------------
    def heights(self) -> set[Height]:
        """Distinct node heights present (catalog statistic, or one scan)."""
        if self.known_heights is not None:
            return {Height(h) for h in self.known_heights}
        return {pbitree.height_of(code) for code in self.scan()}

    def sorted_copy(self, order: str = SortOrder.START) -> "ElementSet":
        """In-memory sorted copy — tests/examples only.

        Real operators use :mod:`repro.sort.external_sort`, which charges
        the I/O the paper's analysis assigns to on-the-fly sorting.
        """
        key = pbitree.doc_order_key if order == SortOrder.START else None
        codes = sorted(self.scan(), key=key)
        return ElementSet.from_codes(
            self.bufmgr,
            codes,
            self.tree_height,
            name=f"{self.name}[sorted:{order}]",
            sorted_by=order,
        )

    def destroy(self) -> None:
        self.heap.destroy()

    def __repr__(self) -> str:
        return (
            f"<ElementSet {self.name!r} n={len(self)} pages={self.num_pages} "
            f"H={self.tree_height} sorted={self.sorted_by}>"
        )
