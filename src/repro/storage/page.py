"""Record-page layout shared by heap files, sort runs and index leaves.

Layout of a record page (fixed-size records)::

    bytes 0..3   u32  number of records on the page
    bytes 4..7   u32  reserved (kept zero; heap files store a next-page
                      link here so pages are self-describing)
    bytes 8..    records, densely packed

Helpers here operate on the raw ``bytearray`` of a buffer frame so the
hot paths stay allocation-free.
"""

from __future__ import annotations

import struct
from typing import Sequence

from .record import RecordCodec

__all__ = [
    "PAGE_HEADER_SIZE",
    "page_capacity",
    "get_record_count",
    "set_record_count",
    "get_next_page",
    "set_next_page",
    "read_records",
    "read_record_array",
    "write_records",
]

PAGE_HEADER_SIZE = 8
_HEADER = struct.Struct("<II")
_NO_NEXT = 0xFFFFFFFF


def page_capacity(page_size: int, record_size: int) -> int:
    """Records that fit on one page."""
    capacity = (page_size - PAGE_HEADER_SIZE) // record_size
    if capacity < 1:
        raise ValueError(
            f"record size {record_size} too large for page size {page_size}"
        )
    return capacity


def get_record_count(data: bytes | bytearray) -> int:
    return _HEADER.unpack_from(data, 0)[0]


def set_record_count(data: bytearray, count: int) -> None:
    struct.pack_into("<I", data, 0, count)


def get_next_page(data: bytes | bytearray) -> int | None:
    """The next-page link, or ``None`` at end of chain."""
    value = _HEADER.unpack_from(data, 0)[1]
    return None if value == _NO_NEXT else value


def set_next_page(data: bytearray, page_id: int | None) -> None:
    struct.pack_into("<I", data, 4, _NO_NEXT if page_id is None else page_id)


def read_records(data: bytes | bytearray, codec: RecordCodec) -> list[tuple[int, ...]]:
    """Decode all records on a page."""
    count = get_record_count(data)
    return list(codec.iter_unpack(memoryview(data)[PAGE_HEADER_SIZE:], count))


def read_record_array(
    data: bytes | bytearray, codec: RecordCodec
) -> "Sequence[int]":
    """Zero-copy flat field view of a page (the batched decode path).

    One ``memoryview.cast("Q")`` over the payload instead of one tuple
    per record.  The view aliases the frame's buffer — valid only while
    the page stays pinned; see :meth:`RecordCodec.unpack_array`.
    """
    count = get_record_count(data)
    return codec.unpack_array(memoryview(data)[PAGE_HEADER_SIZE:], count)


def write_records(
    data: bytearray, codec: RecordCodec, records: list[tuple[int, ...]]
) -> None:
    """Overwrite a page with ``records`` (must fit)."""
    offset = PAGE_HEADER_SIZE
    for record in records:
        codec.pack_into(data, offset, record)
        offset += codec.record_size
    set_record_count(data, len(records))
