"""View-lifetime sanitizer for the zero-copy page-decode hot path.

The batched execution path (PR 5) hands out ``memoryview("Q")`` arrays
that alias pinned buffer frames, and the flat indexes (PR 6) decode
whole pages through the same views.  The borrow contract is one
sentence — *a page view is valid only while its frame stays pinned* —
but nothing enforced it: a view that leaks past its pin aliases a
recycled frame buffer and silently yields plausible-but-wrong codes.
This module is the ASan-style runtime side of that enforcement (the
static side is :mod:`repro.analysis.view_escape`):

* **Declared borrows.**  Every exporter of a page view registers the
  borrow in its pool's :class:`ViewRegistry` (a shadow table keyed by
  page id) for exactly the window the view is legal, via
  :func:`borrowed`.  Unpinning a frame to pin count zero while a
  declared borrow is live raises :class:`UseAfterUnpinError`.
* **Export revocation.**  On leaving the borrow window the exporter
  ``release()``-s the view it handed out, so a consumer that kept a
  reference gets an immediate ``ValueError`` on any later element
  access instead of stale bytes.  Derived views (slices, casts,
  ``memoryview(view)`` re-exports) own their *own* export of the
  underlying frame buffer — they neither block the release nor die
  with it, and are caught by the evict-time probe below instead.
* **Evict-time export probe.**  Before a frame buffer is recycled or
  dropped, the pool probes the ``bytearray`` for surviving buffer
  exports (a zero-length append is refused with ``BufferError`` iff an
  export is live) and raises :class:`LiveViewAtEvictError` naming the
  page.  Pinned frames are never victims, so any export found here is
  a leaked view by definition.
* **Poisoning.**  Sanitized pools never recycle victim buffers into
  new frames; the victim's bytes are filled with :data:`POISON_BYTE`
  (``0xDB``) so a stale alias that escapes every check above — e.g. a
  retained plain ``frame.data`` reference, which never exports — reads
  loud garbage instead of codes that happen to join.

The mode is off by default and adds one predicate call per unpin when
off.  Enable it with ``REPRO_SANITIZE=1``, :func:`set_sanitize_enabled`
or the :func:`sanitize_scope` context manager (the switch trio mirrors
:mod:`repro.core.batch` / :mod:`repro.index.flat`; spawn workers do not
inherit module state, so parallel tasks carry the bit explicitly).
Sanitized runs do no extra disk I/O, so ``JoinReport`` accounting stays
field-for-field identical to unsanitized runs — the differential
oracles (scalar-vs-batched, pointer-vs-flat) run unchanged under it.

The errors are deliberately *not* :class:`~repro.storage.faults.
StorageFault` subclasses: they diagnose programming errors, not
environmental ones, and must never be retried or absorbed by the
fault-tolerance layer.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional, Sequence

__all__ = [
    "POISON_BYTE",
    "ViewSanitizerError",
    "UseAfterUnpinError",
    "LiveViewAtEvictError",
    "ViewRegistry",
    "sanitize_enabled",
    "set_sanitize_enabled",
    "sanitize_scope",
    "borrowed",
    "check_unpin_to_zero",
    "check_evict",
    "poison",
]

#: fill byte for retired frame buffers (0xDB = "dead buffer"; reads as
#: the implausible code 0xDBDB... rather than zeros, which are legal)
POISON_BYTE = 0xDB


class ViewSanitizerError(RuntimeError):
    """A zero-copy page view outlived the pin that made it valid."""


class UseAfterUnpinError(ViewSanitizerError):
    """A declared borrow was still live when its frame lost its last pin.

    Raised either by :func:`check_unpin_to_zero` (the borrower never
    released) or by :func:`borrowed` on exit in the defensive case
    that something blocks revoking the handed-out view.
    """

    def __init__(self, page_id: int, labels: Sequence[str]) -> None:
        joined = ", ".join(labels) or "<unlabelled>"
        super().__init__(
            f"page {page_id} unpinned to zero with live borrowed "
            f"view(s): {joined}"
        )
        self.page_id = page_id
        self.labels = tuple(labels)


class LiveViewAtEvictError(ViewSanitizerError):
    """A frame buffer still had a live view when it was retired.

    ``reason`` names the retirement path (``"recycle"``, ``"evict"`` or
    ``"discard"``); ``labels`` carries any declared borrows, and is
    empty when the leak is an undeclared export caught by the buffer
    probe alone.
    """

    def __init__(
        self, page_id: int, reason: str, labels: Sequence[str] = ()
    ) -> None:
        detail = f" (declared: {', '.join(labels)})" if labels else ""
        super().__init__(
            f"page {page_id} retired ({reason}) with a live exported "
            f"page view{detail}: a borrow outlived its pin"
        )
        self.page_id = page_id
        self.reason = reason
        self.labels = tuple(labels)


# ---------------------------------------------------------------------------
# the mode switch (mirrors repro.core.batch / repro.index.flat)
# ---------------------------------------------------------------------------
# Two layers, same as the batch-size and flat-index switches: a
# process-wide *default* (set at startup from the environment or via
# :func:`set_sanitize_enabled`) and a :class:`~contextvars.ContextVar`
# *override* that only :func:`sanitize_scope` writes.  Each thread and
# asyncio task carries its own context, so one tenant's sanitized scope
# never flips another in-flight query's mode.
_sanitize_default = False

_sanitize_var: ContextVar[Optional[bool]] = ContextVar(
    "repro_sanitize_enabled", default=None
)


def _env_sanitize_enabled() -> Optional[bool]:
    raw = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if not raw:
        return None
    if raw in ("1", "true", "on", "yes"):
        return True
    if raw in ("0", "false", "off", "no"):
        return False
    return None


_env_override = _env_sanitize_enabled()
if _env_override is not None:
    _sanitize_default = _env_override


def sanitize_enabled() -> bool:
    """Whether the view-lifetime sanitizer is active (default off).

    A live :func:`sanitize_scope` override in the current context wins;
    otherwise the process-wide default applies.
    """
    override = _sanitize_var.get()
    if override is not None:
        return override
    return _sanitize_default


def set_sanitize_enabled(enabled: bool) -> None:
    """Set the process-wide sanitizer default (startup configuration).

    Per-context overrides from :func:`sanitize_scope` are unaffected.
    Worker processes under the ``spawn`` start method do not inherit
    this module state — parallel tasks carry the flag as an explicit
    field instead (see :mod:`repro.parallel.tasks`).
    """
    global _sanitize_default
    _sanitize_default = bool(enabled)


@contextmanager
def sanitize_scope(enabled: bool) -> Iterator[None]:
    """Pin the sanitizer switch for the current context only.

    The override is context-local: threads and asyncio tasks running
    concurrently keep their own setting (or the process default), so a
    sanitized query can share the process with unsanitized ones.
    """
    token = _sanitize_var.set(bool(enabled))
    try:
        yield
    finally:
        _sanitize_var.reset(token)


# ---------------------------------------------------------------------------
# the shadow borrow registry (one per BufferManager)
# ---------------------------------------------------------------------------
class ViewRegistry:
    """Shadow table of live page-view borrows, keyed by page id.

    Purely diagnostic state: registering and releasing borrows never
    touches the pool, the disk or the I/O counters, so the registry is
    invisible to accounting.  Tickets are monotonically increasing ints
    so the same page can carry several concurrent labelled borrows.
    """

    __slots__ = ("_live", "_next_ticket")

    def __init__(self) -> None:
        #: page id -> {ticket: label}
        self._live: dict[int, dict[int, str]] = {}
        self._next_ticket = 0

    def register(self, page_id: int, label: str) -> int:
        """Declare a borrow of ``page_id``; returns its release ticket."""
        ticket = self._next_ticket
        self._next_ticket += 1
        self._live.setdefault(page_id, {})[ticket] = label
        return ticket

    def release(self, page_id: int, ticket: int) -> None:
        """Retire a declared borrow (idempotent for unknown tickets)."""
        borrows = self._live.get(page_id)
        if borrows is not None:
            borrows.pop(ticket, None)
            if not borrows:
                del self._live[page_id]

    def live_labels(self, page_id: int) -> list[str]:
        """Labels of every live borrow of ``page_id`` (empty when clean)."""
        return list(self._live.get(page_id, {}).values())

    @property
    def num_live(self) -> int:
        return sum(len(borrows) for borrows in self._live.values())

    def clear(self) -> None:
        self._live.clear()


# ---------------------------------------------------------------------------
# exporter-side borrow window
# ---------------------------------------------------------------------------
@contextmanager
def borrowed(
    registry: ViewRegistry,
    page_id: int,
    label: str,
    view: object = None,
) -> Iterator[None]:
    """Declare a borrow for the duration of the ``with`` body.

    Exporters of zero-copy page views wrap the window in which the view
    is legally alive (always inside the pin scope).  On exit the borrow
    is retired and, when ``view`` is the handed-out ``memoryview``, the
    export is revoked with ``view.release()`` — any consumer access
    after that raises ``ValueError`` immediately.  A derived view
    (slice, cast or re-export) owns a separate export of the frame
    buffer, so it survives the release and is caught by the evict-time
    probe instead; should anything ever block the release itself, the
    ``BufferError`` is re-raised as :class:`UseAfterUnpinError` naming
    this borrow.  No-op when the sanitizer is off.
    """
    if not sanitize_enabled():
        yield
        return
    ticket = registry.register(page_id, label)
    try:
        yield
    finally:
        registry.release(page_id, ticket)
        if isinstance(view, memoryview):
            try:
                view.release()
            except BufferError as exc:
                raise UseAfterUnpinError(page_id, [label]) from exc


# ---------------------------------------------------------------------------
# buffer-pool hooks
# ---------------------------------------------------------------------------
def check_unpin_to_zero(registry: ViewRegistry, page_id: int) -> None:
    """Reject dropping the last pin of a page with live declared borrows."""
    if not sanitize_enabled():
        return
    labels = registry.live_labels(page_id)
    if labels:
        raise UseAfterUnpinError(page_id, labels)


def check_evict(
    registry: ViewRegistry, page_id: int, data: bytearray, reason: str
) -> None:
    """Reject retiring a frame buffer that still has a live view.

    Two layers: declared borrows in the registry, then a direct probe
    of the ``bytearray`` for surviving buffer exports — appending to an
    exported bytearray raises ``BufferError`` without mutating it, so
    the probe is side-effect free (the appended byte is removed again
    when no export exists).  Exporters revoke their views when the
    borrow window closes, and transient views die inside their pin
    scope, so any export that reaches this probe is a leaked view.
    """
    if not sanitize_enabled():
        return
    labels = registry.live_labels(page_id)
    if labels:
        raise LiveViewAtEvictError(page_id, reason, labels)
    try:
        data.append(0)
    except BufferError:
        raise LiveViewAtEvictError(page_id, reason) from None
    del data[-1:]


def poison(data: bytearray) -> None:
    """Fill a retired frame buffer with :data:`POISON_BYTE`.

    Stale aliases that never export (plain ``bytearray`` references)
    escape both checks above; after poisoning they read ``0xDB...``
    garbage — outside every legal code domain — instead of whatever
    page was loaded into the recycled buffer next.
    """
    if not sanitize_enabled():
        return
    data[:] = bytes([POISON_BYTE]) * len(data)
