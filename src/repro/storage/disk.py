"""Simulated disk: fixed-size pages, every transfer counted.

Stands in for Minibase's raw-disk storage manager.  Pages live in a
dict; what matters for the reproduction is not persistence but that
*every* page read and write is observable through :class:`IOStats`,
because the paper compares algorithms by disk I/O.  Optional page
checksums detect torn/corrupted pages on read (see
:mod:`repro.storage.persist` for on-disk images).
"""

from __future__ import annotations

import zlib

from .stats import IOStats

__all__ = [
    "DiskManager",
    "DEFAULT_PAGE_SIZE",
    "PageNotAllocatedError",
    "PageCorruptionError",
]

DEFAULT_PAGE_SIZE = 1024


class PageNotAllocatedError(KeyError):
    """Raised when reading/writing/freeing a page that was never allocated."""


class PageCorruptionError(RuntimeError):
    """Raised when a checksummed page fails verification on read."""


class DiskManager:
    """A page-addressed simulated disk with I/O accounting."""

    def __init__(
        self, page_size: int = DEFAULT_PAGE_SIZE, checksums: bool = False
    ) -> None:
        if page_size < 64:
            raise ValueError("page size must be at least 64 bytes")
        self.page_size = page_size
        self.checksums = checksums
        self.stats = IOStats()
        self._pages: dict[int, bytes] = {}
        self._checksums: dict[int, int] = {}
        self._next_page_id = 0

    # ------------------------------------------------------------------
    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` contiguous pages; return the first page id."""
        if count < 1:
            raise ValueError("must allocate at least one page")
        first = self._next_page_id
        zero = bytes(self.page_size)
        zero_crc = zlib.crc32(zero) if self.checksums else 0
        for page_id in range(first, first + count):
            self._pages[page_id] = zero
            if self.checksums:
                self._checksums[page_id] = zero_crc
            self.stats.record_allocation()
        self._next_page_id = first + count
        return first

    def deallocate(self, page_id: int) -> None:
        """Free one page (no I/O is charged, matching Minibase)."""
        if page_id not in self._pages:
            raise PageNotAllocatedError(page_id)
        del self._pages[page_id]
        self._checksums.pop(page_id, None)

    def read(self, page_id: int) -> bytes:
        """Read one page, charging one (possibly random) page read.

        With checksums enabled, the page is verified against the CRC
        recorded at write time; mismatch raises
        :class:`PageCorruptionError` instead of silently returning
        corrupt data.
        """
        try:
            data = self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id) from None
        if self.checksums and zlib.crc32(data) != self._checksums.get(page_id):
            raise PageCorruptionError(
                f"page {page_id} failed checksum verification"
            )
        self.stats.record_read(page_id)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write one page, charging one page write."""
        if page_id not in self._pages:
            raise PageNotAllocatedError(page_id)
        if len(data) != self.page_size:
            raise ValueError(
                f"page data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        self._pages[page_id] = bytes(data)
        if self.checksums:
            self._checksums[page_id] = zlib.crc32(self._pages[page_id])
        self.stats.record_write(page_id)

    # ------------------------------------------------------------------
    @property
    def num_allocated(self) -> int:
        return len(self._pages)

    def is_allocated(self, page_id: int) -> bool:
        return page_id in self._pages
