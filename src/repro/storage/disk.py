"""Simulated disk: fixed-size pages, every transfer counted.

Stands in for Minibase's raw-disk storage manager.  Pages live in a
dict; what matters for the reproduction is not persistence but that
*every* page read and write is observable through :class:`IOStats`,
because the paper compares algorithms by disk I/O.  Optional page
checksums detect torn/corrupted pages on read (see
:mod:`repro.storage.persist` for on-disk images), and an optional
:class:`~repro.storage.faults.FaultInjector` makes the disk misbehave
deterministically for chaos testing.
"""

from __future__ import annotations

import threading
import zlib
from typing import Callable, Optional

from .faults import FaultInjector, StorageFault
from .stats import IOStats

#: live page-transfer callback: ``observer(operation, page_id)`` with
#: operation one of ``"read"`` / ``"write"`` / ``"allocate"``
IOObserver = Callable[[str, int], None]

__all__ = [
    "DiskManager",
    "SessionDiskView",
    "DEFAULT_PAGE_SIZE",
    "IOObserver",
    "PageNotAllocatedError",
    "PageCorruptionError",
]

DEFAULT_PAGE_SIZE = 1024


class PageNotAllocatedError(KeyError):
    """Raised when touching a page that was never allocated (or was freed).

    Carries the ``page_id`` and the ``operation`` that tripped over it.
    """

    def __init__(self, page_id: int, operation: str = "access") -> None:
        super().__init__(page_id)
        self.page_id = page_id
        self.operation = operation

    def __str__(self) -> str:
        return f"page {self.page_id} not allocated (operation: {self.operation})"


class PageCorruptionError(StorageFault):
    """Raised when a checksummed page fails verification on read.

    A :class:`~repro.storage.faults.StorageFault` subclass, so it carries
    the page id and operation; ``expected_crc``/``actual_crc`` record the
    mismatch.  Marked transient because a torn in-flight transfer (the
    fault injector's model) clears on re-read; corruption of the stored
    page itself exhausts the buffer pool's retries and escalates to
    :class:`~repro.storage.faults.PermanentIOError`.
    """

    def __init__(
        self,
        page_id: int,
        operation: str = "read",
        expected_crc: Optional[int] = None,
        actual_crc: Optional[int] = None,
    ) -> None:
        super().__init__(
            f"page {page_id} failed checksum verification "
            f"(expected {expected_crc}, got {actual_crc})",
            page_id=page_id,
            operation=operation,
            transient=True,
        )
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc


class DiskManager:
    """A page-addressed simulated disk with I/O accounting."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        checksums: bool = False,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if page_size < 64:
            raise ValueError("page size must be at least 64 bytes")
        self.page_size = page_size
        self.checksums = checksums
        self.stats = IOStats()
        self._pages: dict[int, bytes] = {}
        self._checksums: dict[int, int] = {}
        self._next_page_id = 0
        self.faults: Optional[FaultInjector] = None
        self._observer: Optional[IOObserver] = None
        # structural lock: guards page-id assignment and the page/crc
        # dicts against concurrent session views.  Reads stay lock-free
        # (dict lookups are atomic under the GIL; sessions never write
        # pages another session is concurrently reading — shared corpus
        # pages are read-only, scratch pages are session-private).
        self._lock = threading.RLock()
        #: the root disk that owns page-id assignment; ``self`` for a
        #: base disk, the base for a :class:`SessionDiskView`
        self._shared: "DiskManager" = self
        if faults is not None:
            self.set_faults(faults)

    # ------------------------------------------------------------------
    def set_faults(self, faults: Optional[FaultInjector]) -> None:
        """Attach (or detach, with ``None``) a fault injector.

        Torn-page injection is only detectable with checksums, so a
        tearing injector on an unchecksummed disk is a configuration
        error, refused up front.
        """
        if faults is not None and faults.tears_pages and not self.checksums:
            raise ValueError(
                "torn-page injection requires checksums=True — without "
                "them corruption would be returned silently"
            )
        self.faults = faults

    def set_observer(self, observer: Optional[IOObserver]) -> None:
        """Attach (or detach, with ``None``) a live page-transfer observer.

        The observer is called after the corresponding :class:`IOStats`
        counter is bumped — it sees exactly the transfers the stats
        count.  One is used by
        :meth:`repro.obs.metrics.MetricsRegistry.attach_disk` for
        per-operation counters and the seek-distance histogram; the cost
        when detached is a single ``None`` check per transfer.
        """
        self._observer = observer

    # ------------------------------------------------------------------
    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` contiguous pages; return the first page id.

        Page-id assignment and page-table insertion happen atomically
        on the shared root disk, so concurrent session views never
        hand out overlapping ids; the allocation I/O is charged to
        *this* disk's (possibly session-private) stats.
        """
        if count < 1:
            raise ValueError("must allocate at least one page")
        shared = self._shared
        zero = bytes(self.page_size)
        zero_crc = zlib.crc32(zero) if self.checksums else 0
        with shared._lock:
            first = shared._next_page_id
            shared._next_page_id = first + count
            for page_id in range(first, first + count):
                self._pages[page_id] = zero
                if self.checksums:
                    self._checksums[page_id] = zero_crc
        for page_id in range(first, first + count):
            self.stats.record_allocation()
            if self._observer is not None:
                self._observer("allocate", page_id)
        return first

    def deallocate(self, page_id: int) -> None:
        """Free one page (no I/O is charged, matching Minibase)."""
        with self._shared._lock:
            if page_id not in self._pages:
                raise PageNotAllocatedError(page_id, "deallocate")
            del self._pages[page_id]
            self._checksums.pop(page_id, None)

    def read(self, page_id: int) -> bytes:
        """Read one page, charging one (possibly random) page read.

        An attached fault injector may raise a transient/permanent I/O
        error or tear (corrupt) the returned bytes.  With checksums
        enabled, the page is verified against the CRC recorded at write
        time; mismatch raises :class:`PageCorruptionError` instead of
        silently returning corrupt data.
        """
        try:
            data = self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id, "read") from None
        faults = self.faults
        if faults is not None:
            faults.on_read(page_id)
            torn = faults.filter_read(page_id, data)
            if torn is not data:
                if not self.checksums:
                    raise ValueError(
                        "torn-page injection requires checksums=True"
                    )
                data = torn
        if self.checksums:
            actual = zlib.crc32(data)
            expected = self._checksums.get(page_id)
            if actual != expected:
                raise PageCorruptionError(
                    page_id, "read", expected_crc=expected, actual_crc=actual
                )
        self.stats.record_read(page_id)
        if self._observer is not None:
            self._observer("read", page_id)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write one page, charging one page write."""
        if page_id not in self._pages:
            raise PageNotAllocatedError(page_id, "write")
        if len(data) != self.page_size:
            raise ValueError(
                f"page data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        if self.faults is not None:
            self.faults.on_write(page_id)
        stored = bytes(data)
        with self._shared._lock:
            self._pages[page_id] = stored
            if self.checksums:
                self._checksums[page_id] = zlib.crc32(stored)
        self.stats.record_write(page_id)
        if self._observer is not None:
            self._observer("write", page_id)

    # ------------------------------------------------------------------
    @property
    def num_allocated(self) -> int:
        return len(self._pages)

    def is_allocated(self, page_id: int) -> bool:
        return page_id in self._pages

    # ------------------------------------------------------------------
    def session_view(
        self, faults: Optional[FaultInjector] = None
    ) -> "SessionDiskView":
        """A per-session view over this disk's pages.

        The view shares the page table (concurrent sessions see the
        same corpus and allocate from the same id space, atomically)
        but carries its *own* :class:`IOStats`, observer and fault
        injector — so each session's :class:`~repro.join.base.
        JoinReport` I/O deltas and chaos fault stream are isolated from
        every other in-flight query.  Without this, concurrent queries
        snapshotting one shared ``disk.stats`` corrupt each other's
        before/after deltas.
        """
        return SessionDiskView(self, faults=faults)


class SessionDiskView(DiskManager):
    """A :class:`DiskManager` facade with session-private accounting.

    Aliases the base disk's page and checksum tables — page content
    and allocation are global — while ``stats``, ``faults`` and the
    transfer observer are private to this view.  Structural mutation
    goes through the root disk's lock (``_shared``), so any number of
    views can allocate and write concurrently.
    """

    def __init__(
        self,
        base: DiskManager,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.page_size = base.page_size
        self.checksums = base.checksums
        self.stats = IOStats()
        self._pages = base._pages
        self._checksums = base._checksums
        self._next_page_id = 0  # unused: allocation delegates to _shared
        self.faults = None
        self._observer = None
        self._lock = base._shared._lock
        self._shared = base._shared
        if faults is not None:
            self.set_faults(faults)

    @property
    def base(self) -> DiskManager:
        """The root disk this view was opened on."""
        return self._shared
