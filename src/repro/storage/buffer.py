"""Buffer pool: pin/unpin interface with LRU or clock replacement.

Models Minibase's buffer manager.  All operators access pages through
``pin``/``unpin``; a pin either hits the pool (no I/O) or faults the
page in from the :class:`DiskManager` (one read, plus one write if a
dirty victim is evicted).  The pool size ``num_pages`` is the ``b``
parameter in the paper's cost formulas.

The pool is also the system's fault-absorption layer: every disk read
and write goes through a bounded retry-with-backoff loop
(:class:`~repro.storage.faults.RetryPolicy`).  Transient faults —
injected I/O errors, torn transfers caught by page checksums — are
retried and surface only as ``retries`` in :class:`IOStats`; a fault
that survives the whole retry budget is escalated to a
:class:`~repro.storage.faults.PermanentIOError` carrying the page id
and operation, and counted as a ``giveup``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Optional

from . import sanitize
from .disk import DiskManager, PageCorruptionError
from .faults import (
    DEFAULT_RETRY_POLICY,
    PermanentIOError,
    RetryPolicy,
    TransientIOError,
)

__all__ = [
    "BufferManager",
    "BufferPoolFullError",
    "BufferPoolExhaustedError",
    "Frame",
]


class BufferPoolFullError(RuntimeError):
    """Raised when every frame is pinned and a new page must be brought in."""


class BufferPoolExhaustedError(BufferPoolFullError):
    """Every frame is pinned: no replacement policy can find a victim.

    Raised identically by the LRU and clock paths so callers can handle
    pool exhaustion with one ``except`` clause; carries the pool size
    and the active policy for the error report.
    """

    def __init__(self, num_pages: int, policy: str) -> None:
        super().__init__(
            f"all {num_pages} buffer frames are pinned ({policy} policy)"
        )
        self.num_pages = num_pages
        self.policy = policy


class Frame:
    """One buffer frame: a mutable page image plus pin/dirty state."""

    __slots__ = ("page_id", "data", "pin_count", "dirty", "referenced")

    def __init__(self, page_id: int, data: bytearray) -> None:
        self.page_id = page_id
        self.data = data
        self.pin_count = 1
        self.dirty = False
        self.referenced = True


class BufferManager:
    """A fixed-size pool of page frames over a :class:`DiskManager`."""

    def __init__(
        self,
        disk: DiskManager,
        num_pages: int,
        policy: str = "lru",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if num_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        if policy not in ("lru", "clock"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.disk = disk
        self.num_pages = num_pages
        self.policy = policy
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        # OrderedDict gives us LRU ordering for free; for clock we keep
        # a separate hand index over a stable list of page ids.
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        self._clock_hand = 0
        self.hits = 0
        self.misses = 0
        #: template for zero-filling recycled frame buffers in one memcpy
        self._zero_page = bytes(disk.page_size)
        #: shadow table of live page-view borrows (the view-lifetime
        #: sanitizer, see :mod:`repro.storage.sanitize`; empty and
        #: never consulted unless ``REPRO_SANITIZE`` is on)
        self.views = sanitize.ViewRegistry()

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def pin(self, page_id: int) -> Frame:
        """Bring ``page_id`` into the pool (if absent) and pin it."""
        frame = self._frames.get(page_id)
        if frame is not None:
            frame.pin_count += 1
            frame.referenced = True
            self.hits += 1
            if self.policy == "lru":
                self._frames.move_to_end(page_id)
            return frame
        self.misses += 1
        recycled = self._make_room()
        data = self._read_with_retry(page_id, recycled)
        frame = Frame(page_id, data)
        self._frames[page_id] = frame
        return frame

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; mark the frame dirty if the caller wrote it."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pin_count <= 0:
            raise ValueError(f"page {page_id} is not pinned")
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True
        if frame.pin_count == 0:
            # sanitizer: once the pin count hits zero the frame is a
            # replacement candidate, so no declared borrow may survive
            sanitize.check_unpin_to_zero(self.views, page_id)

    def new_page(self) -> Frame:
        """Allocate a fresh page on disk and pin it (zero-filled, dirty).

        The initial contents are produced in the buffer, so no read I/O
        is charged; the write is charged on eviction or flush.
        """
        page_id = self.disk.allocate()
        recycled = self._make_room()
        if recycled is None:
            data = bytearray(self.disk.page_size)
        else:
            data = recycled
            data[:] = self._zero_page
        frame = Frame(page_id, data)
        frame.dirty = True
        self._frames[page_id] = frame
        return frame

    def flush_page(self, page_id: int) -> None:
        """Write the frame back if dirty (keeps it resident and pinned-state)."""
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            self._write_with_retry(page_id, bytes(frame.data))
            frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty frame."""
        for page_id in list(self._frames):
            self.flush_page(page_id)

    def evict_all(self) -> None:
        """Flush and drop every unpinned frame (used between operators)."""
        for page_id in list(self._frames):
            frame = self._frames[page_id]
            if frame.pin_count == 0:
                sanitize.check_evict(self.views, page_id, frame.data, "evict")
                self.flush_page(page_id)
                del self._frames[page_id]
                sanitize.poison(frame.data)
        self._clock_hand = 0

    def discard_page(self, page_id: int) -> None:
        """Drop a frame without write-back (for pages being deallocated)."""
        frame = self._frames.get(page_id)
        if frame is not None:
            if frame.pin_count > 0:
                raise ValueError(f"page {page_id} is pinned")
            sanitize.check_evict(self.views, page_id, frame.data, "discard")
            del self._frames[page_id]
            sanitize.poison(frame.data)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of pins served without disk I/O (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def num_pinned(self) -> int:
        return sum(1 for frame in self._frames.values() if frame.pin_count > 0)

    @property
    def num_resident(self) -> int:
        return len(self._frames)

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._frames

    # ------------------------------------------------------------------
    # fault-tolerant disk access
    # ------------------------------------------------------------------
    def _read_with_retry(
        self, page_id: int, into: Optional[bytearray] = None
    ) -> bytearray:
        """Read a page into a frame buffer (one copy, recycled if given).

        ``into`` is the evicted victim's buffer when replacement freed
        one: the page image is copied into it by slice assignment — the
        load's only copy — instead of allocating a fresh ``bytearray``
        per miss.  The frame always owns a private mutable buffer; the
        disk's stored ``bytes`` are never aliased.
        """
        attempt = 1
        while True:
            try:
                data = self.disk.read(page_id)
            except PermanentIOError:
                self.disk.stats.record_giveup()
                raise
            except (TransientIOError, PageCorruptionError) as fault:
                attempt = self._next_attempt("read", page_id, attempt, fault)
                continue
            if into is None:
                return bytearray(data)
            into[:] = data
            return into

    def _write_with_retry(self, page_id: int, data: bytes) -> None:
        attempt = 1
        while True:
            try:
                self.disk.write(page_id, data)
                return
            except PermanentIOError:
                self.disk.stats.record_giveup()
                raise
            except TransientIOError as fault:
                attempt = self._next_attempt("write", page_id, attempt, fault)

    def _next_attempt(
        self, operation: str, page_id: int, attempt: int, fault: Exception
    ) -> int:
        """Account one transient fault; sleep the backoff or give up."""
        stats = self.disk.stats
        policy = self.retry
        if attempt >= policy.max_attempts:
            stats.record_giveup()
            raise PermanentIOError(
                f"{operation} of page {page_id} still failing after "
                f"{policy.max_attempts} attempts",
                page_id=page_id,
                operation=operation,
            ) from fault
        stats.record_retry()
        delay = policy.delay(attempt)
        if delay:
            time.sleep(delay)
        return attempt + 1

    # ------------------------------------------------------------------
    # replacement
    # ------------------------------------------------------------------
    def _make_room(self) -> Optional[bytearray]:
        """Evict a victim if the pool is full; hand back its buffer.

        The returned ``bytearray`` is recycled as the incoming frame's
        buffer, making a steady-state miss allocation-free (one slice-
        assignment copy of the page image, no fresh page-sized object).
        Zero-copy page views are only held while a page is pinned, and
        pinned frames are never victims, so recycling cannot mutate a
        live view.  Under ``REPRO_SANITIZE`` that claim is enforced
        rather than assumed: the victim's buffer is probed for leaked
        views, then poisoned and *not* recycled, so the incoming page
        always gets a fresh buffer and any stale alias keeps reading
        poison instead of the next page's bytes.
        """
        if len(self._frames) < self.num_pages:
            return None
        victim = self._choose_victim()
        frame = self._frames[victim]
        sanitize.check_evict(self.views, victim, frame.data, "recycle")
        if frame.dirty:
            self._write_with_retry(victim, bytes(frame.data))
        del self._frames[victim]
        if sanitize.sanitize_enabled():
            sanitize.poison(frame.data)
            return None
        return frame.data

    def _choose_victim(self) -> int:
        if self.policy == "lru":
            for page_id, frame in self._frames.items():
                if frame.pin_count == 0:
                    return page_id
            raise BufferPoolExhaustedError(self.num_pages, self.policy)
        return self._choose_victim_clock()

    def _choose_victim_clock(self) -> int:
        page_ids = list(self._frames)
        # Check exhaustion up front: with every frame pinned the sweeps
        # below would spin without ever yielding a victim, and an empty
        # pool would make the hand's modulo divide by zero.
        if not any(frame.pin_count == 0 for frame in self._frames.values()):
            raise BufferPoolExhaustedError(self.num_pages, self.policy)
        # Two sweeps: the first clears reference bits, the second takes
        # the first unpinned frame.
        for _ in range(2 * len(page_ids)):
            self._clock_hand %= len(page_ids)
            page_id = page_ids[self._clock_hand]
            frame = self._frames[page_id]
            self._clock_hand += 1
            if frame.pin_count > 0:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return page_id
        # All unpinned frames had their bits cleared in sweep one; pick
        # the first unpinned one now (the up-front check guarantees one
        # exists).
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                return page_id
        raise BufferPoolExhaustedError(self.num_pages, self.policy)
