"""Storage-backed incremental update pipeline.

:class:`DocumentStore` keeps the persisted :class:`ElementSet` pages of
a document consistent with a live
:class:`~repro.core.codec.MutableEncoding` as it mutates.  It
subscribes to the encoding's :class:`~repro.core.update.ChangeEvent`
stream, buffers the events as an **update log** (one queue per
materialised tag), and applies them lazily — on the next
:meth:`element_set` access or an explicit :meth:`flush` — as in-place
page patches:

* **insert** — append through ``open_writer(resume=True)``: the new
  record lands in the last page's free space, or on one fresh page.
* **delete** — one-page-local: the freed slot is filled by swapping in
  the *last record of the same page* and the page's record count is
  decremented.  Records therefore stay densely packed per page, and a
  delete never touches a second page.  Mid-file pages may end up
  underfull; only :meth:`compact` reclaims that slack (inserts always
  append — refilling interior holes would make insert placement a
  file-wide search instead of an O(1) tail write).
* **relabel** — a batched subtree relabel overwrites each moved code
  in place at its ``(page, slot)`` — the patch set touches exactly the
  pages holding the affected subtree's records.  All old codes leave
  the directory before any new one enters (intra-batch collisions are
  legal, see :class:`~repro.core.update.ChangeEvent`).
* **grow** — a global relabel is a *streamed rewrite*: every page is
  patched once, each record shifted by ``delta`` via the core kernels
  (:func:`~repro.core.batch.grow_codes`) — one pass, one shift per
  record, page count unchanged.  Progress is tracked per page so an
  interrupted rewrite resumes where it stopped.

A per-tag **directory** ``code -> (page position, slot)`` makes every
patch O(affected records); it mirrors exactly what the pages hold, so
tests can cross-check it against a raw scan.

**Index maintenance.**  The pointer B+-tree start index is maintained
incrementally (``insert``/``delete``/relabel as delete+insert); tree
growth shifts every key, so growth rebuilds it.  The interval tree and
the flat-array variants are *static by contract* — any update marks
them stale (:class:`~repro.index.staleness.StaleIndexError` on probe)
and the store rebuilds on next access.  Invalidate-and-rebuild is
behind the same accessor, so callers always receive a fresh index.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core import batch, pbitree
from ..core.pbitree import PBiCode
from ..core.update import ChangeEvent
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from . import page as page_layout
from .buffer import BufferManager
from .elementset import ElementSet

if TYPE_CHECKING:
    from ..core.codec import MutableEncoding
    from ..index.bptree import BPlusTree
    from ..index.interval_tree import IntervalTree

__all__ = ["UpdateLogRecord", "DocumentStore"]


@dataclass(frozen=True)
class UpdateLogRecord:
    """One buffered mutation of one tag's element set.

    ``op`` is ``"insert"`` (``code`` arrives), ``"delete"`` (``code``
    leaves), ``"relabel"`` (``moves`` holds ``(old, new)`` pairs of one
    batched subtree relabel) or ``"grow"`` (every record shifts left by
    ``delta``).  Records carry explicit codes so application never
    consults the (already further mutated) in-memory encoding.
    """

    op: str
    code: int = 0
    moves: tuple[tuple[int, int], ...] = ()
    delta: int = 0


class _TagStore:
    """Persisted state of one tag: pages, directory, log, indexes."""

    __slots__ = (
        "tag", "elements", "directory", "page_counts", "heights",
        "pending", "grow_done", "start_index", "interval_index",
    )

    def __init__(self, tag: str, elements: ElementSet) -> None:
        self.tag = tag
        self.elements = elements
        #: code -> (page position in the file, record slot on the page)
        self.directory: dict[int, tuple[int, int]] = {}
        #: per-page record counts (mirror of the on-page headers)
        self.page_counts: list[int] = []
        #: height -> live record count (keeps ``known_heights`` exact)
        self.heights: dict[int, int] = {}
        self.pending: deque[UpdateLogRecord] = deque()
        #: pages already rewritten of an in-progress grow (resume point)
        self.grow_done = 0
        self.start_index: Optional["BPlusTree"] = None
        self.interval_index: Optional["IntervalTree"] = None


class DocumentStore:
    """Keeps ElementSet pages and indexes consistent with an encoding."""

    def __init__(
        self,
        bufmgr: BufferManager,
        encoding: "MutableEncoding",
        name: str = "doc",
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.bufmgr = bufmgr
        self.encoding = encoding
        self.name = name
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tags: dict[str, _TagStore] = {}
        #: bumped whenever buffered updates apply to any tag's pages —
        #: the service plan cache keys on this to invalidate cached
        #: plans when the dataset a plan was costed against changes
        self.version = 0
        encoding.listeners.append(self._on_change)

    def detach(self) -> None:
        """Stop receiving change events (keeps the persisted state)."""
        try:
            self.encoding.listeners.remove(self._on_change)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # the update log (listener side)
    # ------------------------------------------------------------------
    def _on_change(self, event: ChangeEvent) -> None:
        """Fold one encoding mutation into the per-tag update logs.

        Only materialised tags log anything — an unmaterialised tag's
        first :meth:`element_set` builds from the current encoding
        state, which already includes this event.
        """
        if self.metrics is not None:
            self.metrics.counter(f"docstore.events.{event.kind}").inc()
        tags = self.encoding.tree.tags
        if event.kind == "insert":
            store = self._tags.get(tags[event.node])
            if store is not None:
                store.pending.append(
                    UpdateLogRecord("insert", code=event.new_code)
                )
        elif event.kind == "delete":
            store = self._tags.get(tags[event.node])
            if store is not None:
                store.pending.append(
                    UpdateLogRecord("delete", code=event.old_code)
                )
        elif event.kind == "relabel":
            by_tag: dict[str, list[tuple[int, int]]] = {}
            for node, old_code, new_code in event.moves:
                tag = tags[node]
                if tag in self._tags:
                    by_tag.setdefault(tag, []).append((old_code, new_code))
            for tag, moves in by_tag.items():
                self._tags[tag].pending.append(
                    UpdateLogRecord("relabel", moves=tuple(moves))
                )
        elif event.kind == "grow":
            for store in self._tags.values():
                store.pending.append(UpdateLogRecord("grow", delta=event.delta))

    def pending_updates(self, tag: Optional[str] = None) -> int:
        """Buffered log records not yet applied (one tag, or all)."""
        if tag is not None:
            store = self._tags.get(tag)
            return len(store.pending) if store is not None else 0
        return sum(len(store.pending) for store in self._tags.values())

    # ------------------------------------------------------------------
    # materialisation and access
    # ------------------------------------------------------------------
    def element_set(self, tag: str) -> ElementSet:
        """The maintained on-disk element set for ``tag``.

        First access materialises from the live encoding; later
        accesses apply any buffered update log first, so the returned
        set always reflects every mutation made so far.
        """
        return self._fresh_store(tag).elements

    def tags(self) -> list[str]:
        """Materialised tags, sorted."""
        return sorted(self._tags)

    def _fresh_store(self, tag: str) -> _TagStore:
        store = self._tags.get(tag)
        if store is None:
            store = self._materialize(tag)
            self._tags[tag] = store
        elif store.pending:
            self._apply(store)
        return store

    def _materialize(self, tag: str) -> _TagStore:
        encoding = self.encoding
        tree = encoding.tree
        codes = [
            tree.codes[node]
            for node in tree.iter_by_tag(tag)
            if encoding.is_alive(node)
        ]
        elements = ElementSet.from_codes(
            self.bufmgr,
            codes,
            encoding.tree_height,
            name=f"{self.name}//{tag}",
        )
        store = _TagStore(tag, elements)
        capacity = elements.heap.capacity
        for position, code in enumerate(codes):
            page_index, slot = divmod(position, capacity)
            store.directory[code] = (page_index, slot)
            if slot == 0:
                store.page_counts.append(0)
            store.page_counts[page_index] += 1
            height = pbitree.height_of(PBiCode(code))
            store.heights[height] = store.heights.get(height, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("docstore.materialized").inc()
        return store

    # ------------------------------------------------------------------
    # applying the log (page patching)
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Apply every buffered log record now; returns records applied."""
        applied = 0
        for store in self._tags.values():
            applied += self._apply(store)
        return applied

    def _apply(self, store: _TagStore) -> int:
        """Drain one tag's update log onto its pages.

        Records are popped only after they applied cleanly, so a
        storage fault mid-drain leaves the remainder (including a
        partially rewritten grow, via ``grow_done``) to be retried by
        the next access.
        """
        applied = 0
        with self.tracer.span(
            "docstore.apply", tag=store.tag, records=len(store.pending)
        ):
            while store.pending:
                record = store.pending[0]
                if record.op == "insert":
                    self._apply_insert(store, record.code)
                elif record.op == "delete":
                    self._apply_delete(store, record.code)
                elif record.op == "relabel":
                    self._apply_relabel(store, record.moves)
                else:
                    self._apply_grow(store, record.delta)
                store.pending.popleft()
                applied += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        f"docstore.applied.{record.op}"
                    ).inc()
        if applied:
            store.elements.known_heights = frozenset(store.heights)
            self.version += 1
        return applied

    def _apply_insert(self, store: _TagStore, code: int) -> None:
        heap = store.elements.heap
        if store.page_counts and store.page_counts[-1] < heap.capacity:
            page_index = len(store.page_counts) - 1
        else:
            page_index = len(store.page_counts)
            store.page_counts.append(0)
        writer = heap.open_writer(resume=True)
        try:
            writer.append((code,))
        finally:
            writer.close()
        slot = store.page_counts[page_index]
        store.page_counts[page_index] += 1
        store.directory[code] = (page_index, slot)
        self._height_delta(store, code, +1)
        index = store.start_index
        if index is not None:
            if self._incremental_index(index):
                index.insert(pbitree.start_of(PBiCode(code)), code)
            else:
                self._retire_start_index(store, "insert under a static index")
        self._retire_interval_index(store, "insert")

    def _apply_delete(self, store: _TagStore, code: int) -> None:
        location = store.directory.pop(code, None)
        if location is None:
            return  # already superseded (e.g. compaction raced the log)
        page_index, slot = location
        heap = store.elements.heap
        codec = heap.codec
        size = codec.record_size
        frame = self.bufmgr.pin(heap.page_ids[page_index])
        try:
            count = store.page_counts[page_index]
            last = count - 1
            if slot != last:
                # fill the hole with the page's own last record so the
                # page stays densely packed — a one-page patch
                moved = codec.unpack(
                    frame.data, page_layout.PAGE_HEADER_SIZE + last * size
                )
                codec.pack_into(
                    frame.data,
                    page_layout.PAGE_HEADER_SIZE + slot * size,
                    moved,
                )
                store.directory[moved[0]] = (page_index, slot)
            page_layout.set_record_count(frame.data, last)
        finally:
            self.bufmgr.unpin(heap.page_ids[page_index], dirty=True)
        store.page_counts[page_index] = count - 1
        heap.num_records -= 1
        self._height_delta(store, code, -1)
        index = store.start_index
        if index is not None:
            if self._incremental_index(index):
                index.delete(pbitree.start_of(PBiCode(code)), code)
            else:
                self._retire_start_index(store, "delete under a static index")
        self._retire_interval_index(store, "delete")

    def _apply_relabel(
        self, store: _TagStore, moves: tuple[tuple[int, int], ...]
    ) -> None:
        heap = store.elements.heap
        codec = heap.codec
        size = codec.record_size
        # free every old code first: within one batch a new code may
        # equal another entry's old code (see ChangeEvent)
        locations = [store.directory.pop(old) for old, _new in moves]
        patches: list[tuple[int, int, int]] = [  # (page, slot, new code)
            (page_index, slot, new_code)
            for (page_index, slot), (_old, new_code) in zip(locations, moves)
        ]
        by_page: dict[int, list[tuple[int, int]]] = {}
        for page_index, slot, new_code in patches:
            by_page.setdefault(page_index, []).append((slot, new_code))
        for page_index in sorted(by_page):
            frame = self.bufmgr.pin(heap.page_ids[page_index])
            try:
                for slot, new_code in by_page[page_index]:
                    codec.pack_into(
                        frame.data,
                        page_layout.PAGE_HEADER_SIZE + slot * size,
                        (new_code,),
                    )
            finally:
                self.bufmgr.unpin(heap.page_ids[page_index], dirty=True)
        for page_index, slot, new_code in patches:
            store.directory[new_code] = (page_index, slot)
        for old_code, new_code in moves:
            self._height_delta(store, old_code, -1)
            self._height_delta(store, new_code, +1)
        index = store.start_index
        if index is not None:
            if self._incremental_index(index):
                for old_code, new_code in moves:
                    index.delete(pbitree.start_of(PBiCode(old_code)), old_code)
                    index.insert(pbitree.start_of(PBiCode(new_code)), new_code)
            else:
                self._retire_start_index(store, "relabel under a static index")
        self._retire_interval_index(store, "relabel")

    def _apply_grow(self, store: _TagStore, delta: int) -> None:
        """Streamed one-shift-per-record rewrite of every page."""
        from .record import MAX_CODE_BITS

        if store.elements.tree_height + delta > MAX_CODE_BITS:
            raise ValueError(
                f"growing to height {store.elements.tree_height + delta} "
                f"exceeds the {MAX_CODE_BITS}-bit storage code space"
            )
        heap = store.elements.heap
        codec = heap.codec
        size = codec.record_size
        while store.grow_done < len(heap.page_ids):
            page_id = heap.page_ids[store.grow_done]
            frame = self.bufmgr.pin(page_id)
            try:
                fields = page_layout.read_record_array(frame.data, codec)
                grown = batch.grow_codes(fields, delta)
                if isinstance(fields, memoryview):
                    fields.release()
                offset = page_layout.PAGE_HEADER_SIZE
                for code in grown:
                    codec.pack_into(frame.data, offset, (code,))
                    offset += size
            finally:
                self.bufmgr.unpin(page_id, dirty=True)
            store.grow_done += 1
        store.grow_done = 0
        store.directory = {
            pbitree.grown_code(PBiCode(code), delta): location
            for code, location in store.directory.items()
        }
        store.heights = {
            height + delta: count for height, count in store.heights.items()
        }
        store.elements.tree_height += delta
        # every key of the start index shifted: growth rebuilds
        self._retire_start_index(store, f"tree growth by {delta}")
        self._retire_interval_index(store, "tree growth")

    @staticmethod
    def _height_delta(store: _TagStore, code: int, delta: int) -> None:
        height = pbitree.height_of(PBiCode(code))
        count = store.heights.get(height, 0) + delta
        if count > 0:
            store.heights[height] = count
        else:
            store.heights.pop(height, None)

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------
    @staticmethod
    def _incremental_index(index: "BPlusTree") -> bool:
        """True for the pointer B+-tree (patchable); False for static."""
        from ..index.flat import FlatStartIndex

        return not isinstance(index, FlatStartIndex)

    def _retire_start_index(self, store: _TagStore, reason: str) -> None:
        if store.start_index is not None:
            store.start_index.mark_stale(reason)
            store.start_index = None
            if self.metrics is not None:
                self.metrics.counter("docstore.index_rebuilds.start").inc()

    def _retire_interval_index(self, store: _TagStore, reason: str) -> None:
        if store.interval_index is not None:
            store.interval_index.mark_stale(reason)
            store.interval_index = None
            if self.metrics is not None:
                self.metrics.counter("docstore.index_rebuilds.interval").inc()

    def start_index(self, tag: str) -> "BPlusTree":
        """Maintained B+-tree on region Start (rebuilt when retired)."""
        from ..join.inljn import build_start_index

        store = self._fresh_store(tag)
        if store.start_index is None:
            store.start_index = build_start_index(store.elements, self.bufmgr)
        return store.start_index

    def interval_index(self, tag: str) -> "IntervalTree":
        """Interval tree over regions (static: rebuilt after any update)."""
        from ..join.inljn import build_interval_index

        store = self._fresh_store(tag)
        if store.interval_index is None:
            store.interval_index = build_interval_index(
                store.elements, self.bufmgr
            )
        return store.interval_index

    def peek_start_index(self, tag: str) -> Optional["BPlusTree"]:
        """The surviving start index, if any — never builds one.

        Applies the pending log first, so an index retired by a
        buffered update reads as absent (what the planner must see).
        """
        if tag not in self._tags:
            return None
        return self._fresh_store(tag).start_index

    def peek_interval_index(self, tag: str) -> Optional["IntervalTree"]:
        """The surviving interval index, if any — never builds one."""
        if tag not in self._tags:
            return None
        return self._fresh_store(tag).interval_index

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self, tag: Optional[str] = None) -> None:
        """Rebuild tag heaps densely in document order.

        Reclaims the interior-page slack deletes leave behind and
        restores the exact page layout a from-scratch materialisation
        would produce (what the report-equality oracle compares
        against).  Pending log records for the tag are superseded by
        the rebuild and dropped.
        """
        names = [tag] if tag is not None else list(self._tags)
        for name in names:
            store = self._tags.get(name)
            if store is None:
                continue
            store.pending.clear()
            store.grow_done = 0
            self._retire_start_index(store, "compaction")
            self._retire_interval_index(store, "compaction")
            store.elements.destroy()
            del self._tags[name]
            self._fresh_store(name)
            if self.metrics is not None:
                self.metrics.counter("docstore.compactions").inc()

    def verify(self, tag: str) -> None:
        """Cross-check pages, directory and height stats (tests/chaos).

        Raises ``AssertionError`` on any divergence between what the
        pages hold, what the directory claims, and what the live
        encoding says this tag's codes are.
        """
        store = self._fresh_store(tag)
        scanned: dict[int, tuple[int, int]] = {}
        for page_index, codes in enumerate(store.elements.scan_pages()):
            assert len(codes) == store.page_counts[page_index], (
                f"page {page_index}: header count {len(codes)} != mirror "
                f"{store.page_counts[page_index]}"
            )
            for slot, code in enumerate(codes):
                scanned[code] = (page_index, slot)
        assert scanned == store.directory, "directory diverged from pages"
        tree = self.encoding.tree
        expected = sorted(
            tree.codes[node]
            for node in tree.iter_by_tag(tag)
            if self.encoding.is_alive(node)
        )
        assert sorted(scanned) == expected, (
            f"tag {tag!r}: persisted codes diverged from the encoding"
        )
        heights: dict[int, int] = {}
        for code in scanned:
            height = pbitree.height_of(PBiCode(code))
            heights[height] = heights.get(height, 0) + 1
        assert heights == store.heights, "height stats diverged"
        assert store.elements.tree_height == self.encoding.tree_height

    def __repr__(self) -> str:
        return (
            f"<DocumentStore {self.name!r} tags={len(self._tags)} "
            f"pending={self.pending_updates()}>"
        )
