"""Deterministic fault injection for the paged storage engine.

Real disks and buffer pools fail: reads time out, writes bounce, pages
tear mid-transfer.  The evaluation protocol of the paper never exercises
those paths, but a production containment-join system lives or dies on
them, so this module gives the simulated disk a *seeded*, *replayable*
failure model:

* :class:`FaultConfig` — per-operation fault probabilities (transient
  read/write errors, torn pages, latency) drawn from one seeded RNG, so
  a chaos run is reproduced exactly by its seed;
* :class:`FaultInjector` — the engine that the :class:`DiskManager`
  consults on every page transfer; supports scheduled one-shot faults
  ("fail the 3rd read of page 7") on top of the probabilistic model;
* :class:`RetryPolicy` — the bounded-backoff retry discipline the
  buffer pool applies to transient faults;
* the :class:`StorageFault` exception hierarchy — every storage-layer
  failure carries the page id and operation, so a join that cannot
  complete fails fast with full context instead of returning silently
  truncated results.

Torn-page injection corrupts the bytes returned by a read; detection
relies on page checksums, so the disk refuses a tearing injector unless
``checksums=True``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, fields
from typing import Optional

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "ScheduledFault",
    "StorageFault",
    "TransientIOError",
    "PermanentIOError",
    "FAULT_KINDS",
]

#: fault kinds accepted by :meth:`FaultInjector.schedule`
FAULT_KINDS = ("read-error", "write-error", "torn-page", "latency")


class StorageFault(RuntimeError):
    """A storage-layer failure, with the page and operation that caused it.

    ``transient`` distinguishes faults worth retrying (the buffer pool's
    :class:`RetryPolicy` handles those) from permanent ones.  ``context``
    accumulates location notes (heap file, cursor position, algorithm)
    as the fault propagates upward, so a chaos-run failure pinpoints
    itself without a debugger.
    """

    def __init__(
        self,
        message: str = "storage fault",
        *,
        page_id: Optional[int] = None,
        operation: Optional[str] = None,
        transient: bool = False,
    ) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.operation = operation
        self.transient = transient
        self.context: list[str] = []
        #: name of the join algorithm that hit the fault, if any
        self.algorithm: Optional[str] = None

    def add_context(self, note: str) -> None:
        """Record where the fault passed through (newest first)."""
        self.context.append(note)

    def __str__(self) -> str:
        base = super().__str__()
        parts = [base]
        if self.page_id is not None or self.operation is not None:
            parts.append(f"[page={self.page_id}, op={self.operation}]")
        if self.algorithm:
            parts.append(f"algorithm={self.algorithm}")
        if self.context:
            parts.append("via " + " <- ".join(self.context))
        return " ".join(parts)


class TransientIOError(StorageFault):
    """A fault that a retry may clear (timeout, bus glitch, torn read)."""

    def __init__(self, message: str, *, page_id: int, operation: str) -> None:
        super().__init__(
            message, page_id=page_id, operation=operation, transient=True
        )


class PermanentIOError(StorageFault):
    """A fault retries cannot clear (dead sector, exhausted attempts)."""

    def __init__(self, message: str, *, page_id: int, operation: str) -> None:
        super().__init__(
            message, page_id=page_id, operation=operation, transient=False
        )


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient faults.

    ``max_attempts`` counts the initial try; with the default of 4 a
    transient fault is retried up to 3 times before the buffer pool
    gives up and escalates to :class:`PermanentIOError`.  The delay
    before the *n*-th retry is ``backoff_base * 2**(n-1)``, capped at
    ``backoff_cap`` seconds; the simulated-disk default is zero sleep so
    tests stay fast while the retry *accounting* stays observable.
    """

    max_attempts: int = 4
    backoff_base: float = 0.0
    backoff_cap: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if self.backoff_base == 0.0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


DEFAULT_RETRY_POLICY = RetryPolicy()


# ----------------------------------------------------------------------
# configuration and accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultConfig:
    """Probabilistic fault model, fully determined by ``seed``.

    Rates are per matching operation: ``read_error_rate=0.02`` makes 2%
    of page reads raise a :class:`TransientIOError`.  Torn pages corrupt
    the returned bytes instead of raising, modelling partial transfers
    that only checksums catch.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_page_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name in ("seed", "latency_seconds"):
                continue
            rate = getattr(self, spec.name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{spec.name} must be in [0, 1], got {rate}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")

    @property
    def tears_pages(self) -> bool:
        return self.torn_page_rate > 0.0


@dataclass
class FaultStats:
    """Counts of every fault the injector actually fired."""

    read_errors: int = 0
    write_errors: int = 0
    torn_reads: int = 0
    latency_events: int = 0
    scheduled_fired: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.read_errors
            + self.write_errors
            + self.torn_reads
            + self.latency_events
        )


@dataclass
class ScheduledFault:
    """A one-shot fault armed to fire on a specific future operation.

    ``at`` counts *matching* operations from the moment of scheduling
    (1 = the very next one); ``page_id=None`` matches any page.
    ``permanent`` read/write errors raise :class:`PermanentIOError`
    (which the buffer pool never retries); a permanent torn page keeps
    corrupting every subsequent read of that page, so bounded retries
    exhaust and escalate.
    """

    kind: str
    operation: str
    at: int = 1
    page_id: Optional[int] = None
    permanent: bool = False
    seconds: float = 0.0
    _remaining: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.operation not in ("read", "write"):
            raise ValueError(f"unknown operation {self.operation!r}")
        if self.at < 1:
            raise ValueError("'at' counts operations from 1")
        self._remaining = self.at

    def matches(self, operation: str, page_id: int) -> bool:
        return self.operation == operation and (
            self.page_id is None or self.page_id == page_id
        )


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Seeded fault source consulted by :class:`DiskManager` on every I/O.

    One injector drives one disk.  All probabilistic draws come from a
    single ``random.Random(config.seed)``, so the exact same fault
    schedule replays from the seed alone (given the same sequence of
    page operations — which the deterministic join algorithms provide).
    """

    def __init__(
        self, config: Optional[FaultConfig] = None, **rates: float
    ) -> None:
        """Pass a :class:`FaultConfig`, or its fields as keyword args."""
        if config is not None and rates:
            raise ValueError("pass a FaultConfig or keyword rates, not both")
        self.config = config if config is not None else FaultConfig(**rates)
        self.stats = FaultStats()
        self._rng = random.Random(self.config.seed)
        self._scheduled: list[ScheduledFault] = []
        self._torn_pages: set[int] = set()
        self._tear_once: set[int] = set()
        self.reads_seen = 0
        self.writes_seen = 0

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.config.seed} "
            f"injected={self.stats.total_injected} "
            f"scheduled={len(self._scheduled)}>"
        )

    # -- configuration --------------------------------------------------
    @property
    def tears_pages(self) -> bool:
        """True if this injector may corrupt read payloads."""
        return self.config.tears_pages or bool(self._torn_pages) or any(
            f.kind == "torn-page" for f in self._scheduled
        )

    def schedule(
        self,
        kind: str,
        operation: Optional[str] = None,
        at: int = 1,
        page_id: Optional[int] = None,
        permanent: bool = False,
        seconds: float = 0.0,
    ) -> ScheduledFault:
        """Arm a one-shot fault; returns the armed record.

        ``operation`` defaults to the natural one for the kind
        (``write-error`` -> write, everything else -> read).
        """
        if operation is None:
            operation = "write" if kind == "write-error" else "read"
        fault = ScheduledFault(
            kind=kind,
            operation=operation,
            at=at,
            page_id=page_id,
            permanent=permanent,
            seconds=seconds,
        )
        self._scheduled.append(fault)
        return fault

    def mark_page_torn(self, page_id: int) -> None:
        """Permanently corrupt every future read of ``page_id``."""
        self._torn_pages.add(page_id)

    # -- hooks called by DiskManager ------------------------------------
    def on_read(self, page_id: int) -> None:
        """May raise, may sleep; called before a read returns data."""
        self.reads_seen += 1
        self._fire_scheduled("read", page_id)
        cfg = self.config
        rng = self._rng
        if cfg.latency_rate and rng.random() < cfg.latency_rate:
            self.stats.latency_events += 1
            if cfg.latency_seconds:
                time.sleep(cfg.latency_seconds)
        if cfg.read_error_rate and rng.random() < cfg.read_error_rate:
            self.stats.read_errors += 1
            raise TransientIOError(
                f"injected transient read error (#{self.stats.read_errors})",
                page_id=page_id,
                operation="read",
            )

    def on_write(self, page_id: int) -> None:
        """May raise, may sleep; called before a write is applied."""
        self.writes_seen += 1
        self._fire_scheduled("write", page_id)
        cfg = self.config
        rng = self._rng
        if cfg.latency_rate and rng.random() < cfg.latency_rate:
            self.stats.latency_events += 1
            if cfg.latency_seconds:
                time.sleep(cfg.latency_seconds)
        if cfg.write_error_rate and rng.random() < cfg.write_error_rate:
            self.stats.write_errors += 1
            raise TransientIOError(
                f"injected transient write error (#{self.stats.write_errors})",
                page_id=page_id,
                operation="write",
            )

    def filter_read(self, page_id: int, data: bytes) -> bytes:
        """Possibly return a torn (corrupted) copy of ``data``."""
        if page_id in self._torn_pages:
            self.stats.torn_reads += 1
            return self._tear(data)
        if page_id in self._tear_once:
            self._tear_once.discard(page_id)
            self.stats.torn_reads += 1
            return self._tear(data)
        cfg = self.config
        if cfg.torn_page_rate and self._rng.random() < cfg.torn_page_rate:
            self.stats.torn_reads += 1
            return self._tear(data)
        return data

    # -- internals ------------------------------------------------------
    @staticmethod
    def _tear(data: bytes) -> bytes:
        """A torn transfer: the tail of the page is stale garbage."""
        torn = bytearray(data)
        half = len(torn) // 2
        for index in range(half, len(torn)):
            torn[index] ^= 0xA5
        torn[0] ^= 0xFF  # guarantee a change even for tiny pages
        return bytes(torn)

    def _fire_scheduled(self, operation: str, page_id: int) -> None:
        for fault in list(self._scheduled):
            if not fault.matches(operation, page_id):
                continue
            fault._remaining -= 1
            if fault._remaining > 0:
                continue
            self._scheduled.remove(fault)
            self.stats.scheduled_fired += 1
            self._apply_scheduled(fault, operation, page_id)

    def _apply_scheduled(
        self, fault: ScheduledFault, operation: str, page_id: int
    ) -> None:
        if fault.kind == "latency":
            self.stats.latency_events += 1
            if fault.seconds:
                time.sleep(fault.seconds)
            return
        if fault.kind == "torn-page":
            # counted in filter_read, where the corruption actually lands
            if fault.permanent:
                self._torn_pages.add(page_id)
            else:
                self._tear_once.add(page_id)
            return
        message = (
            f"scheduled {'permanent' if fault.permanent else 'transient'} "
            f"{fault.kind} on page {page_id}"
        )
        if fault.kind == "read-error":
            self.stats.read_errors += 1
        else:
            self.stats.write_errors += 1
        if fault.permanent:
            raise PermanentIOError(message, page_id=page_id, operation=operation)
        raise TransientIOError(message, page_id=page_id, operation=operation)
