"""Fixed-size record codecs.

Element sets store one PBiTree code per record (8 bytes).  Partitioning
and rollup intermediates store code pairs (16 bytes).  Codecs wrap
``struct.Struct`` with page-payload helpers; all values are little-
endian unsigned 64-bit, which bounds the supported PBiTree height at 63
(plenty: the paper notes real data trees binarize within a constant
number of levels).
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Iterable, Iterator, Sequence

__all__ = [
    "RecordCodec",
    "CODE",
    "PAIR",
    "TRIPLE",
    "MAX_CODE_BITS",
    "owned_u64_array",
]

MAX_CODE_BITS = 63

#: the record format is explicitly little-endian ("<Q"); a zero-copy
#: ``memoryview.cast("Q")`` reads native order, so the cast is only a
#: faithful decode on little-endian hosts (everything else falls back
#: to the scalar struct path)
_NATIVE_LE = sys.byteorder == "little"


class RecordCodec:
    """Pack/unpack fixed-size tuples of unsigned 64-bit ints."""

    def __init__(self, arity: int) -> None:
        if arity < 1:
            raise ValueError("records need at least one field")
        self.arity = arity
        self._struct = struct.Struct("<" + "Q" * arity)
        self.record_size = self._struct.size

    def pack(self, record: Sequence[int]) -> bytes:
        return self._struct.pack(*record)

    def unpack(self, data: bytes, offset: int = 0) -> tuple[int, ...]:
        return self._struct.unpack_from(data, offset)

    def pack_into(self, buffer: bytearray, offset: int, record: Sequence[int]) -> None:
        self._struct.pack_into(buffer, offset, *record)

    def iter_unpack(self, payload: bytes | bytearray, count: int) -> Iterator[tuple[int, ...]]:
        """Decode the first ``count`` records from a page payload."""
        view = memoryview(payload)[: count * self.record_size]
        return self._struct.iter_unpack(view)

    def pack_many(self, records: Iterable[Sequence[int]]) -> bytes:
        """Pack records into one preallocated buffer (single allocation).

        One ``bytearray`` sized up front plus ``pack_into`` per record
        replaces the quadratic-ish ``b"".join`` of per-record ``pack``
        results (every record used to allocate its own 8-to-24-byte
        ``bytes`` object just to be copied once more by the join).
        """
        if not isinstance(records, (list, tuple)):
            records = list(records)
        pack_into = self._struct.pack_into
        size = self.record_size
        buffer = bytearray(len(records) * size)
        offset = 0
        for record in records:
            pack_into(buffer, offset, *record)
            offset += size
        return bytes(buffer)

    def unpack_array(
        self, payload: "bytes | bytearray | memoryview", count: int
    ) -> "Sequence[int]":
        """Zero-copy flat view of the first ``count`` records' fields.

        Returns a ``memoryview`` cast to unsigned 64-bit elements —
        ``count * arity`` integers, record fields interleaved — without
        materialising per-record tuples.  The view aliases ``payload``:
        it is only valid while the underlying buffer frame stays pinned
        (copy into ``array("Q", view)`` to outlive the pin).  On
        big-endian hosts the cast would misread the little-endian
        record format, so the scalar decode runs instead.
        """
        if _NATIVE_LE:
            view = memoryview(payload)[: count * self.record_size]
            return view.cast("Q")
        return [
            field
            for record in self.iter_unpack(bytes(payload), count)
            for field in record
        ]


def owned_u64_array(fields: "Sequence[int]") -> "array[int]":
    """Copy a decoded field view into an owning ``array("Q")``.

    The approved ownership-escape pattern for :meth:`RecordCodec.
    unpack_array` views: one ``memcpy`` (``frombytes`` of the byte
    cast) on little-endian hosts, a plain element copy for the
    big-endian list fallback.  The result has no relationship to the
    source buffer, so it may be cached, returned or stored freely —
    which is why the ``view-escape`` checker treats a view wrapped in
    this call as consumed.
    """
    if isinstance(fields, memoryview):
        copy = array("Q")
        # bulk memcpy; the view is produced on little-endian hosts
        # only, matching frombytes' native interpretation
        copy.frombytes(fields.cast("B"))
        return copy
    return array("Q", fields)


#: One PBiTree code per record — element sets.
CODE = RecordCodec(1)
#: A code pair — rolled records, vertical-partition tuples, result pairs.
PAIR = RecordCodec(2)
#: Three fields — e.g. (key, code, aux) index entries.
TRIPLE = RecordCodec(3)
