"""Fixed-size record codecs.

Element sets store one PBiTree code per record (8 bytes).  Partitioning
and rollup intermediates store code pairs (16 bytes).  Codecs wrap
``struct.Struct`` with page-payload helpers; all values are little-
endian unsigned 64-bit, which bounds the supported PBiTree height at 63
(plenty: the paper notes real data trees binarize within a constant
number of levels).
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, Sequence

__all__ = ["RecordCodec", "CODE", "PAIR", "TRIPLE", "MAX_CODE_BITS"]

MAX_CODE_BITS = 63


class RecordCodec:
    """Pack/unpack fixed-size tuples of unsigned 64-bit ints."""

    def __init__(self, arity: int) -> None:
        if arity < 1:
            raise ValueError("records need at least one field")
        self.arity = arity
        self._struct = struct.Struct("<" + "Q" * arity)
        self.record_size = self._struct.size

    def pack(self, record: Sequence[int]) -> bytes:
        return self._struct.pack(*record)

    def unpack(self, data: bytes, offset: int = 0) -> tuple[int, ...]:
        return self._struct.unpack_from(data, offset)

    def pack_into(self, buffer: bytearray, offset: int, record: Sequence[int]) -> None:
        self._struct.pack_into(buffer, offset, *record)

    def iter_unpack(self, payload: bytes | bytearray, count: int) -> Iterator[tuple[int, ...]]:
        """Decode the first ``count`` records from a page payload."""
        view = memoryview(payload)[: count * self.record_size]
        return self._struct.iter_unpack(view)

    def pack_many(self, records: Iterable[Sequence[int]]) -> bytes:
        return b"".join(self._struct.pack(*record) for record in records)


#: One PBiTree code per record — element sets.
CODE = RecordCodec(1)
#: A code pair — rolled records, vertical-partition tuples, result pairs.
PAIR = RecordCodec(2)
#: Three fields — e.g. (key, code, aux) index entries.
TRIPLE = RecordCodec(3)
