"""Heap files: unordered sequences of fixed-size records on pages.

A :class:`HeapFile` is the storage representation of every element set,
sort run and partition in this system.  Pages are chained (and, when
written in one go, disk-contiguous so scans count as sequential reads).
All access goes through the buffer manager, one pinned page at a time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..core import batch as batch_module
from . import page as page_layout
from . import sanitize
from .buffer import BufferManager
from .faults import StorageFault
from .record import RecordCodec, owned_u64_array

__all__ = ["HeapFile", "HeapFileWriter"]


class HeapFile:
    """A chain of record pages holding fixed-size records."""

    def __init__(
        self,
        bufmgr: BufferManager,
        codec: RecordCodec,
        name: str = "",
    ) -> None:
        self.bufmgr = bufmgr
        self.codec = codec
        self.name = name
        self.page_ids: list[int] = []
        self.num_records = 0
        self.capacity = page_layout.page_capacity(
            bufmgr.disk.page_size, codec.record_size
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        bufmgr: BufferManager,
        codec: RecordCodec,
        records: Iterable[Sequence[int]],
        name: str = "",
    ) -> "HeapFile":
        """Materialise ``records`` into a new heap file (charged as writes).

        If the source iterable raises mid-build (e.g. an injected
        storage fault while scanning another file), the partially
        written heap is destroyed before the error propagates — the
        caller never learns this heap existed, so it must not leak.
        """
        heap = cls(bufmgr, codec, name)
        writer = heap.open_writer()
        try:
            if isinstance(records, Sequence):
                writer.append_many(records)
            else:
                for record in records:
                    writer.append(record)
        except BaseException:
            writer.close()
            heap.destroy()
            raise
        writer.close()
        return heap

    def view(self, bufmgr: BufferManager) -> "HeapFile":
        """A read view of this heap through another buffer manager.

        Shares the page content (``bufmgr`` must sit on a disk view of
        the same page table) but pins through the session's own pool,
        so concurrent readers never contend for frames or corrupt each
        other's hit/miss accounting.  The page-id list is copied so the
        base growing (an appender) never bleeds into a session
        mid-query.  Views are read-only by convention: never
        ``destroy()`` one — the pages belong to the base file.
        """
        clone = HeapFile(bufmgr, self.codec, self.name)
        clone.page_ids = list(self.page_ids)
        clone.num_records = self.num_records
        return clone

    def open_writer(self, resume: bool = False) -> "HeapFileWriter":
        """An appender holding one pinned output page.

        With ``resume=True`` the writer continues filling the last page
        of the file if it has room (partition scatter re-opens bucket
        writers evicted under buffer pressure this way, so a bucket
        never fragments into per-eviction files).
        """
        return HeapFileWriter(self, resume=resume)

    def append_all(self, records: Iterable[Sequence[int]]) -> None:
        writer = self.open_writer()
        try:
            for record in records:
                writer.append(record)
        finally:
            writer.close()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self.page_ids)

    def __len__(self) -> int:
        return self.num_records

    def scan(self) -> Iterator[tuple[int, ...]]:
        """Yield every record in file order (one pinned page at a time)."""
        for records in self.scan_pages():
            yield from records

    def scan_pages(self) -> Iterator[list[tuple[int, ...]]]:
        """Yield the decoded record list of each page in order.

        A storage fault aborts the scan (annotated with the file name);
        it never yields a truncated tail silently.
        """
        bufmgr = self.bufmgr
        codec = self.codec
        for position, page_id in enumerate(self.page_ids):
            try:
                frame = bufmgr.pin(page_id)
            except StorageFault as fault:
                fault.add_context(
                    f"heap file {self.name!r} page {position}/{self.num_pages}"
                )
                raise
            try:
                yield page_layout.read_records(frame.data, codec)
            finally:
                bufmgr.unpin(page_id)

    def scan_page_arrays(self, copy: bool = False) -> Iterator[Sequence[int]]:
        """Yield each page's flat field array in order (zero-copy decode).

        **Borrow contract.**  With ``copy=False`` (the default) the
        yielded value is a *borrow*: a ``memoryview("Q")`` aliasing the
        pinned frame, valid from the ``yield`` until this generator is
        resumed for the next page — at that point the pin is released,
        the frame becomes a replacement candidate, and under
        ``REPRO_SANITIZE`` the view itself is revoked (any later access
        raises ``ValueError``).  Consume the view inside the loop body;
        a consumer that needs the array past its iteration must either
        copy it (``repro.storage.record.owned_u64_array``) or pass
        ``copy=True``, which yields owning ``array("Q")`` objects with
        no lifetime constraint, mirroring :meth:`read_page_array`.

        Page-access order, pin discipline and fault annotation are
        identical to :meth:`scan_pages`, so the I/O accounting of a
        batched scan is byte-identical to the scalar one — ``copy=True``
        adds one memcpy per page and no I/O.
        """
        bufmgr = self.bufmgr
        codec = self.codec
        for position, page_id in enumerate(self.page_ids):
            try:
                frame = bufmgr.pin(page_id)
            except StorageFault as fault:
                fault.add_context(
                    f"heap file {self.name!r} page {position}/{self.num_pages}"
                )
                raise
            try:
                fields = page_layout.read_record_array(frame.data, codec)
                if copy:
                    yield owned_u64_array(fields)
                    # help the evict-time probe: the borrow itself must
                    # not outlive this iteration's pin in a local
                    if isinstance(fields, memoryview):
                        fields.release()
                elif sanitize.sanitize_enabled():
                    with sanitize.borrowed(
                        bufmgr.views,
                        page_id,
                        f"scan_page_arrays({self.name!r})",
                        view=fields,
                    ):
                        yield fields
                else:
                    yield fields
            finally:
                bufmgr.unpin(page_id)

    def read_page(self, index: int) -> list[tuple[int, ...]]:
        """Decode one page by position in the file."""
        page_id = self.page_ids[index]
        try:
            frame = self.bufmgr.pin(page_id)
        except StorageFault as fault:
            fault.add_context(f"heap file {self.name!r} page {index}")
            raise
        try:
            return page_layout.read_records(frame.data, self.codec)
        finally:
            self.bufmgr.unpin(page_id)

    def read_page_array(self, index: int) -> "array[int]":
        """One page's flat field array, copied so it outlives the pin.

        The copy is a single ``memcpy`` into an ``array("Q")`` — cursors
        cache whole pages past the unpin (frames may be evicted and
        their buffers recycled underneath a borrowed view), so unlike
        :meth:`scan_page_arrays` this cannot hand out the raw view.
        """
        page_id = self.page_ids[index]
        try:
            frame = self.bufmgr.pin(page_id)
        except StorageFault as fault:
            fault.add_context(f"heap file {self.name!r} page {index}")
            raise
        try:
            fields = page_layout.read_record_array(frame.data, self.codec)
            with sanitize.borrowed(
                self.bufmgr.views,
                page_id,
                f"read_page_array({self.name!r})",
                view=fields,
            ):
                return owned_u64_array(fields)
        finally:
            self.bufmgr.unpin(page_id)

    # ------------------------------------------------------------------
    def destroy(self) -> None:
        """Drop all pages (no I/O charged for deallocation)."""
        for page_id in self.page_ids:
            if self.bufmgr.is_resident(page_id):
                frame = self.bufmgr._frames[page_id]
                frame.dirty = False  # content is garbage now
                self.bufmgr.discard_page(page_id)
            self.bufmgr.disk.deallocate(page_id)
        self.page_ids.clear()
        self.num_records = 0

    def __repr__(self) -> str:
        return (
            f"<HeapFile {self.name!r} records={self.num_records} "
            f"pages={self.num_pages}>"
        )


class HeapFileWriter:
    """Appender that keeps exactly one output page pinned."""

    def __init__(self, heap: HeapFile, resume: bool = False) -> None:
        self.heap = heap
        self._frame = None
        self._count = 0
        self._offset = page_layout.PAGE_HEADER_SIZE
        self._closed = False
        if resume and heap.page_ids:
            page_id = heap.page_ids[-1]
            frame = heap.bufmgr.pin(page_id)
            adopted = False
            try:
                count = page_layout.get_record_count(frame.data)
                if count < heap.capacity:
                    self._frame = frame
                    self._count = count
                    self._offset = (
                        page_layout.PAGE_HEADER_SIZE
                        + count * heap.codec.record_size
                    )
                    adopted = True
            finally:
                # the frame either became self._frame (released by
                # close/_finish_page) or must go back now — including
                # when reading the count itself faults
                if not adopted:
                    heap.bufmgr.unpin(page_id)

    def _start_page(self) -> None:
        """Roll to a fresh output page, linking the previous one."""
        heap = self.heap
        self._finish_page()
        self._frame = heap.bufmgr.new_page()
        if heap.page_ids:
            # link previous page to this one for self-description
            prev = heap.page_ids[-1]
            if heap.bufmgr.is_resident(prev):
                prev_frame = heap.bufmgr.pin(prev)
                try:
                    page_layout.set_next_page(
                        prev_frame.data, self._frame.page_id
                    )
                finally:
                    heap.bufmgr.unpin(prev, dirty=True)
        heap.page_ids.append(self._frame.page_id)
        self._count = 0
        self._offset = page_layout.PAGE_HEADER_SIZE

    def append(self, record: Sequence[int]) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        heap = self.heap
        if self._frame is None or self._count >= heap.capacity:
            self._start_page()
        assert self._frame is not None
        heap.codec.pack_into(self._frame.data, self._offset, record)
        self._offset += heap.codec.record_size
        self._count += 1
        heap.num_records += 1

    def append_many(self, records: Sequence[Sequence[int]]) -> None:
        """Append a materialised record list, packing page-at-a-time.

        Page- and byte-identical to calling :meth:`append` per record —
        same page roll order, same links, same write accounting — but
        each page's worth of records is encoded with one
        :meth:`RecordCodec.pack_many` plus a single slice assignment.
        With batching disabled this *is* the scalar loop (differential
        oracle).  Takes a sequence, not a lazy iterable: a source that
        performed page I/O mid-append would see a different access
        interleaving than the scalar path.
        """
        # tiny lists (common for per-node index lists) don't amortise
        # the bulk path's setup; the layout is identical either way
        if len(records) < 8 or not batch_module.batching_enabled():
            for record in records:
                self.append(record)
            return
        if self._closed:
            raise ValueError("writer is closed")
        heap = self.heap
        size = heap.codec.record_size
        pack_many = heap.codec.pack_many
        position = 0
        total = len(records)
        while position < total:
            if self._frame is None or self._count >= heap.capacity:
                self._start_page()
            assert self._frame is not None
            fit = min(heap.capacity - self._count, total - position)
            payload = pack_many(records[position : position + fit])
            end = self._offset + fit * size
            self._frame.data[self._offset : end] = payload
            self._offset = end
            self._count += fit
            heap.num_records += fit
            position += fit

    def _finish_page(self) -> None:
        if self._frame is not None:
            page_layout.set_record_count(self._frame.data, self._count)
            page_layout.set_next_page(self._frame.data, None)
            self.heap.bufmgr.unpin(self._frame.page_id, dirty=True)
            self._frame = None

    def close(self) -> None:
        if not self._closed:
            self._finish_page()
            self._closed = True

    def __enter__(self) -> "HeapFileWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
