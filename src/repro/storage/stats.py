"""I/O statistics: the paper's primary cost metric.

Every page transfer flows through :class:`DiskManager` which owns an
:class:`IOStats`.  ``IOStats.snapshot()`` / ``delta`` scope the counters
around an operator, mirroring how the paper attributes I/O cost per
algorithm (including any on-the-fly sorting or index building).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IOStats", "IOSnapshot"]


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable view of the counters at one point in time."""

    reads: int = 0
    writes: int = 0
    random_reads: int = 0
    allocations: int = 0
    #: transient-fault retries performed by the buffer pool
    retries: int = 0
    #: operations abandoned after the retry budget was exhausted
    giveups: int = 0

    @property
    def total(self) -> int:
        """Total page transfers (reads + writes)."""
        return self.reads + self.writes

    @property
    def sequential_reads(self) -> int:
        return self.reads - self.random_reads

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            random_reads=self.random_reads - other.random_reads,
            allocations=self.allocations - other.allocations,
            retries=self.retries - other.retries,
            giveups=self.giveups - other.giveups,
        )

    def weighted_cost(self, random_penalty: float = 1.0) -> float:
        """Page I/O cost with random reads weighted ``random_penalty`` x.

        The default of 1.0 reproduces the paper's flat page-count model;
        a penalty > 1 models seek-dominated disks (Section 6 mentions a
        more precise disk model as future work — exposed here for the
        ablation benchmarks).
        """
        return (
            self.sequential_reads
            + self.writes
            + random_penalty * self.random_reads
        )


class IOStats:
    """Mutable I/O counters owned by a :class:`DiskManager`."""

    __slots__ = (
        "reads",
        "writes",
        "random_reads",
        "allocations",
        "retries",
        "giveups",
        "_head",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.random_reads = 0
        self.allocations = 0
        self.retries = 0
        self.giveups = 0
        # Disk-head position after the last transfer (read *or* write).
        # Sequentiality must be judged against the actual last disk
        # access: a write moves the head too, so a read that is
        # contiguous only with the last *read* — with writes interleaved
        # in between — is a seek, not a sequential transfer.
        self._head = -2

    def record_read(self, page_id: int) -> None:
        self.reads += 1
        if page_id != self._head + 1:
            self.random_reads += 1
        self._head = page_id

    def record_write(self, page_id: int) -> None:
        self.writes += 1
        self._head = page_id

    def record_allocation(self) -> None:
        self.allocations += 1

    def record_retry(self) -> None:
        """One transient fault absorbed by a buffer-pool retry."""
        self.retries += 1

    def record_giveup(self) -> None:
        """One operation abandoned after exhausting its retry budget."""
        self.giveups += 1

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(
            reads=self.reads,
            writes=self.writes,
            random_reads=self.random_reads,
            allocations=self.allocations,
            retries=self.retries,
            giveups=self.giveups,
        )

    def delta(self, before: IOSnapshot) -> IOSnapshot:
        return self.snapshot() - before

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.random_reads = 0
        self.allocations = 0
        self.retries = 0
        self.giveups = 0
        self._head = -2
