"""Minibase-style paged storage substrate with I/O accounting."""

from .buffer import BufferManager, BufferPoolFullError
from .disk import (
    DEFAULT_PAGE_SIZE,
    DiskManager,
    PageCorruptionError,
    PageNotAllocatedError,
)
from .faults import (
    DEFAULT_RETRY_POLICY,
    FaultConfig,
    FaultInjector,
    FaultStats,
    PermanentIOError,
    RetryPolicy,
    ScheduledFault,
    StorageFault,
    TransientIOError,
)
from .persist import ImageFormatError, LoadedImage, load_image, save_image
from .docstore import DocumentStore, UpdateLogRecord
from .elementset import ElementSet, SortOrder
from .heapfile import HeapFile, HeapFileWriter
from .record import CODE, PAIR, TRIPLE, RecordCodec, owned_u64_array
from .sanitize import (
    LiveViewAtEvictError,
    UseAfterUnpinError,
    ViewRegistry,
    ViewSanitizerError,
    sanitize_enabled,
    sanitize_scope,
    set_sanitize_enabled,
)
from .stats import IOSnapshot, IOStats

__all__ = [
    "BufferManager",
    "BufferPoolFullError",
    "DiskManager",
    "DEFAULT_PAGE_SIZE",
    "PageNotAllocatedError",
    "PageCorruptionError",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "ScheduledFault",
    "StorageFault",
    "TransientIOError",
    "PermanentIOError",
    "save_image",
    "load_image",
    "LoadedImage",
    "ImageFormatError",
    "DocumentStore",
    "UpdateLogRecord",
    "ElementSet",
    "SortOrder",
    "HeapFile",
    "HeapFileWriter",
    "RecordCodec",
    "CODE",
    "PAIR",
    "TRIPLE",
    "owned_u64_array",
    "ViewSanitizerError",
    "UseAfterUnpinError",
    "LiveViewAtEvictError",
    "ViewRegistry",
    "sanitize_enabled",
    "set_sanitize_enabled",
    "sanitize_scope",
    "IOStats",
    "IOSnapshot",
]
