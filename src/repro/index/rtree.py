"""Disk-based R-tree over 2-D points/rectangles.

Grust [5] and McHugh/Widom [16] (paper Section 5) view a region code
``(Start, End)`` as a point in two-dimensional space: ``a`` contains
``d`` iff ``d``'s point lies inside the quadrant query rectangle
``[a.Start, a.End] x [a.Start, a.End]`` below the diagonal — so a
containment join becomes a spatial join.  This module provides the
R-tree those approaches need:

* STR (sort-tile-recursive) bulk loading;
* ordinary top-down insertion with quadratic-split nodes;
* rectangle window queries.

Nodes live on buffer-managed pages (one node per page) so probe costs
surface in the I/O counters like every other access method here.
"""

from __future__ import annotations

import math
import struct
from typing import Iterator, Sequence

from ..storage.buffer import BufferManager

__all__ = ["Rect", "RTree"]

_HEADER = struct.Struct("<BxH")  # type (0 leaf, 1 internal), count
_ENTRY = struct.Struct("<qqqqQ")  # xmin, ymin, xmax, ymax, child/payload
_HEADER_SIZE = 4
_LEAF, _INTERNAL = 0, 1


class Rect:
    """An axis-aligned rectangle (inclusive bounds)."""

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(self, xmin: int, ymin: int, xmax: int, ymax: int) -> None:
        if xmin > xmax or ymin > ymax:
            raise ValueError(f"degenerate rect {(xmin, ymin, xmax, ymax)}")
        self.xmin = xmin
        self.ymin = ymin
        self.xmax = xmax
        self.ymax = ymax

    @classmethod
    def point(cls, x: int, y: int) -> "Rect":
        return cls(x, y, x, y)

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def enlarged(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def area(self) -> int:
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def enlargement(self, other: "Rect") -> int:
        return self.enlarged(other).area() - self.area()

    def center(self) -> tuple[float, float]:
        return (self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0

    def as_tuple(self) -> tuple[int, int, int, int]:
        return self.xmin, self.ymin, self.xmax, self.ymax

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rect) and self.as_tuple() == other.as_tuple()
        )

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return f"Rect{self.as_tuple()}"


class _Node:
    __slots__ = ("page_id", "is_leaf", "rects", "children")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.rects: list[Rect] = []
        self.children: list[int] = []  # payloads (leaf) or page ids

    def mbr(self) -> Rect:
        out = self.rects[0]
        for rect in self.rects[1:]:
            out = out.enlarged(rect)
        return out


class RTree:
    """An R-tree whose nodes occupy one buffer page each."""

    def __init__(self, bufmgr: BufferManager, name: str = "") -> None:
        self.bufmgr = bufmgr
        self.name = name
        self.capacity = (bufmgr.disk.page_size - _HEADER_SIZE) // _ENTRY.size
        if self.capacity < 4:
            raise ValueError("page size too small for an R-tree node")
        self.min_fill = max(2, self.capacity // 3)
        self.root_page: int | None = None
        self.height = 0
        self.num_entries = 0
        self.num_nodes = 0

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def _read_node(self, page_id: int) -> _Node:
        frame = self.bufmgr.pin(page_id)
        try:
            node_type, count = _HEADER.unpack_from(frame.data, 0)
            node = _Node(page_id, node_type == _LEAF)
            offset = _HEADER_SIZE
            for _ in range(count):
                xmin, ymin, xmax, ymax, child = _ENTRY.unpack_from(
                    frame.data, offset
                )
                node.rects.append(Rect(xmin, ymin, xmax, ymax))
                node.children.append(child)
                offset += _ENTRY.size
            return node
        finally:
            self.bufmgr.unpin(page_id)

    def _write_node(self, node: _Node) -> None:
        frame = self.bufmgr.pin(node.page_id)
        try:
            _HEADER.pack_into(
                frame.data, 0, _LEAF if node.is_leaf else _INTERNAL,
                len(node.rects),
            )
            offset = _HEADER_SIZE
            for rect, child in zip(node.rects, node.children):
                _ENTRY.pack_into(
                    frame.data, offset,
                    rect.xmin, rect.ymin, rect.xmax, rect.ymax, child,
                )
                offset += _ENTRY.size
        finally:
            self.bufmgr.unpin(node.page_id, dirty=True)

    def _new_node(self, is_leaf: bool) -> _Node:
        frame = self.bufmgr.new_page()
        try:
            self.num_nodes += 1
            return _Node(frame.page_id, is_leaf)
        finally:
            self.bufmgr.unpin(frame.page_id, dirty=True)

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        bufmgr: BufferManager,
        entries: Sequence[tuple[Rect, int]],
        name: str = "",
        fill_factor: float = 1.0,
    ) -> "RTree":
        """Sort-Tile-Recursive packing of ``(rect, payload)`` entries."""
        tree = cls(bufmgr, name)
        if not entries:
            return tree
        per_node = max(2, int(tree.capacity * fill_factor))
        level: list[tuple[Rect, int]] = []
        for rects, children in _str_tiles(entries, per_node):
            node = tree._new_node(is_leaf=True)
            node.rects = rects
            node.children = children
            tree._write_node(node)
            level.append((node.mbr(), node.page_id))
        tree.num_entries = len(entries)
        tree.height = 1
        while len(level) > 1:
            next_level = []
            for rects, children in _str_tiles(level, per_node):
                node = tree._new_node(is_leaf=False)
                node.rects = rects
                node.children = children
                tree._write_node(node)
                next_level.append((node.mbr(), node.page_id))
            level = next_level
            tree.height += 1
        tree.root_page = level[0][1]
        return tree

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, rect: Rect, payload: int) -> None:
        if self.root_page is None:
            root = self._new_node(is_leaf=True)
            root.rects.append(rect)
            root.children.append(payload)
            self._write_node(root)
            self.root_page = root.page_id
            self.height = 1
            self.num_entries = 1
            return
        split = self._insert_into(self.root_page, rect, payload, self.height)
        self.num_entries += 1
        if split is not None:
            left_mbr, right_mbr, right_page = split
            new_root = self._new_node(is_leaf=False)
            new_root.rects = [left_mbr, right_mbr]
            new_root.children = [self.root_page, right_page]
            self._write_node(new_root)
            self.root_page = new_root.page_id
            self.height += 1

    def _insert_into(
        self, page_id: int, rect: Rect, payload: int, level: int
    ) -> tuple[Rect, Rect, int] | None:
        node = self._read_node(page_id)
        if node.is_leaf:
            node.rects.append(rect)
            node.children.append(payload)
        else:
            slot = self._choose_subtree(node, rect)
            split = self._insert_into(
                node.children[slot], rect, payload, level - 1
            )
            if split is None:
                node.rects[slot] = node.rects[slot].enlarged(rect)
                self._write_node(node)
                return None
            left_mbr, right_mbr, right_page = split
            node.rects[slot] = left_mbr
            node.rects.append(right_mbr)
            node.children.append(right_page)
        if len(node.rects) <= self.capacity:
            self._write_node(node)
            return None
        return self._split(node)

    @staticmethod
    def _choose_subtree(node: _Node, rect: Rect) -> int:
        """Least-enlargement heuristic (Guttman)."""
        best_slot = 0
        best_key = None
        for slot, candidate in enumerate(node.rects):
            key = (candidate.enlargement(rect), candidate.area())
            if best_key is None or key < best_key:
                best_key = key
                best_slot = slot
        return best_slot

    def _split(self, node: _Node) -> tuple[Rect, Rect, int]:
        """Quadratic split: seed with the most wasteful pair."""
        entries = list(zip(node.rects, node.children))
        seed_a, seed_b = _quadratic_seeds(node.rects)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a][0]
        mbr_b = entries[seed_b][0]
        rest = [
            entry for index, entry in enumerate(entries)
            if index not in (seed_a, seed_b)
        ]
        for rect, child in rest:
            # honour the minimum fill if one group is starving
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self.min_fill:
                choose_a = True
            elif len(group_b) + remaining <= self.min_fill:
                choose_a = False
            else:
                choose_a = mbr_a.enlargement(rect) <= mbr_b.enlargement(rect)
            if choose_a:
                group_a.append((rect, child))
                mbr_a = mbr_a.enlarged(rect)
            else:
                group_b.append((rect, child))
                mbr_b = mbr_b.enlarged(rect)

        node.rects = [rect for rect, _child in group_a]
        node.children = [child for _rect, child in group_a]
        self._write_node(node)
        sibling = self._new_node(node.is_leaf)
        sibling.rects = [rect for rect, _child in group_b]
        sibling.children = [child for _rect, child in group_b]
        self._write_node(sibling)
        return mbr_a, mbr_b, sibling.page_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def search(self, window: Rect) -> Iterator[tuple[Rect, int]]:
        """Yield every entry whose rectangle intersects ``window``."""
        if self.root_page is None:
            return
        stack = [self.root_page]
        while stack:
            node = self._read_node(stack.pop())
            for rect, child in zip(node.rects, node.children):
                if not window.intersects(rect):
                    continue
                if node.is_leaf:
                    yield rect, child
                else:
                    stack.append(child)

    def search_contained(self, window: Rect) -> Iterator[tuple[Rect, int]]:
        """Yield entries fully inside ``window`` (the containment probe)."""
        for rect, payload in self.search(window):
            if window.contains_rect(rect):
                yield rect, payload

    def scan_all(self) -> Iterator[tuple[Rect, int]]:
        if self.root_page is not None:
            huge = Rect(-(2**62), -(2**62), 2**62, 2**62)
            yield from self.search(huge)

    def __len__(self) -> int:
        return self.num_entries

    def __repr__(self) -> str:
        return (
            f"<RTree {self.name!r} entries={self.num_entries} "
            f"height={self.height} nodes={self.num_nodes}>"
        )


def _quadratic_seeds(rects: Sequence[Rect]) -> tuple[int, int]:
    """The pair of rectangles wasting the most area together (Guttman)."""
    best = (0, 1)
    best_waste = None
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            waste = (
                rects[i].enlarged(rects[j]).area()
                - rects[i].area()
                - rects[j].area()
            )
            if best_waste is None or waste > best_waste:
                best_waste = waste
                best = (i, j)
    return best


def _str_tiles(
    entries: Sequence[tuple[Rect, int]], per_node: int
) -> Iterator[tuple[list[Rect], list[int]]]:
    """Sort-Tile-Recursive grouping of one level into node-sized runs."""
    num_nodes = max(1, -(-len(entries) // per_node))
    num_slices = max(1, int(math.ceil(math.sqrt(num_nodes))))
    by_x = sorted(entries, key=lambda entry: entry[0].center()[0])
    slice_size = -(-len(by_x) // num_slices)
    for start in range(0, len(by_x), slice_size):
        column = sorted(
            by_x[start:start + slice_size],
            key=lambda entry: entry[0].center()[1],
        )
        for node_start in range(0, len(column), per_node):
            chunk = column[node_start:node_start + per_node]
            yield (
                [rect for rect, _payload in chunk],
                [payload for _rect, payload in chunk],
            )
