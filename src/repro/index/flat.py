"""Flat-array static variants of the disk-based indexes.

The pointer indexes (:mod:`.bptree`, :mod:`.interval_tree`) decode each
visited page into per-node Python objects — a ``_Node`` with key/value
lists, or one tuple per stored interval — on every probe.  For the
static, bulk-built indexes INLJN and ADB+ construct on the fly, that
per-record decode dominates probe wall time.  This module rebuilds the
probe path over contiguous ``uint64`` arrays instead, the idiom of
flat vantage-point trees: decode each page once into a flat
``array("Q")`` via :meth:`~repro.storage.record.RecordCodec.
unpack_array`, split it into per-field columns, binary-search those
columns directly, and extract matches as column slices rather than
per-entry generator steps.  The cached columns are materialised as
lists: CPython's ``bisect`` boxes an ``array`` item on every
comparison and ``list.extend`` of an ``array`` slice boxes every
element, so list columns probe ~1.6x and slice ~4x faster for the
same one-decode-per-page cost.

* :class:`FlatStartIndex` keeps the B+-tree's bulk-loaded pages
  byte-identical (construction is inherited) but descends by the
  level-order layout :meth:`~repro.index.bptree.BPlusTree.bulk_load`
  records: the children of node ``i`` of a level sit at positions
  ``i * bulk_fanout ..`` of the level below, so child positions are
  implicit arithmetic and only the separator-key columns are needed.
* :class:`FlatIntervalTree` answers stabbing queries from cached
  ``(start, end, payload)`` columns of the interval-list heap pages,
  cutting each start-ascending or end-descending list prefix with one
  binary search per page instead of a per-record comparison loop.

Accounting contract (the differential-oracle rule of
docs/batched-execution.md): every probe pins and unpins exactly the
pages the pointer oracle would, in the same order — a flat cache hit
still costs one real buffer access, and an evicted page is re-read
from disk exactly as the pointer path would.  ``JoinReport`` therefore
stays field-for-field equal; only the Python-level decode work is
removed.  The switch below mirrors :mod:`repro.core.batch`: flat
indexes are built only while :func:`flat_enabled` is true (set
programmatically, via :func:`flat_scope`, or the ``REPRO_FLAT_INDEX``
environment variable), and the pointer indexes remain the oracle the
differential suite (tests/test_flat_index.py) compares against.
"""

from __future__ import annotations

import os
import struct
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional, cast

from ..storage import sanitize
from ..storage.buffer import BufferManager
from ..storage.faults import StorageFault
from ..storage.record import PAIR, owned_u64_array
from .bptree import _HEADER, _HEADER_SIZE, BPlusTree
from .interval_tree import _NO_CHILD, _NODE, _NODE_HEADER, Interval, IntervalTree

__all__ = [
    "FlatStartIndex",
    "FlatIntervalTree",
    "flat_enabled",
    "set_flat_enabled",
    "flat_scope",
]


# ---------------------------------------------------------------------------
# the oracle switch (mirrors repro.core.batch's batch-size switch)
# ---------------------------------------------------------------------------
_flat_default = False

#: per-context override set by :func:`flat_scope` — a ``ContextVar`` so
#: one tenant's scope cannot flip another in-flight query's index mode
#: (see :mod:`repro.core.batch` for the full rationale).
_flat_var: ContextVar[Optional[bool]] = ContextVar("repro_flat_index", default=None)


def _env_flat_enabled() -> Optional[bool]:
    raw = os.environ.get("REPRO_FLAT_INDEX", "").strip().lower()
    if not raw:
        return None
    if raw in ("1", "true", "on", "yes"):
        return True
    if raw in ("0", "false", "off", "no"):
        return False
    return None


_env_override = _env_flat_enabled()
if _env_override is not None:
    _flat_default = _env_override


def flat_enabled() -> bool:
    """Whether index builders produce flat static indexes (default off)."""
    override = _flat_var.get()
    return _flat_default if override is None else override


def set_flat_enabled(enabled: bool) -> None:
    """Set the process-wide default for flat vs pointer-oracle builds.

    Startup configuration only; use :func:`flat_scope` for a temporary
    or per-thread/per-task setting.  Worker processes under the
    ``spawn`` start method do not inherit this module state — parallel
    tasks carry the flag as an explicit field instead (see
    :mod:`repro.parallel.tasks`).
    """
    global _flat_default
    _flat_default = bool(enabled)


@contextmanager
def flat_scope(enabled: bool) -> Iterator[None]:
    """Pin the flat-index switch for the calling context only.

    Context-local (``contextvars``): concurrent threads in opposing
    scopes never see each other's setting.
    """
    token = _flat_var.set(bool(enabled))
    try:
        yield
    finally:
        _flat_var.reset(token)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------
def _touch(bufmgr: BufferManager, page_id: int) -> None:
    """Pin and immediately release one page (a flat cache hit).

    The hit must still cost exactly one buffer access so flat probes
    keep the pointer oracle's hit/miss and I/O accounting (the bptree
    node-cache idiom).  The pin is real: an evicted page is re-read
    from disk here exactly as the pointer path would re-read it.
    """
    bufmgr.pin(page_id)
    try:
        pass  # nothing can fail between pin and release
    finally:
        bufmgr.unpin(page_id)


# ---------------------------------------------------------------------------
# flat B+-tree
# ---------------------------------------------------------------------------
class FlatStartIndex(BPlusTree):
    """Static bulk-loaded B+-tree probed through flat key/value columns.

    Construction is inherited — :meth:`~repro.index.bptree.BPlusTree.
    bulk_load` writes byte-identical pages and records the level-order
    layout this class descends by — so build I/O, page contents and
    the planner's view of the index are unchanged.  Only the probe
    path differs: each visited page is decoded once into flat key and
    value columns, descent is ``position * bulk_fanout + slot`` arithmetic
    over separator-key columns (no stored child pointers are read),
    and range extraction is a binary-search cut plus an array slice.

    The index is static: :meth:`insert` raises.  Top-down insertion
    splits nodes out of level order, which would invalidate the
    implicit child arithmetic.
    """

    def __init__(self, bufmgr: BufferManager, name: str = "") -> None:
        super().__init__(bufmgr, name)
        #: page id -> (key column, value column) of one leaf page
        self._flat_leaves: dict[int, tuple[list[int], list[int]]] = {}
        #: page id -> separator-key column of one internal page
        self._flat_keys: dict[int, list[int]] = {}

    def _reset_session_caches(self) -> None:
        super()._reset_session_caches()
        self._flat_leaves = {}
        self._flat_keys = {}

    # -- static-ness ----------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        raise TypeError(
            "FlatStartIndex is static: top-down insertion splits nodes "
            "out of level order; rebuild with bulk_load instead"
        )

    def delete(self, key: int, value: int) -> bool:
        raise TypeError(
            "FlatStartIndex is static: a leaf patch would desynchronise "
            "the cached flat columns; rebuild with bulk_load instead"
        )

    # -- flat page decode (pin accounting identical to _read_node) ------
    def _leaf_entries(self, page_id: int) -> tuple[list[int], list[int]]:
        cached = self._flat_leaves.get(page_id)
        if cached is not None:
            _touch(self.bufmgr, page_id)
            return cached
        frame = self.bufmgr.pin(page_id)
        try:
            data = frame.data
            _node_type, count, _link = _HEADER.unpack_from(data, 0)
            fields = PAIR.unpack_array(memoryview(data)[_HEADER_SIZE:], count)
            # the cached columns outlive the pin, so the borrow closes
            # around the one copy that takes ownership
            with sanitize.borrowed(
                self.bufmgr.views, page_id, "flat-leaf-columns", view=fields
            ):
                flat = owned_u64_array(fields)
        finally:
            self.bufmgr.unpin(page_id)
        entry = (flat[0::2].tolist(), flat[1::2].tolist())
        self._flat_leaves[page_id] = entry
        return entry

    def _internal_keys(self, page_id: int) -> list[int]:
        cached = self._flat_keys.get(page_id)
        if cached is not None:
            _touch(self.bufmgr, page_id)
            return cached
        frame = self.bufmgr.pin(page_id)
        try:
            data = frame.data
            _node_type, count, _child0 = _HEADER.unpack_from(data, 0)
            # internal entries are (key u64, child u32, pad u32) — the
            # same 16-byte stride as a PAIR record, so the flat view's
            # even words are exactly the separator keys
            fields = PAIR.unpack_array(memoryview(data)[_HEADER_SIZE:], count)
            with sanitize.borrowed(
                self.bufmgr.views, page_id, "flat-internal-keys", view=fields
            ):
                flat = owned_u64_array(fields)
        finally:
            self.bufmgr.unpin(page_id)
        keys = flat[0::2].tolist()
        self._flat_keys[page_id] = keys
        return keys

    # -- probes ----------------------------------------------------------
    def _descend_position(self, key: int) -> int:
        """Leaf position (index into ``level_pages[0]``) for ``key``.

        Same ``bisect_left`` descent as the pointer tree — duplicates
        may straddle a node boundary, so the scan must start at the
        first one — pinning one page per internal level in root-to-leaf
        order.  The leaf itself is pinned by the caller's scan loop,
        which matches the pointer ``_descend_to_leaf`` + scan sequence.
        """
        with self.probe_guard():
            levels = self.level_pages
            fanout = self.bulk_fanout
            position = 0
            for depth in range(len(levels) - 1, 0, -1):
                keys = self._internal_keys(levels[depth][position])
                position = position * fanout + bisect_left(keys, key)
            return position

    def range_scan(
        self,
        lo: int,
        hi: int,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[int, int]]:
        """Yield (key, value) pairs with ``lo <= key <= hi`` (bounds optional).

        Lazy like the pointer scan: nothing is pinned until the first
        item is pulled, and the next leaf in the chain is pinned as
        soon as a page's entries are exhausted — even when that leaf
        holds no in-range keys — exactly as the pointer scan reads one
        node past the range to discover its end.  Each leaf is read
        under :meth:`~repro.index.staleness.StaleGuard.probe_guard`,
        so a ``mark_stale`` landing while the generator is suspended
        makes the next leaf access raise
        :class:`~repro.index.staleness.StaleIndexError` rather than
        silently yielding pre-retirement entries.
        """
        leaves = self.level_pages[0] if self.level_pages else []
        if not leaves:
            return
        position = self._descend_position(lo)
        cut_lo = bisect_left if include_lo else bisect_right
        cut_hi = bisect_right if include_hi else bisect_left
        first = True
        while True:
            with self.probe_guard():
                keys, values = self._leaf_entries(leaves[position])
                start = cut_lo(keys, lo) if first else 0
                stop = cut_hi(keys, hi)
                batch = list(zip(keys[start:stop], values[start:stop]))
            yield from batch
            if stop < len(keys):
                return
            position += 1
            if position >= len(leaves):
                return
            first = False

    def range_values(self, lo: int, hi: int) -> list[int]:
        """All values with ``lo <= key <= hi`` as one list (bulk probe).

        The INLJN fast path: same pages, same pins, same order as a
        fully-consumed ``range_scan(lo, hi)``, but each page
        contributes one binary-search cut and one array-slice extend
        instead of a per-entry generator step.  Eager, so the whole
        probe runs under one
        :meth:`~repro.index.staleness.StaleGuard.probe_guard` window.
        """
        with self.probe_guard():
            leaves = self.level_pages[0] if self.level_pages else []
            out: list[int] = []
            if not leaves:
                return out
            position = self._descend_position(lo)
            first = True
            while True:
                keys, values = self._leaf_entries(leaves[position])
                start = bisect_left(keys, lo) if first else 0
                stop = bisect_right(keys, hi)
                out.extend(values[start:stop])
                if stop < len(keys):
                    return out
                position += 1
                if position >= len(leaves):
                    return out
                first = False

    def __repr__(self) -> str:
        return (
            f"<FlatStartIndex {self.name!r} entries={self.num_entries} "
            f"height={self.height} nodes={self.num_nodes}>"
        )


# ---------------------------------------------------------------------------
# flat interval tree
# ---------------------------------------------------------------------------
class FlatIntervalTree(IntervalTree):
    """Static interval tree probed through flat list columns.

    Construction is inherited (:meth:`~repro.index.interval_tree.
    IntervalTree.build` writes the same node-directory and list pages).
    Probing replaces the pointer path's full-page tuple decode per
    visit: node-directory pages are decoded once into per-page node
    lists, interval-list pages once into ``(start, end, payload)``
    columns, and each list prefix is cut with one binary search per
    page — ``bisect_right`` over the ascending start column, a
    descending-order cut over the end column.
    """

    def __init__(self, bufmgr: BufferManager, name: str = "") -> None:
        super().__init__(bufmgr, name)
        #: node-directory page id -> decoded node tuples of that page
        self._flat_nodes: dict[int, list[tuple[int, ...]]] = {}
        #: list-heap page position -> (start, end, payload) columns
        self._flat_lists: dict[
            int, tuple[list[int], list[int], list[int]]
        ] = {}

    def _reset_session_caches(self) -> None:
        super()._reset_session_caches()
        self._flat_nodes = {}
        self._flat_lists = {}

    # -- flat page decode (pin accounting identical to pointer path) ----
    def _read_node(self, index: int) -> tuple[int, ...]:
        page_index, slot = divmod(index, self._nodes_per_page)
        page_id = self._node_pages[page_index]
        nodes = self._flat_nodes.get(page_id)
        if nodes is not None:
            _touch(self.bufmgr, page_id)
            return nodes[slot]
        frame = self.bufmgr.pin(page_id)
        try:
            data = frame.data
            (count,) = struct.unpack_from("<I", data, 0)
            view = memoryview(data)[
                _NODE_HEADER : _NODE_HEADER + count * _NODE.size
            ]
            nodes = list(_NODE.iter_unpack(view))
        finally:
            self.bufmgr.unpin(page_id)
        self._flat_nodes[page_id] = nodes
        return nodes[slot]

    def _list_columns(
        self, page_index: int
    ) -> tuple[list[int], list[int], list[int]]:
        heap = self._lists
        assert heap is not None
        cached = self._flat_lists.get(page_index)
        if cached is not None:
            try:
                _touch(heap.bufmgr, heap.page_ids[page_index])
            except StorageFault as fault:
                # same annotation the pointer path's read_page adds
                fault.add_context(f"heap file {heap.name!r} page {page_index}")
                raise
            return cached
        flat = heap.read_page_array(page_index)
        entry = (flat[0::3].tolist(), flat[1::3].tolist(), flat[2::3].tolist())
        self._flat_lists[page_index] = entry
        return entry

    @staticmethod
    def _descending_cut(
        ends: list[int], point: int, lo: int, hi: int
    ) -> int:
        """First index in ``[lo, hi)`` with ``ends[i] < point`` (column descending)."""
        while lo < hi:
            middle = (lo + hi) // 2
            if ends[middle] >= point:
                lo = middle + 1
            else:
                hi = middle
        return lo

    # -- probes ----------------------------------------------------------
    def _scan_flat(
        self, offset: int, length: int, point: int, left_list: bool
    ) -> Iterator[Interval]:
        """Lazy flat list-prefix scan, pin-compatible with the pointer scan.

        A page is pinned only when the consumer pulls into it, and the
        scan stops without touching the next page when the cut falls
        inside the current one — the pointer scan's exact boundaries.
        """
        heap = self._lists
        assert heap is not None
        per_page = heap.capacity
        remaining = length
        position = offset
        while remaining > 0:
            page_index, slot = divmod(position, per_page)
            starts, ends, payloads = self._list_columns(page_index)
            limit = min(slot + remaining, len(starts))
            if left_list:
                cut = bisect_right(starts, point, slot, limit)
            else:
                cut = self._descending_cut(ends, point, slot, limit)
            for i in range(slot, cut):
                yield cast("Interval", (starts[i], ends[i], payloads[i]))
            if cut < limit:
                return
            position += limit - slot
            remaining -= limit - slot

    def _scan_left_list(
        self, offset: int, length: int, point: int
    ) -> Iterator[Interval]:
        return self._scan_flat(offset, length, point, left_list=True)

    def _scan_right_list(
        self, offset: int, length: int, point: int
    ) -> Iterator[Interval]:
        return self._scan_flat(offset, length, point, left_list=False)

    def _extend_stab(
        self, out: list[int], offset: int, length: int, point: int,
        left_list: bool,
    ) -> None:
        """Bulk cousin of :meth:`_scan_flat`: slice payloads into ``out``."""
        heap = self._lists
        assert heap is not None
        per_page = heap.capacity
        remaining = length
        position = offset
        while remaining > 0:
            page_index, slot = divmod(position, per_page)
            starts, ends, payloads = self._list_columns(page_index)
            limit = min(slot + remaining, len(starts))
            if left_list:
                cut = bisect_right(starts, point, slot, limit)
            else:
                cut = self._descending_cut(ends, point, slot, limit)
            out.extend(payloads[slot:cut])
            if cut < limit:
                return
            position += limit - slot
            remaining -= limit - slot

    def stab_codes(self, point: int) -> list[int]:
        """Payload codes of every interval containing ``point``.

        The INLJN fast path: page-for-page identical accesses to a
        fully-consumed :meth:`stab`, but each visited list page
        contributes one binary-search cut plus one payload-slice extend
        instead of a tuple per stored interval.
        """
        with self.probe_guard():
            out: list[int] = []
            index = self._root
            while index != _NO_CHILD:
                mid, left, right, l_off, l_len, r_off, r_len = self._read_node(
                    index
                )
                if point < mid:
                    self._extend_stab(out, l_off, l_len, point, left_list=True)
                    index = left
                elif point > mid:
                    self._extend_stab(out, r_off, r_len, point, left_list=False)
                    index = right
                else:
                    self._extend_stab(out, l_off, l_len, point, left_list=True)
                    break
            return out

    def __repr__(self) -> str:
        return (
            f"<FlatIntervalTree {self.name!r} intervals={self.num_intervals} "
            f"pages={self.num_pages}>"
        )
