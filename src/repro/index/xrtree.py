"""XR-tree: a B+-tree keyed on region Start with per-node stab lists.

The paper's footnote to Table 1 points at the authors' companion work
([8] Jiang, Lu, Wang, Ooi — "XR-Tree: Indexing XML data for efficient
structural join", ICDE 2003), which augments a B+-tree so that *"all
ancestors of an element"* is answerable in one root-to-leaf descent.

Structure reproduced here (static bulk build):

* a B+-tree over ``(Start, code)`` — every element lives in a leaf;
* every internal node keeps a **stab list**: the elements whose region
  crosses a separator boundary between that node's children.  An
  element is recorded in the *highest* such node, so each element
  appears in at most one stab list.

A stabbing query for point ``p`` (find all elements whose region
contains ``p``) descends the path for ``p``, scanning each node's stab
list, and finishes by scanning the leaf run of entries with
``Start <= p``; elements fully inside one leaf's key range are found
there, every other candidate crosses a boundary on the path and is in
a stab list.  Cost: ``O(log n + answer + leaf run)``.

This gives INLJN a second disk-based option for probing the *ancestor*
set (besides :mod:`repro.index.interval_tree`), and the ablation
benchmark compares the two.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence, cast

from ..core import pbitree
from ..core.pbitree import PBiCode, RegionCode
from ..storage.buffer import BufferManager
from ..storage.heapfile import HeapFile
from ..storage.record import TRIPLE
from .bptree import BPlusTree

__all__ = ["XRTree"]


class XRTree:
    """Static XR-tree over elements given as PBiTree codes."""

    def __init__(self, bufmgr: BufferManager, name: str = "") -> None:
        self.bufmgr = bufmgr
        self.name = name
        self._btree: BPlusTree | None = None
        #: page id of an internal node -> heap file of (start, end, code)
        self._stab_lists: dict[int, HeapFile] = {}
        self.num_elements = 0
        self.num_stabbed = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        bufmgr: BufferManager,
        codes: Sequence[PBiCode],
        name: str = "",
    ) -> "XRTree":
        """Bulk-build from element codes (sorted internally)."""
        tree = cls(bufmgr, name)
        # document order: ties on Start (leftmost chains) must put the
        # ancestor first, or leaf scans break the stack-join invariant
        entries = [
            (pbitree.start_of(code), code)
            for code in sorted(codes, key=pbitree.doc_order_key)
        ]
        tree._btree = BPlusTree.bulk_load(
            bufmgr, entries, name=f"{name}.keys"
        )
        tree.num_elements = len(entries)
        if tree._btree.root_page is None:
            return tree
        # assign each boundary-crossing element to its highest spanning node
        buffered: dict[int, list[tuple[int, int, int]]] = {}
        for _start, code in entries:
            start, end = pbitree.region_of(code)
            node_page = tree._find_spanning_node(start, end)
            if node_page is not None:
                buffered.setdefault(node_page, []).append((start, end, code))
                tree.num_stabbed += 1
        for node_page, items in buffered.items():
            # end-descending order lets queries stop early
            items.sort(key=lambda item: -item[1])
            tree._stab_lists[node_page] = HeapFile.from_records(
                bufmgr, TRIPLE, items, name=f"{name}.stab.{node_page}"
            )
        return tree

    def _find_spanning_node(self, start: int, end: int) -> int | None:
        """Highest node where [start, end] crosses a separator boundary.

        Returns ``None`` when the region stays inside one leaf's key
        range (the plain B+-tree finds it there).
        """
        assert self._btree is not None
        btree = self._btree
        page_id = btree.root_page
        while True:
            node = btree._read_node(page_id)
            if node.is_leaf:
                return None
            # bisect_left on the start: an element whose Start *equals*
            # a separator may have been packed into the left leaf by the
            # bulk load while point descents go right — treating that as
            # a crossing keeps the query's leaf-run assumption sound
            lo = bisect_left(node.keys, start)
            hi = bisect_right(node.keys, end)
            if lo != hi:
                return page_id  # crosses >= 1 separator of this node
            page_id = node.children[lo]

    # ------------------------------------------------------------------
    def stab(
        self, point: RegionCode
    ) -> Iterator[tuple[RegionCode, RegionCode, PBiCode]]:
        """Yield ``(start, end, code)`` of every element containing ``point``."""
        if self._btree is None or self._btree.root_page is None:
            return
        btree = self._btree
        page_id = btree.root_page
        reported: set[int] = set()
        while True:
            node = btree._read_node(page_id)
            if node.is_leaf:
                break
            stab_list = self._stab_lists.get(page_id)
            if stab_list is not None:
                # stab-list heaps store (start, end, code) triples in
                # the build()-time domains
                for start, end, code in cast(
                    "Iterator[tuple[RegionCode, RegionCode, PBiCode]]",
                    stab_list.scan(),
                ):
                    if end < point:
                        break  # list is end-descending: nothing else fits
                    if start <= point:
                        reported.add(code)
                        yield start, end, code
            slot = bisect_right(node.keys, point)
            page_id = node.children[slot]
        # leaf run: remaining candidates with Start <= point; every
        # boundary-crossing element containing the point was already
        # reported from a stab list on this very path, so a seen-set
        # de-duplicates the two sources
        upper = bisect_right(node.keys, point)
        for index in range(upper):
            code = PBiCode(node.values[index])
            end = pbitree.end_of(code)
            if end >= point and code not in reported:
                yield RegionCode(node.keys[index]), end, code

    # ------------------------------------------------------------------
    def ancestors_of(self, code: PBiCode) -> list[PBiCode]:
        """All stored elements that are proper ancestors of ``code``."""
        point = pbitree.start_of(code)
        return [
            candidate
            for _s, _e, candidate in self.stab(point)
            if pbitree.is_ancestor(candidate, code)
        ]

    def range_scan(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """Delegate Start-range scans to the underlying B+-tree."""
        assert self._btree is not None
        return self._btree.range_scan(lo, hi)

    @property
    def height(self) -> int:
        return self._btree.height if self._btree else 0

    def __len__(self) -> int:
        return self.num_elements

    def __repr__(self) -> str:
        return (
            f"<XRTree {self.name!r} elements={self.num_elements} "
            f"stabbed={self.num_stabbed} lists={len(self._stab_lists)}>"
        )
