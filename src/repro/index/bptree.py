"""Disk-based B+-tree over unsigned 64-bit keys.

Used by INLJN (probing the descendant set with ancestor regions) and by
Anc_Des_B+ (skipping non-participating elements), mirroring Minibase's
B+-tree module.  Keys are region ``Start`` values (duplicates allowed —
PBiTree starts collide on leftmost chains); values are PBiTree codes.

Node layout (one page per node)::

    byte  0      u8   node type: 0 = leaf, 1 = internal
    bytes 1..2   u16  entry count
    bytes 4..7   u32  leaf: next-leaf page id (0xFFFFFFFF = none)
                      internal: page id of the leftmost child
    bytes 8..    leaf:     (key u64, value u64) pairs
                 internal: (separator key u64, right child u32 + pad u32)

Supports bulk loading from sorted input (what on-the-fly index building
uses: sort, then build bottom-up at ~1 write per page) and ordinary
top-down insertion with node splits.
"""

from __future__ import annotations

import copy
import struct
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from ..core import batch as batch_module
from ..storage.buffer import BufferManager
from .staleness import StaleGuard

__all__ = ["BPlusTree"]

_LEAF, _INTERNAL = 0, 1
_NO_PAGE = 0xFFFFFFFF
_HEADER = struct.Struct("<BxHI")     # type, pad, count, link/child0
_LEAF_ENTRY = struct.Struct("<QQ")   # key, value
_INT_ENTRY = struct.Struct("<QII")   # key, child, pad
_HEADER_SIZE = 8


class _Node:
    """Decoded image of one B+-tree page."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: list[int] = []
        self.values: list[int] = []      # leaf payloads
        self.children: list[int] = []    # internal: len(keys) + 1 page ids
        self.next_leaf: int | None = None


class BPlusTree(StaleGuard):
    """A B+-tree whose nodes live on buffer-managed pages.

    The pointer tree is incrementally maintainable (:meth:`insert`,
    :meth:`delete`) and so never goes stale under the update pipeline;
    the :class:`~repro.index.staleness.StaleGuard` base serves the
    static :class:`~repro.index.flat.FlatStartIndex` subclass, whose
    level-order descent arithmetic a top-down mutation would break.
    """

    def __init__(self, bufmgr: BufferManager, name: str = "") -> None:
        self.bufmgr = bufmgr
        self.name = name
        page_size = bufmgr.disk.page_size
        self.leaf_capacity = (page_size - _HEADER_SIZE) // _LEAF_ENTRY.size
        self.internal_capacity = (page_size - _HEADER_SIZE) // _INT_ENTRY.size
        if self.leaf_capacity < 2 or self.internal_capacity < 2:
            raise ValueError("page size too small for a B+-tree node")
        self.root_page: int | None = None
        self.height = 0
        self.num_entries = 0
        self.num_nodes = 0
        #: decoded-node cache, populated only while batching is enabled.
        #: Every hit still pins/unpins the page, so buffer and I/O
        #: accounting stay identical to the uncached path; only the
        #: repeated per-entry decode is skipped.  Writes invalidate.
        self._node_cache: dict[int, _Node] = {}
        #: bulk-load layout record: page ids of each level in build
        #: order — ``level_pages[0]`` is the leaf chain left to right,
        #: each following list one internal level, the last the root.
        #: With the uniform grouping of :meth:`_build_internal_level`
        #: the children of node ``i`` of a level sit at positions
        #: ``i * bulk_fanout ..`` of the level below, which is what the
        #: flat static variant (:mod:`repro.index.flat`) descends by
        #: instead of stored child pointers.  Top-down :meth:`insert`
        #: invalidates the record (it splits nodes out of level order).
        self.level_pages: list[list[int]] = []
        #: children grouped under each bulk-built internal node
        self.bulk_fanout = 0

    # ------------------------------------------------------------------
    # session views
    # ------------------------------------------------------------------
    def session_view(self, bufmgr: BufferManager) -> "BPlusTree":
        """A read-only rebinding of this index onto another buffer pool.

        The view shares the base index's pages (same disk, same page
        ids) but pins them through ``bufmgr`` — a session's private
        pool — so concurrent probes from different sessions never race
        on the owning document's shared pool.  Views are probe-only by
        convention: never insert into, delete from, or destroy one.
        Staleness is shared with the base via ``_stale_source``: when
        the update pipeline retires the base, every view raises too.
        """
        view = copy.copy(self)
        view.bufmgr = bufmgr
        view._stale_source = self
        view._reset_session_caches()
        return view

    def _reset_session_caches(self) -> None:
        """Drop decoded-page caches so a view decodes via its own pool."""
        self._node_cache = {}

    # ------------------------------------------------------------------
    # node (de)serialisation
    # ------------------------------------------------------------------
    def _read_node(self, page_id: int) -> _Node:
        cached = self._node_cache.get(page_id)
        if cached is not None:
            # touch the page so buffer accounting matches a real read
            self.bufmgr.pin(page_id)
            self.bufmgr.unpin(page_id)
            return cached
        frame = self.bufmgr.pin(page_id)
        try:
            data = frame.data
            node_type, count, link = _HEADER.unpack_from(data, 0)
            node = _Node(page_id, node_type == _LEAF)
            batched = batch_module.batching_enabled()
            if node.is_leaf:
                node.next_leaf = None if link == _NO_PAGE else link
                if batched and count:
                    # one bulk unpack + extended slices instead of a
                    # per-entry loop; formats are explicitly "<" so the
                    # decode stays endianness-faithful
                    flat = struct.unpack_from(
                        "<" + "Q" * (2 * count), data, _HEADER_SIZE
                    )
                    node.keys = list(flat[0::2])
                    node.values = list(flat[1::2])
                else:
                    offset = _HEADER_SIZE
                    for _ in range(count):
                        key, value = _LEAF_ENTRY.unpack_from(data, offset)
                        node.keys.append(key)
                        node.values.append(value)
                        offset += _LEAF_ENTRY.size
            else:
                node.children.append(link)
                if batched and count:
                    flat = struct.unpack_from(
                        "<" + "QII" * count, data, _HEADER_SIZE
                    )
                    node.keys = list(flat[0::3])
                    node.children.extend(flat[1::3])
                else:
                    offset = _HEADER_SIZE
                    for _ in range(count):
                        key, child, _pad = _INT_ENTRY.unpack_from(data, offset)
                        node.keys.append(key)
                        node.children.append(child)
                        offset += _INT_ENTRY.size
            if batched:
                self._node_cache[page_id] = node
            return node
        finally:
            self.bufmgr.unpin(page_id)

    def _write_node(self, node: _Node) -> None:
        self._node_cache.pop(node.page_id, None)
        frame = self.bufmgr.pin(node.page_id)
        try:
            data = frame.data
            if node.is_leaf:
                link = _NO_PAGE if node.next_leaf is None else node.next_leaf
                _HEADER.pack_into(data, 0, _LEAF, len(node.keys), link)
                offset = _HEADER_SIZE
                for key, value in zip(node.keys, node.values):
                    _LEAF_ENTRY.pack_into(data, offset, key, value)
                    offset += _LEAF_ENTRY.size
            else:
                _HEADER.pack_into(data, 0, _INTERNAL, len(node.keys), node.children[0])
                offset = _HEADER_SIZE
                for key, child in zip(node.keys, node.children[1:]):
                    _INT_ENTRY.pack_into(data, offset, key, child, 0)
                    offset += _INT_ENTRY.size
        finally:
            self.bufmgr.unpin(node.page_id, dirty=True)

    def _new_node(self, is_leaf: bool) -> _Node:
        frame = self.bufmgr.new_page()
        try:
            self.num_nodes += 1
            return _Node(frame.page_id, is_leaf)
        finally:
            self.bufmgr.unpin(frame.page_id, dirty=True)

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        bufmgr: BufferManager,
        entries: Iterable[tuple[int, int]],
        name: str = "",
        fill_factor: float = 1.0,
    ) -> "BPlusTree":
        """Build a tree bottom-up from (key, value) pairs sorted by key."""
        if not 0.1 <= fill_factor <= 1.0:
            raise ValueError("fill factor must be in [0.1, 1.0]")
        tree = cls(bufmgr, name)
        per_leaf = max(2, int(tree.leaf_capacity * fill_factor))
        leaves: list[tuple[int, int]] = []  # (first key, page id)

        node: _Node | None = None
        last_key: int | None = None
        for key, value in entries:
            if last_key is not None and key < last_key:
                raise ValueError("bulk_load input must be sorted by key")
            last_key = key
            if node is None or len(node.keys) >= per_leaf:
                fresh = tree._new_node(is_leaf=True)
                if node is not None:
                    node.next_leaf = fresh.page_id
                    tree._write_node(node)
                node = fresh
                leaves.append((key, node.page_id))
            node.keys.append(key)
            node.values.append(value)
            tree.num_entries += 1
        if node is not None:
            tree._write_node(node)

        if not leaves:
            return tree
        tree.height = 1
        level = leaves
        tree.level_pages.append([page_id for _key, page_id in leaves])
        per_internal = max(2, int(tree.internal_capacity * fill_factor))
        tree.bulk_fanout = per_internal + 1
        while len(level) > 1:
            level = tree._build_internal_level(level, per_internal)
            tree.level_pages.append([page_id for _key, page_id in level])
            tree.height += 1
        tree.root_page = level[0][1]
        return tree

    def _build_internal_level(
        self, children: list[tuple[int, int]], per_node: int
    ) -> list[tuple[int, int]]:
        """Group ``(first_key, page_id)`` children under internal nodes."""
        parents: list[tuple[int, int]] = []
        for start in range(0, len(children), per_node + 1):
            group = children[start:start + per_node + 1]
            node = self._new_node(is_leaf=False)
            node.children = [page_id for _key, page_id in group]
            node.keys = [key for key, _page_id in group[1:]]
            self._write_node(node)
            parents.append((group[0][0], node.page_id))
        return parents

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        """Insert one entry (duplicates allowed)."""
        # splits allocate pages out of level order: the bulk-load
        # layout record no longer describes the tree
        self.level_pages = []
        self.bulk_fanout = 0
        if self.root_page is None:
            root = self._new_node(is_leaf=True)
            root.keys.append(key)
            root.values.append(value)
            self._write_node(root)
            self.root_page = root.page_id
            self.height = 1
            self.num_entries = 1
            return
        split = self._insert_into(self.root_page, key, value)
        self.num_entries += 1
        if split is not None:
            sep_key, right_page = split
            new_root = self._new_node(is_leaf=False)
            new_root.children = [self.root_page, right_page]
            new_root.keys = [sep_key]
            self._write_node(new_root)
            self.root_page = new_root.page_id
            self.height += 1

    def _insert_into(
        self, page_id: int, key: int, value: int
    ) -> tuple[int, int] | None:
        """Insert under ``page_id``; return (separator, new right page) on split."""
        node = self._read_node(page_id)
        if node.is_leaf:
            pos = bisect_right(node.keys, key)
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            if len(node.keys) <= self.leaf_capacity:
                self._write_node(node)
                return None
            return self._split_leaf(node)
        slot = bisect_right(node.keys, key)
        split = self._insert_into(node.children[slot], key, value)
        if split is None:
            return None
        sep_key, right_page = split
        node.keys.insert(slot, sep_key)
        node.children.insert(slot + 1, right_page)
        if len(node.keys) <= self.internal_capacity:
            self._write_node(node)
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> tuple[int, int]:
        mid = len(node.keys) // 2
        right = self._new_node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right.page_id
        self._write_node(right)
        self._write_node(node)
        return right.keys[0], right.page_id

    def _split_internal(self, node: _Node) -> tuple[int, int]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = self._new_node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self._write_node(right)
        self._write_node(node)
        return sep_key, right.page_id

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, key: int, value: int) -> bool:
        """Remove one ``(key, value)`` entry; True if it was present.

        Leaf-local: the entry is cut out of its leaf page and the count
        rewritten.  No rebalancing or page reclamation is attempted —
        underfull (even empty) leaves stay in the chain and search
        walks through them — which keeps a delete a one-page patch,
        the property the incremental update pipeline
        (:mod:`repro.storage.docstore`) relies on.  Duplicates of
        ``key`` are disambiguated by ``value``; with several identical
        ``(key, value)`` entries one arbitrary instance is removed.
        """
        node = self._descend_to_leaf(key)
        while node is not None:
            pos = bisect_left(node.keys, key)
            while pos < len(node.keys) and node.keys[pos] == key:
                if node.values[pos] == value:
                    del node.keys[pos]
                    del node.values[pos]
                    self._write_node(node)
                    self.num_entries -= 1
                    return True
                pos += 1
            if pos < len(node.keys) or node.next_leaf is None:
                return False  # walked past the key (or off the chain)
            node = self._read_node(node.next_leaf)
        return False

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _descend_to_leaf(self, key: int) -> _Node | None:
        """Leftmost leaf that may contain ``key``.

        Descends with ``bisect_left``: duplicate keys may straddle a
        node boundary (the separator equals the key), and a range scan
        must start at the *first* duplicate — the forward leaf chain
        picks up the rest.
        """
        with self.probe_guard():
            if self.root_page is None:
                return None
            node = self._read_node(self.root_page)
            while not node.is_leaf:
                slot = bisect_left(node.keys, key)
                node = self._read_node(node.children[slot])
            return node

    def search(self, key: int) -> list[int]:
        """All values stored under exactly ``key``."""
        return [value for _key, value in self.range_scan(key, key)]

    def range_scan(
        self,
        lo: int,
        hi: int,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[int, int]]:
        """Yield (key, value) pairs with ``lo <= key <= hi`` (bounds optional).

        Lazy, but guarded leaf-at-a-time: each leaf's in-range entries
        are collected under :meth:`~repro.index.staleness.StaleGuard.
        probe_guard`, and the walk to the next leaf re-enters it — so a
        ``mark_stale`` landing while the generator is suspended makes
        the next leaf access raise
        :class:`~repro.index.staleness.StaleIndexError` instead of the
        scan silently completing with pre-retirement entries.  Pages
        are still read at the same pull points as before (the next
        leaf is only fetched once the consumer drains the current
        one), so the I/O ledger is unchanged.
        """
        node = self._descend_to_leaf(lo)
        if node is None:
            return
        pos = (bisect_left if include_lo else bisect_right)(node.keys, lo)
        while True:
            batch: list[tuple[int, int]] = []
            done = False
            with self.probe_guard():
                while pos < len(node.keys):
                    key = node.keys[pos]
                    if key > hi or (key == hi and not include_hi):
                        done = True
                        break
                    batch.append((key, node.values[pos]))
                    pos += 1
            yield from batch
            if done:
                return
            with self.probe_guard():
                if node.next_leaf is None:
                    return
                node = self._read_node(node.next_leaf)
            pos = 0

    def first_geq(self, key: int) -> tuple[int, int] | None:
        """The smallest entry with key >= ``key`` (the ADB+ skip probe)."""
        for entry in self.range_scan(key, hi=(1 << 64) - 1):
            return entry
        return None

    def scan_all(self) -> Iterator[tuple[int, int]]:
        """Full in-order scan."""
        if self.num_entries:
            yield from self.range_scan(0, (1 << 64) - 1)

    def __len__(self) -> int:
        return self.num_entries

    def __repr__(self) -> str:
        return (
            f"<BPlusTree {self.name!r} entries={self.num_entries} "
            f"height={self.height} nodes={self.num_nodes}>"
        )
