"""Staleness guard for static indexes.

The interval trees and the flat-array index variants are *static by
contract*: they are bulk-built over a snapshot of an element set and
have no incremental maintenance path (top-down insertion would splits
nodes out of the level order the flat descent arithmetic relies on,
and the interval tree's node directory is position-encoded).  When the
underlying element set changes, the storage-backed update pipeline
(:mod:`repro.storage.docstore`) marks such an index stale instead of
patching it; the owner rebuilds on next access.

The guard exists for everyone *else*: a caller holding a reference to
the pre-update index must get :class:`StaleIndexError` — loudly, on
the next probe — rather than silently wrong (pre-update) answers.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["StaleIndexError", "StaleGuard"]


class StaleIndexError(RuntimeError):
    """A static index was probed after its element set changed."""


class StaleGuard:
    """Mixin: ``mark_stale()`` once, every later probe raises.

    Kept as a class-level attribute so fresh indexes pay nothing; the
    probe entry points of the index classes call :meth:`_check_fresh`.
    """

    _stale_reason: Optional[str] = None

    @property
    def is_stale(self) -> bool:
        return self._stale_reason is not None

    def mark_stale(self, reason: str) -> None:
        """Invalidate this index; it must be rebuilt, not probed."""
        self._stale_reason = reason

    def _check_fresh(self) -> None:
        if self._stale_reason is not None:
            raise StaleIndexError(
                f"{type(self).__name__} is stale ({self._stale_reason}); "
                "static indexes are invalidate-and-rebuild — fetch a fresh "
                "one from its owner instead of probing this reference"
            )
