"""Staleness guard for static indexes.

The interval trees and the flat-array index variants are *static by
contract*: they are bulk-built over a snapshot of an element set and
have no incremental maintenance path (top-down insertion would splits
nodes out of the level order the flat descent arithmetic relies on,
and the interval tree's node directory is position-encoded).  When the
underlying element set changes, the storage-backed update pipeline
(:mod:`repro.storage.docstore`) marks such an index stale instead of
patching it; the owner rebuilds on next access.

The guard exists for everyone *else*: a caller holding a reference to
the pre-update index must get :class:`StaleIndexError` — loudly, on
the next probe — rather than silently wrong (pre-update) answers.

Retirement and probing are *atomic*: eager probe entry points wrap
their whole body in :meth:`StaleGuard.probe_guard`, and
:meth:`mark_stale` takes the same lock, so an index cannot be retired
between the freshness check and the probe work (the classic
check-then-act TOCTOU — a concurrent updater marking the index stale
mid-probe would otherwise let that probe return pre-update answers
without an error).  A retire issued while a probe holds the guard
blocks until it finishes; every probe started after
:meth:`mark_stale` returns raises.

Lazy scans (the ``range_scan`` generators) cannot hold the guard
across consumer pulls, so they hold it *page-at-a-time*: each leaf's
entries are collected under the guard, and the walk to the next leaf
re-checks freshness.  The guarantee there is page-granular — a retire
landing while the generator is suspended makes the very next leaf
access raise :class:`StaleIndexError`; entries already produced were
all read while the index was fresh (the scan behaves as if it had
reached its current page boundary before the retire), and a scan can
never silently run to completion across a retirement.

Session views (``session_view`` on the index classes) share their
base index's staleness state through ``_stale_source``: every guard
operation delegates to the *root* of the source chain, so views and
base take the same probe lock and a ``mark_stale`` on any of them
retires all of them atomically.  A view probing after its base was
retired raises exactly like the base would.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["StaleIndexError", "StaleGuard"]


class StaleIndexError(RuntimeError):
    """A static index was probed after its element set changed."""


#: guards lazy creation of per-instance probe locks (the mixin has no
#: __init__ of its own, so the lock is installed on first use)
_guard_init_lock = threading.Lock()


class StaleGuard:
    """Mixin: ``mark_stale()`` once, every later probe raises.

    Kept as class-level attributes so fresh indexes pay nothing beyond
    one lock acquisition per probe; the probe entry points of the index
    classes wrap their bodies in :meth:`probe_guard`.
    """

    _stale_reason: Optional[str] = None
    _probe_lock: Optional[threading.RLock] = None
    #: set on session views — guard state delegates to the base index
    _stale_source: Optional["StaleGuard"] = None

    def _guard_root(self) -> "StaleGuard":
        """The index owning the guard state (self, or the view's base)."""
        root: StaleGuard = self
        while root._stale_source is not None:
            root = root._stale_source
        return root

    def _ensure_lock(self) -> threading.RLock:
        root = self._guard_root()
        lock = root._probe_lock
        if lock is None:
            with _guard_init_lock:
                lock = root._probe_lock
                if lock is None:
                    lock = threading.RLock()
                    root._probe_lock = lock
        return lock

    @property
    def is_stale(self) -> bool:
        return self._guard_root()._stale_reason is not None

    def mark_stale(self, reason: str) -> None:
        """Invalidate this index; it must be rebuilt, not probed.

        Blocks until any in-flight probe completes, so a probe either
        finishes against the still-fresh index or never starts.
        Retiring a session view retires its base (and all sibling
        views) too — they share one guard.
        """
        with self._ensure_lock():
            self._guard_root()._stale_reason = reason

    @contextmanager
    def probe_guard(self) -> Iterator[None]:
        """Atomic freshness-check-plus-probe window.

        Eager probe entry points wrap their whole body in this context
        manager: the staleness check and the probe happen under one
        lock, so :meth:`mark_stale` cannot slip in between them.  Lazy
        scan generators re-enter it for every leaf they touch, which
        re-runs the freshness check at each page boundary.  The lock
        is reentrant — probes that recurse into other guarded probes
        of the same index re-enter freely.
        """
        with self._ensure_lock():
            self._check_fresh()
            yield

    def _check_fresh(self) -> None:
        reason = self._guard_root()._stale_reason
        if reason is not None:
            raise StaleIndexError(
                f"{type(self).__name__} is stale ({reason}); "
                "static indexes are invalidate-and-rebuild — fetch a fresh "
                "one from its owner instead of probing this reference"
            )
