"""Disk-based indexes: B+-tree and static interval tree."""

from .bptree import BPlusTree
from .interval_tree import IntervalTree
from .rtree import Rect, RTree
from .xrtree import XRTree

__all__ = ["BPlusTree", "IntervalTree", "RTree", "Rect", "XRTree"]
