"""Disk-based indexes: B+-tree, static interval tree, and flat variants."""

from .bptree import BPlusTree
from .flat import (
    FlatIntervalTree,
    FlatStartIndex,
    flat_enabled,
    flat_scope,
    set_flat_enabled,
)
from .interval_tree import IntervalTree
from .rtree import Rect, RTree
from .staleness import StaleGuard, StaleIndexError
from .xrtree import XRTree

__all__ = [
    "BPlusTree",
    "FlatIntervalTree",
    "FlatStartIndex",
    "IntervalTree",
    "RTree",
    "Rect",
    "StaleGuard",
    "StaleIndexError",
    "XRTree",
    "flat_enabled",
    "flat_scope",
    "set_flat_enabled",
]
