"""Paged static interval tree for stabbing queries over regions.

INLJN needs to probe the *ancestor* set with a descendant's ``Start``
point: report every ancestor region containing the point.  A B+-tree
cannot answer this efficiently (the paper notes compound-key B+-trees
cause many unnecessary node accesses), so — following the paper's
proposal to use a disk-based interval tree [7] — this module provides a
static (bulk-built) Edelsbrunner interval tree whose node directory and
interval lists live on buffer-managed pages.

Structure: a balanced binary tree over midpoints of the region
endpoints.  Each tree node stores the intervals containing its midpoint
twice — once sorted by ascending ``start`` (scanned when the query point
lies left of the midpoint) and once by descending ``end`` (scanned when
it lies right).  A stabbing query costs ``O(log n)`` node-page accesses
plus the pages of the reported list prefixes.
"""

from __future__ import annotations

import copy
import struct
from operator import itemgetter
from typing import Iterator, Sequence, cast

from ..core.pbitree import PBiCode, RegionCode
from ..storage.buffer import BufferManager
from ..storage.heapfile import HeapFile
from ..storage.record import TRIPLE
from .staleness import StaleGuard

__all__ = ["IntervalTree", "Interval"]

#: one stored interval: region start, region end, element code
Interval = tuple[RegionCode, RegionCode, PBiCode]

# node record: midpoint, left child, right child, left-list slice,
# right-list slice (slices into the interval heap file, in records)
_NODE = struct.Struct("<QiiIIII")
_NO_CHILD = -1
_NODE_HEADER = 8  # reuse record-page header layout: count + reserved


class IntervalTree(StaleGuard):
    """Static stabbing-query index over ``(start, end, payload)`` intervals.

    Build-only: there is no incremental maintenance path.  When its
    element set changes, the owner calls
    :meth:`~repro.index.staleness.StaleGuard.mark_stale` and rebuilds;
    stabbing a stale reference raises
    :class:`~repro.index.staleness.StaleIndexError`.
    """

    def __init__(self, bufmgr: BufferManager, name: str = "") -> None:
        self.bufmgr = bufmgr
        self.name = name
        self.num_intervals = 0
        self._node_pages: list[int] = []
        self._nodes_per_page = (
            bufmgr.disk.page_size - _NODE_HEADER
        ) // _NODE.size
        self._root = _NO_CHILD
        # interval lists: one heap file, each node's lists stored as
        # contiguous record runs (start, end, payload)
        self._lists: HeapFile | None = None

    # ------------------------------------------------------------------
    # session views
    # ------------------------------------------------------------------
    def session_view(self, bufmgr: BufferManager) -> "IntervalTree":
        """A read-only rebinding of this index onto another buffer pool.

        Shares the base tree's node pages and interval-list heap (same
        disk, same page ids) but pins them through ``bufmgr``, so a
        session's stabbing probes never touch the owning document's
        shared pool.  Probe-only by convention; staleness delegates to
        the base via ``_stale_source``.
        """
        view = copy.copy(self)
        view.bufmgr = bufmgr
        view._stale_source = self
        if self._lists is not None:
            view._lists = self._lists.view(bufmgr)
        view._reset_session_caches()
        return view

    def _reset_session_caches(self) -> None:
        """Hook for static subclasses with decoded-page caches."""

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        bufmgr: BufferManager,
        intervals: Sequence[Interval],
        name: str = "",
    ) -> "IntervalTree":
        """Bulk-build from ``(start, end, payload)`` triples."""
        tree = cls(bufmgr, name)
        tree.num_intervals = len(intervals)
        if not intervals:
            return tree

        endpoints = sorted({point for s, e, _p in intervals for point in (s, e)})
        nodes: list[tuple] = []  # (mid, left, right, l_off, l_len, r_off, r_len)
        lists = HeapFile(bufmgr, TRIPLE, name=f"{name}[lists]")
        writer = lists.open_writer()
        offset = [0]

        def build_node(items: list[tuple[int, int, int]], lo: int, hi: int) -> int:
            """Recursively build over endpoint slice [lo, hi); returns node index."""
            if not items or lo >= hi:
                return _NO_CHILD
            mid_index = (lo + hi) // 2
            mid = endpoints[mid_index]
            here = [iv for iv in items if iv[0] <= mid <= iv[1]]
            lefts = [iv for iv in items if iv[1] < mid]
            rights = [iv for iv in items if iv[0] > mid]

            # itemgetter keys and bulk appends: same stable order (and
            # page layout) as per-record appends, far fewer bytecodes
            left_sorted = sorted(here, key=itemgetter(0))
            right_sorted = sorted(here, key=itemgetter(1), reverse=True)
            l_off = offset[0]
            writer.append_many(left_sorted)
            offset[0] += len(left_sorted)
            r_off = offset[0]
            writer.append_many(right_sorted)
            offset[0] += len(right_sorted)

            index = len(nodes)
            nodes.append(None)  # reserve slot before recursing
            left_child = build_node(lefts, lo, mid_index)
            right_child = build_node(rights, mid_index + 1, hi)
            nodes[index] = (
                mid, left_child, right_child,
                l_off, len(left_sorted), r_off, len(right_sorted),
            )
            return index

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * len(endpoints).bit_length() * 64 + 1000))
        try:
            tree._root = build_node(list(intervals), 0, len(endpoints))
        finally:
            sys.setrecursionlimit(old_limit)
        writer.close()
        tree._lists = lists
        tree._write_nodes(nodes)
        return tree

    def _write_nodes(self, nodes: list[tuple]) -> None:
        """Pack the node directory into pages."""
        per_page = self._nodes_per_page
        for page_start in range(0, len(nodes), per_page):
            frame = self.bufmgr.new_page()
            try:
                chunk = nodes[page_start:page_start + per_page]
                struct.pack_into("<I", frame.data, 0, len(chunk))
                offset = _NODE_HEADER
                for node in chunk:
                    _NODE.pack_into(frame.data, offset, *node)
                    offset += _NODE.size
            finally:
                self.bufmgr.unpin(frame.page_id, dirty=True)
            self._node_pages.append(frame.page_id)

    def _read_node(self, index: int) -> tuple:
        page_index, slot = divmod(index, self._nodes_per_page)
        page_id = self._node_pages[page_index]
        frame = self.bufmgr.pin(page_id)
        try:
            return _NODE.unpack_from(frame.data, _NODE_HEADER + slot * _NODE.size)
        finally:
            self.bufmgr.unpin(page_id)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def stab(self, point: RegionCode) -> Iterator[Interval]:
        """Every interval ``(start, end, payload)`` containing ``point``.

        The whole probe runs under :meth:`probe_guard` — materialized
        eagerly (every caller consumes the stab fully, so the page
        accesses are identical) so a concurrent ``mark_stale`` cannot
        slip in mid-walk and let stale answers escape.
        """
        with self.probe_guard():
            return iter(list(self._stab_walk(point)))

    def _stab_walk(self, point: RegionCode) -> Iterator[Interval]:
        if self._root == _NO_CHILD:
            return
        index = self._root
        while index != _NO_CHILD:
            mid, left, right, l_off, l_len, r_off, r_len = self._read_node(index)
            if point < mid:
                yield from self._scan_left_list(l_off, l_len, point)
                index = left
            elif point > mid:
                yield from self._scan_right_list(r_off, r_len, point)
                index = right
            else:
                yield from self._scan_left_list(l_off, l_len, point)
                return

    def _scan_left_list(
        self, offset: int, length: int, point: int
    ) -> Iterator[Interval]:
        """Scan a start-ascending list while ``start <= point``."""
        for interval in self._scan_list(offset, length):
            if interval[0] > point:
                return
            yield interval

    def _scan_right_list(
        self, offset: int, length: int, point: int
    ) -> Iterator[Interval]:
        """Scan an end-descending list while ``end >= point``."""
        for interval in self._scan_list(offset, length):
            if interval[1] < point:
                return
            yield interval

    def _scan_list(self, offset: int, length: int) -> Iterator[Interval]:
        assert self._lists is not None
        heap = self._lists
        per_page = heap.capacity
        remaining = length
        position = offset
        while remaining > 0:
            page_index, slot = divmod(position, per_page)
            records = heap.read_page(page_index)
            take = records[slot:slot + remaining]
            # stored triples carry the build()-time domain types
            yield from cast("list[Interval]", take)
            position += len(take)
            remaining -= len(take)

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        lists_pages = self._lists.num_pages if self._lists else 0
        return len(self._node_pages) + lists_pages

    def __len__(self) -> int:
        return self.num_intervals

    def __repr__(self) -> str:
        return (
            f"<IntervalTree {self.name!r} intervals={self.num_intervals} "
            f"pages={self.num_pages}>"
        )
