"""Parallel execution of independent partition tasks.

The partitioning algorithms of Sections 3.2–3.3 are embarrassingly
parallel by construction: MHCJ's height classes and VPJ's purged
co-partition pairs are joined independently and their outputs are
disjoint.  This package fans those tasks — plus the harness's
per-algorithm line-up runs — out over a process pool while keeping the
parent's page-I/O accounting *byte-identical* to a serial run: the
parent performs all storage I/O in serial order and ships only code
arrays; workers run pure-CPU kernels (see docs/parallel.md).

Everything defaults to serial (``workers=1``); the knob is threaded
through :class:`~repro.join.vpj.VerticalPartitionJoin`,
:class:`~repro.join.mhcj.MultiHeightRollupJoin`,
:func:`~repro.experiments.harness.run_lineup` and the CLI's
``--workers`` flag.
"""

from .fanout import Fanout, open_fanout
from .pool import PARALLEL_MODE_ENV, WorkerPool, split_chunks
from .tasks import (
    HeightProbeTask,
    LineupTask,
    LineupTaskResult,
    MemJoinTask,
    TaskResult,
    fault_from_payload,
    fault_to_payload,
    run_height_probe_task,
    run_lineup_task,
    run_memjoin_task,
)

__all__ = [
    "Fanout",
    "open_fanout",
    "PARALLEL_MODE_ENV",
    "WorkerPool",
    "split_chunks",
    "HeightProbeTask",
    "LineupTask",
    "LineupTaskResult",
    "MemJoinTask",
    "TaskResult",
    "fault_from_payload",
    "fault_to_payload",
    "run_height_probe_task",
    "run_lineup_task",
    "run_memjoin_task",
]
