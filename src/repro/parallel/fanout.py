"""Deterministic fan-out: ordered task registry + merge into one run.

A parallel join operator submits partition tasks *in the order the
serial algorithm would have executed them* and drains results in that
same submission order.  Workers may finish in any order — the merge
never observes completion order, so the parent's
:class:`~repro.join.base.JoinSink` contents, ``false_hits`` tally and
attached span forest are identical run to run (and, for the sorted
pair set, identical to serial).

Worker spans come back as JSON lines and are attached as children of a
single ``parallel.fanout`` span.  The fanout span is opened on the
parent tracer *after* the operator's own storage work, so its I/O delta
is zero and the root ``join.<name>`` span's I/O delta remains exactly
the serial accounting; the worker spans under it carry wall time only
(their kernels, by construction, perform no I/O).
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any, Callable, Optional

from ..join.base import JoinReport, JoinSink
from ..obs.export import spans_from_jsonl
from ..obs.tracer import Span, Tracer
from .pool import WorkerPool
from .tasks import TaskResult

__all__ = ["Fanout", "open_fanout"]

_TaskFn = Callable[[Any], TaskResult]


def open_fanout(workers: int, mode: Optional[str] = None) -> "Optional[Fanout]":
    """A :class:`Fanout` for ``workers > 1``, else ``None`` (serial)."""
    if workers <= 1:
        return None
    return Fanout(WorkerPool(workers, mode=mode))


class Fanout:
    """Ordered registry of one join run's in-flight partition tasks."""

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self._items: list[tuple[_TaskFn, Any, "Future[TaskResult]"]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def workers(self) -> int:
        """Fan-out width producers should chunk for."""
        return self.pool.workers

    def submit(self, fn: _TaskFn, task: Any) -> None:
        """Schedule one task; its merge slot is this call's position."""
        self._items.append((fn, task, self.pool.submit(fn, task)))

    def drain(
        self,
        sink: JoinSink,
        report: JoinReport,
        span: Optional[Span] = None,
    ) -> None:
        """Merge all results, in submission order, into the parent run."""
        items, self._items = self._items, []
        for fn, task, future in items:
            result = self.pool.resolve(future, fn, task)
            sink.absorb(result["count"], result["pairs"])
            report.false_hits += result["false_hits"]
            if span is not None and result["trace"]:
                span.children.extend(spans_from_jsonl(result["trace"]))

    def drain_traced(
        self, sink: JoinSink, report: JoinReport, tracer: Tracer
    ) -> None:
        """Drain under a ``parallel.fanout`` span on ``tracer``."""
        with tracer.span(
            "parallel.fanout", tasks=len(self), workers=self.pool.workers
        ) as span:
            self.drain(sink, report, span if tracer.enabled else None)

    def close(self) -> None:
        """Release the pool (idempotent; does not drain)."""
        self.pool.close()
