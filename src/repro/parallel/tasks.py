"""Picklable partition tasks and their pure-CPU worker kernels.

The accounting contract of the parallel subsystem (docs/parallel.md)
is that a parallel run's merged page-I/O equals the serial run's
*exactly*.  The design that makes this trivial rather than heroic: the
parent replays the exact serial page-access order while extracting
each partition's code arrays, and ships only those arrays.  Workers
never open a :class:`~repro.storage.disk.DiskManager` for partition
work — their kernels are pure CPU over the shipped lists — so all
storage I/O, buffer hits/misses, retries and injected faults happen in
the parent, in serial order.

Line-up tasks (:class:`LineupTask`) are the one exception: each worker
builds its *own complete workbench* (disk + buffer pool) from the
shipped codes, because a line-up run is defined as "this algorithm,
cold, on a fresh bench".  The worker sends the finished
:class:`~repro.join.base.JoinReport` back (trace detached and shipped
as JSON lines, which survive pickling losslessly), plus structured
fault payloads — :class:`~repro.storage.faults.StorageFault` instances
themselves use keyword-only constructors and do not round-trip through
pickle.

Every task dataclass here is frozen and built from ints, strings and
lists of ints — safe for both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Optional, TypedDict

from ..core import batch, pbitree
from ..core.pbitree import PBiCode
from ..index import flat
from ..obs.export import trace_to_jsonl
from ..storage import sanitize as sanitize_module
from ..obs.tracer import Tracer
from ..storage.faults import (
    FaultConfig,
    PermanentIOError,
    RetryPolicy,
    StorageFault,
    TransientIOError,
)

__all__ = [
    "TaskResult",
    "LineupTaskResult",
    "SlotTaskResult",
    "MemJoinTask",
    "HeightProbeTask",
    "LineupTask",
    "SlotJoinTask",
    "run_memjoin_task",
    "run_height_probe_task",
    "run_lineup_task",
    "run_slot_join_task",
    "fault_to_payload",
    "fault_from_payload",
]


class TaskResult(TypedDict):
    """What every partition-task worker sends back to the parent."""

    #: pairs emitted by this task's kernel
    count: int
    #: candidates that failed Lemma-1 verification (MHCJ rollup path)
    false_hits: int
    #: the emitted pairs, or ``None`` when the parent sink only counts
    pairs: Optional[list[tuple[int, int]]]
    #: worker-side span tree as JSON lines, or ``None`` when untraced
    trace: Optional[str]


class LineupTaskResult(TypedDict):
    """One algorithm's cold run on a worker-private workbench."""

    #: finished report (``trace`` detached), or ``None`` when faulted
    report: Optional[Any]
    #: structured :func:`fault_to_payload` payload, or ``None``
    fault: Optional[dict[str, Any]]
    #: worker tracer output as JSON lines, or ``None`` when untraced
    trace: Optional[str]
    #: final buffer-pool gauges of the worker's bench
    buffer: dict[str, float]
    #: injected-fault tallies of the worker's bench, or ``None``
    fault_stats: Optional[dict[str, int]]


class SlotTaskResult(TypedDict):
    """One level-``l`` slot's cold run inside a sharded join.

    Identical to :class:`LineupTaskResult` plus the emitted pairs —
    the gather half of scatter-gather ships results back when the
    parent collects (the line-up path never does; the sharded query
    path in :mod:`repro.db` and the service tier do).
    """

    #: finished report (``trace`` detached), or ``None`` when faulted
    report: Optional[Any]
    #: emitted pairs, or ``None`` when the parent only counts
    pairs: Optional[list[tuple[int, int]]]
    #: structured :func:`fault_to_payload` payload, or ``None``
    fault: Optional[dict[str, Any]]
    #: worker tracer output as JSON lines, or ``None`` when untraced
    trace: Optional[str]
    #: final buffer-pool gauges of the worker's bench
    buffer: dict[str, float]
    #: injected-fault tallies of the worker's bench, or ``None``
    fault_stats: Optional[dict[str, int]]


# ---------------------------------------------------------------------------
# VPJ: memory containment join over one co-partition
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MemJoinTask:
    """Algorithm 6 kernel over extracted code arrays.

    ``d_fits`` selects the branch the parent chose from *page* counts
    (the serial criterion — record counts could disagree with it):
    True sorts the descendant codes and binary-searches each ancestor's
    region; False builds per-height ancestor hash sets and probes each
    descendant with ``F``.  ``dedup_above_height`` carries VPJ's
    replicated-ancestor de-duplication; the parent only chunks the
    ancestor stream when it is ``None`` (the dedup set must see the
    whole stream).

    ``batch_size`` is shipped explicitly because ``spawn`` workers do
    not inherit the parent's :mod:`repro.core.batch` module state; 0
    selects the scalar kernel (the differential oracle).
    """

    label: str
    a_codes: list[int]
    d_codes: list[int]
    d_fits: bool
    dedup_above_height: Optional[int]
    collect: bool
    traced: bool
    batch_size: int = batch.DEFAULT_BATCH_SIZE


def _memjoin_kernel(task: MemJoinTask, emit: Callable[[int, int], None]) -> None:
    if task.batch_size > 0:
        if task.d_fits:
            batch.region_probe(
                task.a_codes,
                sorted(task.d_codes),
                emit,
                task.dedup_above_height,
                set(),
            )
        else:
            tables: dict[int, set[int]] = {}
            batch.build_height_tables(task.a_codes, tables)
            batch.height_probe(
                tables, sorted(tables, reverse=True), task.d_codes, emit
            )
        return
    region_of = pbitree.region_of
    height_of = pbitree.height_of
    f_ancestor = pbitree.f_ancestor
    if task.d_fits:
        d_codes = sorted(task.d_codes)
        dedup = task.dedup_above_height
        seen_high: set[int] = set()
        for a_code in task.a_codes:
            if dedup is not None and height_of(PBiCode(a_code)) > dedup:
                if a_code in seen_high:
                    continue
                seen_high.add(a_code)
            start, end = region_of(PBiCode(a_code))
            lo = bisect_left(d_codes, start)
            hi = bisect_right(d_codes, end)
            for d_code in d_codes[lo:hi]:
                if a_code != d_code:
                    emit(a_code, d_code)
    else:
        # hash sets de-duplicate replicated ancestors by construction
        by_height: dict[int, set[int]] = {}
        for a_code in task.a_codes:
            by_height.setdefault(height_of(PBiCode(a_code)), set()).add(a_code)
        heights = sorted(by_height, reverse=True)
        for d_code in task.d_codes:
            d_height = height_of(PBiCode(d_code))
            for height in heights:
                if height <= d_height:
                    break
                anc = f_ancestor(PBiCode(d_code), height)
                if anc in by_height[height]:
                    emit(anc, d_code)


def run_memjoin_task(task: MemJoinTask) -> TaskResult:
    """Execute one VPJ memory-join kernel; pure CPU, no storage."""
    pairs: Optional[list[tuple[int, int]]] = [] if task.collect else None
    count = 0

    def emit(a_code: int, d_code: int) -> None:
        nonlocal count
        count += 1
        if pairs is not None:
            pairs.append((a_code, d_code))

    trace: Optional[str] = None
    if task.traced:
        tracer = Tracer()
        with tracer.span(
            task.label,
            a_records=len(task.a_codes),
            d_records=len(task.d_codes),
        ):
            _memjoin_kernel(task, emit)
        trace = trace_to_jsonl(tracer)
    else:
        _memjoin_kernel(task, emit)
    return TaskResult(count=count, false_hits=0, pairs=pairs, trace=trace)


# ---------------------------------------------------------------------------
# MHCJ: one height class's hash probe
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HeightProbeTask:
    """One (chunk of one) height class of MHCJ / MHCJ+Rollup.

    ``a_pairs`` are ``(effective, original)`` records — ``effective``
    is the (possibly rolled) code at ``height``.  Matches through
    rolled records are verified with Lemma 1 against the original code;
    failures count as false hits, exactly as the serial
    ``_join_height_class``.  Either side may be the chunked one; the
    kernel's output is identical regardless of which side streams.
    """

    label: str
    height: int
    a_pairs: list[tuple[int, int]]
    d_codes: list[int]
    collect: bool
    traced: bool
    batch_size: int = batch.DEFAULT_BATCH_SIZE


def _height_probe_kernel(
    task: HeightProbeTask, emit: Callable[[int, int], None]
) -> int:
    if task.batch_size > 0:
        table: dict[int, list[int]] = {}
        for effective, original in task.a_pairs:
            bucket = table.get(effective)
            if bucket is None:
                table[effective] = [original]
            else:
                bucket.append(original)
        return batch.height_class_probe(table, task.height, task.d_codes, emit)
    height_of = pbitree.height_of
    f_ancestor = pbitree.f_ancestor
    is_ancestor = pbitree.is_ancestor
    height = task.height
    false_hits = 0
    table: dict[int, list[tuple[int, int]]] = {}
    for pair in task.a_pairs:
        table.setdefault(pair[0], []).append(pair)
    for d_code in task.d_codes:
        if height_of(PBiCode(d_code)) >= height:
            continue
        anc = f_ancestor(PBiCode(d_code), height)
        for effective, original in table.get(anc, ()):
            if effective == original:
                emit(original, d_code)
            elif is_ancestor(PBiCode(original), PBiCode(d_code)):
                emit(original, d_code)
            else:
                false_hits += 1
    return false_hits


def run_height_probe_task(task: HeightProbeTask) -> TaskResult:
    """Execute one MHCJ height-class probe; pure CPU, no storage."""
    pairs: Optional[list[tuple[int, int]]] = [] if task.collect else None
    count = 0

    def emit(a_code: int, d_code: int) -> None:
        nonlocal count
        count += 1
        if pairs is not None:
            pairs.append((a_code, d_code))

    trace: Optional[str] = None
    if task.traced:
        tracer = Tracer()
        with tracer.span(
            task.label,
            height=task.height,
            a_records=len(task.a_pairs),
            d_records=len(task.d_codes),
        ):
            false_hits = _height_probe_kernel(task, emit)
        trace = trace_to_jsonl(tracer)
    else:
        false_hits = _height_probe_kernel(task, emit)
    return TaskResult(count=count, false_hits=false_hits, pairs=pairs, trace=trace)


# ---------------------------------------------------------------------------
# harness: one algorithm's cold line-up run
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LineupTask:
    """One algorithm of a line-up, run cold on a worker-private bench.

    ``faults`` must be a (picklable, frozen) :class:`FaultConfig`, not
    a live injector: the worker builds a fresh seeded injector from it,
    so a parallel line-up's fault schedule per algorithm equals a
    serial run of that algorithm on a fresh bench with the same config.
    """

    dataset: str
    algorithm: str
    a_codes: list[int]
    d_codes: list[int]
    tree_height: int
    buffer_pages: int
    page_size: int
    collect: bool
    faults: Optional[FaultConfig]
    retry: Optional[RetryPolicy]
    traced: bool
    algorithm_workers: int = 1
    #: the parent's batch size, shipped explicitly (``spawn`` workers
    #: do not inherit module state); applied to the worker's whole run
    batch_size: int = batch.DEFAULT_BATCH_SIZE
    #: the parent's flat-index switch, shipped the same way: on-the-fly
    #: index builds in the worker must match the parent's serial run
    flat_index: bool = False
    #: the parent's view-lifetime sanitizer bit, shipped the same way —
    #: a sanitized parallel run must sanitize every worker bench too
    sanitize: bool = False


def fault_to_payload(fault: StorageFault) -> dict[str, Any]:
    """Flatten a fault for the trip back to the parent process.

    ``StorageFault`` constructors take keyword-only arguments, which
    default pickling of exceptions does not reproduce — a raised fault
    crossing a process boundary would turn into a ``TypeError``.
    """
    return {
        "type": type(fault).__name__,
        "message": fault.args[0] if fault.args else "storage fault",
        "page_id": fault.page_id,
        "operation": fault.operation,
        "transient": fault.transient,
        "context": list(fault.context),
        "algorithm": fault.algorithm,
    }


def fault_from_payload(payload: dict[str, Any]) -> StorageFault:
    """Rebuild a typed fault from :func:`fault_to_payload` output."""
    kinds: dict[str, type[StorageFault]] = {
        "TransientIOError": TransientIOError,
        "PermanentIOError": PermanentIOError,
    }
    kind = kinds.get(str(payload["type"]))
    fault: StorageFault
    if kind is not None and payload["page_id"] is not None:
        fault = kind(
            str(payload["message"]),
            page_id=int(payload["page_id"]),
            operation=str(payload["operation"]),
        )
    else:
        fault = StorageFault(
            str(payload["message"]),
            page_id=payload["page_id"],
            operation=payload["operation"],
            transient=bool(payload["transient"]),
        )
    fault.context = list(payload["context"])
    fault.algorithm = payload["algorithm"]
    return fault


def run_lineup_task(task: LineupTask) -> LineupTaskResult:
    """Run one algorithm cold on a fresh workbench (worker side)."""
    # imported lazily: the harness imports the join operators, which
    # import this package — a module-level import would be circular
    from ..experiments.harness import (
        Workbench,
        make_algorithm,
        materialize,
        run_algorithm,
    )
    from ..join.base import JoinSink

    # worker processes start with the module defaults; mirror the
    # parent's configured batch size, flat-index switch and sanitizer
    # bit before any operator runs
    batch.set_batch_size(task.batch_size)
    flat.set_flat_enabled(task.flat_index)
    sanitize_module.set_sanitize_enabled(task.sanitize)
    bench = Workbench.create(
        task.buffer_pages, task.page_size, faults=task.faults, retry=task.retry
    )
    ancestors = materialize(
        bench.bufmgr, task.a_codes, task.tree_height, f"{task.dataset}.A"
    )
    descendants = materialize(
        bench.bufmgr, task.d_codes, task.tree_height, f"{task.dataset}.D"
    )
    algorithm = make_algorithm(task.algorithm, workers=task.algorithm_workers)
    sink = JoinSink("collect" if task.collect else "count")
    tracer = Tracer() if task.traced else None

    def buffer_gauges() -> dict[str, float]:
        return {
            "hits": float(bench.bufmgr.hits),
            "misses": float(bench.bufmgr.misses),
            "resident": float(bench.bufmgr.num_resident),
            "pinned": float(bench.bufmgr.num_pinned),
        }

    def fault_stats() -> Optional[dict[str, int]]:
        injector = bench.disk.faults
        if injector is None:
            return None
        stats = injector.stats
        return {
            "read_errors": stats.read_errors,
            "write_errors": stats.write_errors,
            "torn_reads": stats.torn_reads,
            "latency_events": stats.latency_events,
            "scheduled_fired": stats.scheduled_fired,
        }

    try:
        report = run_algorithm(
            algorithm, ancestors, descendants, sink, tracer=tracer
        )
    except StorageFault as fault:
        return LineupTaskResult(
            report=None,
            fault=fault_to_payload(fault),
            trace=trace_to_jsonl(tracer) if tracer is not None else None,
            buffer=buffer_gauges(),
            fault_stats=fault_stats(),
        )
    # the trace is shipped as JSON lines (span objects hold a tracer
    # reference, which drags the whole workbench into the pickle)
    report.trace = None
    return LineupTaskResult(
        report=report,
        fault=None,
        trace=trace_to_jsonl(tracer) if tracer is not None else None,
        buffer=buffer_gauges(),
        fault_stats=fault_stats(),
    )


# ---------------------------------------------------------------------------
# sharded joins: one level-l slot, cold, on a worker-private bench
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SlotJoinTask:
    """One level-``l`` slot of a sharded scatter-gather join.

    Same contract as :class:`LineupTask` — the worker builds its own
    complete workbench from the shipped slot codes, mirrors the
    parent's batch/flat/sanitize switches, and sends structured fault
    payloads — plus the emitted pairs travel back when ``collect`` is
    set.  ``label`` feeds heap names and the trace span; it must be
    derived from the *slot* alone (never the shard or worker), so the
    slot's report is identical however slots are grouped or scheduled.
    """

    label: str
    algorithm: str
    a_codes: list[int]
    d_codes: list[int]
    tree_height: int
    buffer_pages: int
    page_size: int
    collect: bool
    faults: Optional[FaultConfig]
    retry: Optional[RetryPolicy]
    traced: bool
    algorithm_workers: int = 1
    batch_size: int = batch.DEFAULT_BATCH_SIZE
    flat_index: bool = False
    sanitize: bool = False


def run_slot_join_task(task: SlotJoinTask) -> SlotTaskResult:
    """Run one slot's join cold on a fresh workbench (worker side)."""
    # imported lazily for the same circularity reason as run_lineup_task
    from ..experiments.harness import (
        Workbench,
        make_algorithm,
        materialize,
        run_algorithm,
    )
    from ..join.base import JoinSink

    batch.set_batch_size(task.batch_size)
    flat.set_flat_enabled(task.flat_index)
    sanitize_module.set_sanitize_enabled(task.sanitize)
    bench = Workbench.create(
        task.buffer_pages, task.page_size, faults=task.faults, retry=task.retry
    )
    ancestors = materialize(
        bench.bufmgr, task.a_codes, task.tree_height, f"{task.label}.A"
    )
    descendants = materialize(
        bench.bufmgr, task.d_codes, task.tree_height, f"{task.label}.D"
    )
    algorithm = make_algorithm(task.algorithm, workers=task.algorithm_workers)
    sink = JoinSink("collect" if task.collect else "count")
    tracer = Tracer() if task.traced else None

    def buffer_gauges() -> dict[str, float]:
        return {
            "hits": float(bench.bufmgr.hits),
            "misses": float(bench.bufmgr.misses),
            "resident": float(bench.bufmgr.num_resident),
            "pinned": float(bench.bufmgr.num_pinned),
        }

    def fault_stats() -> Optional[dict[str, int]]:
        injector = bench.disk.faults
        if injector is None:
            return None
        stats = injector.stats
        return {
            "read_errors": stats.read_errors,
            "write_errors": stats.write_errors,
            "torn_reads": stats.torn_reads,
            "latency_events": stats.latency_events,
            "scheduled_fired": stats.scheduled_fired,
        }

    try:
        report = run_algorithm(
            algorithm, ancestors, descendants, sink, tracer=tracer
        )
    except StorageFault as fault:
        return SlotTaskResult(
            report=None,
            pairs=None,
            fault=fault_to_payload(fault),
            trace=trace_to_jsonl(tracer) if tracer is not None else None,
            buffer=buffer_gauges(),
            fault_stats=fault_stats(),
        )
    report.trace = None
    pairs: Optional[list[tuple[int, int]]] = None
    if task.collect:
        pairs = [(int(a_code), int(d_code)) for a_code, d_code in sink.pairs]
    return SlotTaskResult(
        report=report,
        pairs=pairs,
        fault=None,
        trace=trace_to_jsonl(tracer) if tracer is not None else None,
        buffer=buffer_gauges(),
        fault_stats=fault_stats(),
    )
