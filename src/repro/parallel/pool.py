"""Worker pool: fan pure-CPU partition tasks out over processes.

The pool is deliberately small and boring.  Tasks are *pure functions
of picklable payloads* — the parallel subsystem never ships buffer
pages, heap files or fault injectors across process boundaries (see
:mod:`repro.parallel.tasks`), so a task can always be re-run inline
with an identical result.  That purity is what the graceful-degradation
story leans on: if the process pool cannot start (restricted
containers) or dies mid-flight (a worker is OOM-killed), every affected
task is simply executed in the parent, and the join's output and
accounting are unchanged.

Two modes:

* ``"process"`` (default) — a :class:`~concurrent.futures.ProcessPoolExecutor`
  over a ``fork`` context where available (workers inherit the loaded
  module graph; nothing else is shared);
* ``"inline"`` — tasks run eagerly in the parent at submit time.  This
  is the deterministic single-process reference the differential tests
  compare against, and the automatic fallback everywhere else.

``REPRO_PARALLEL_MODE`` overrides the mode for a whole process tree —
handy for forcing ``inline`` in constrained CI sandboxes.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Callable, Optional, Sequence, TypeVar

__all__ = ["WorkerPool", "split_chunks", "PARALLEL_MODE_ENV"]

_TaskT = TypeVar("_TaskT")
_ResultT = TypeVar("_ResultT")

#: environment variable overriding the pool mode ("process" / "inline")
PARALLEL_MODE_ENV = "REPRO_PARALLEL_MODE"

_MODES = ("process", "inline")


def split_chunks(items: Sequence[_TaskT], parts: int) -> list[list[_TaskT]]:
    """Split ``items`` into at most ``parts`` contiguous, near-even runs.

    Deterministic: chunk boundaries depend only on ``len(items)`` and
    ``parts``, never on timing, so a parallel join always decomposes
    the same way.  Empty input yields no chunks.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    total = len(items)
    if total == 0:
        return []
    parts = min(parts, total)
    size, extra = divmod(total, parts)
    chunks: list[list[_TaskT]] = []
    start = 0
    for index in range(parts):
        stop = start + size + (1 if index < extra else 0)
        chunks.append(list(items[start:stop]))
        start = stop
    return chunks


def _immediate(
    fn: Callable[[_TaskT], _ResultT], task: _TaskT
) -> "Future[_ResultT]":
    """Run ``fn(task)`` now and wrap the outcome in a resolved future."""
    future: "Future[_ResultT]" = Future()
    try:
        future.set_result(fn(task))
    except Exception as exc:
        future.set_exception(exc)
    return future


class WorkerPool:
    """A fixed-size pool executing pure, picklable partition tasks.

    ``workers`` is the fan-out width task producers should chunk for;
    ``workers == 1`` always runs inline.  The underlying executor is
    created lazily on first submit, so a parallel-capable operator that
    happens to produce no tasks costs nothing.
    """

    def __init__(self, workers: int, mode: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode is None:
            mode = os.environ.get(PARALLEL_MODE_ENV) or "process"
        if mode not in _MODES:
            raise ValueError(
                f"unknown parallel mode {mode!r} (expected one of {_MODES})"
            )
        self.workers = workers
        self.mode = "inline" if workers == 1 else mode
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        if self.mode != "process" or self._broken:
            return None
        if self._executor is None:
            try:
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:
                    context = multiprocessing.get_context()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            except (OSError, ValueError, PermissionError):
                # restricted environments (no /dev/shm, seccomp, ...):
                # degrade to inline execution rather than failing the join
                self._broken = True
                return None
        return self._executor

    def submit(
        self, fn: Callable[[_TaskT], _ResultT], task: _TaskT
    ) -> "Future[_ResultT]":
        """Schedule ``fn(task)``; falls back to inline on pool failure."""
        executor = self._ensure_executor()
        if executor is None:
            return _immediate(fn, task)
        try:
            return executor.submit(fn, task)
        except (BrokenExecutor, RuntimeError, OSError):
            self._broken = True
            return _immediate(fn, task)

    def resolve(
        self,
        future: "Future[_ResultT]",
        fn: Callable[[_TaskT], _ResultT],
        task: _TaskT,
    ) -> _ResultT:
        """Result of ``future``; re-runs the task inline if the pool died.

        Tasks are pure functions of their payloads, so an inline re-run
        after a worker crash returns exactly what the worker would have.
        """
        try:
            return future.result()
        except BrokenExecutor:
            self._broken = True
            return fn(task)

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
