"""repro — a reproduction of *PBiTree Coding and Efficient Processing of
Containment Joins* (Wang, Jiang, Lu, Yu — ICDE 2003).

The package implements the paper's PBiTree coding scheme, a
Minibase-style paged storage substrate with I/O accounting, and the
complete containment-join framework: the adapted region-code
algorithms (INLJN, MPMGJN, Stack-Tree, Anc_Des_B+) and the new
partitioning algorithms (SHCJ, MHCJ, MHCJ+Rollup, VPJ).

Quickstart::

    from repro import (
        parse_xml, binarize, DiskManager, BufferManager,
        ElementSet, PBiTreeJoinFramework,
    )

    tree = parse_xml(open("doc.xml").read())
    encoding = binarize(tree)
    disk = DiskManager()
    bufmgr = BufferManager(disk, num_pages=64)
    sections = ElementSet.from_tree_tag(bufmgr, tree, "section", encoding.tree_height)
    figures = ElementSet.from_tree_tag(bufmgr, tree, "figure", encoding.tree_height)
    report, pairs = PBiTreeJoinFramework().join(sections, figures)
"""

from .core import pbitree
from .core.binarize import binarize
from .core.encoding import PBiTreeEncoding
from .datatree.builder import random_tree, tree_from_spec
from .datatree.node import DataTree
from .datatree.paths import PathQuery, brute_force_join, select_by_tag
from .datatree.xml_parser import parse_xml
from .datatree.xpath import XPath
from .index.flat import (
    FlatIntervalTree,
    FlatStartIndex,
    flat_enabled,
    flat_scope,
    set_flat_enabled,
)
from .join.ancdes_b import AncDesBPlusJoin
from .join.base import JoinReport, JoinSink
from .join.inljn import IndexNestedLoopJoin
from .join.mhcj import MultiHeightJoin, MultiHeightRollupJoin
from .join.mpmgjn import MPMGJoin
from .join.nested_loop import BlockNestedLoopJoin
from .join.planner import PBiTreeJoinFramework, SetProperties, choose_algorithm
from .join.shcj import SingleHeightJoin
from .join.stacktree import StackTreeAncJoin, StackTreeDescJoin
from .core.update import UpdatableEncoding
from .db import ContainmentDatabase
from .join.optimizer import CostBasedOptimizer
from .join.spatial import RTreeProbeJoin, SynchronizedRTreeJoin
from .join.statistics import SetStatistics, estimate_join_cardinality
from .join.vpj import VerticalPartitionJoin
from .join.xrstack import XRStackJoin
from .obs.metrics import MetricsRegistry
from .obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from .service import (
    AdmissionController,
    BackpressureRejection,
    QueryService,
    QuotaExceededRejection,
    ServiceClient,
    ServiceRejection,
    TenantQuota,
)
from .storage.buffer import BufferManager, BufferPoolExhaustedError
from .storage.disk import DiskManager, PageCorruptionError, PageNotAllocatedError
from .storage.elementset import ElementSet, SortOrder
from .storage.faults import (
    FaultConfig,
    FaultInjector,
    FaultStats,
    PermanentIOError,
    RetryPolicy,
    StorageFault,
    TransientIOError,
)

__version__ = "1.0.0"

__all__ = [
    "pbitree",
    "binarize",
    "PBiTreeEncoding",
    "DataTree",
    "random_tree",
    "tree_from_spec",
    "parse_xml",
    "XPath",
    "PathQuery",
    "select_by_tag",
    "brute_force_join",
    "DiskManager",
    "BufferManager",
    "ElementSet",
    "SortOrder",
    "JoinReport",
    "JoinSink",
    "BlockNestedLoopJoin",
    "IndexNestedLoopJoin",
    "MPMGJoin",
    "StackTreeDescJoin",
    "StackTreeAncJoin",
    "AncDesBPlusJoin",
    "SingleHeightJoin",
    "MultiHeightJoin",
    "MultiHeightRollupJoin",
    "VerticalPartitionJoin",
    "XRStackJoin",
    "PBiTreeJoinFramework",
    "SetProperties",
    "choose_algorithm",
    "FlatIntervalTree",
    "FlatStartIndex",
    "flat_enabled",
    "flat_scope",
    "set_flat_enabled",
    "UpdatableEncoding",
    "ContainmentDatabase",
    "CostBasedOptimizer",
    "RTreeProbeJoin",
    "SynchronizedRTreeJoin",
    "SetStatistics",
    "estimate_join_cardinality",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "QueryService",
    "AdmissionController",
    "TenantQuota",
    "ServiceRejection",
    "BackpressureRejection",
    "QuotaExceededRejection",
    "ServiceClient",
    "BufferPoolExhaustedError",
    "PageCorruptionError",
    "PageNotAllocatedError",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RetryPolicy",
    "StorageFault",
    "TransientIOError",
    "PermanentIOError",
    "__version__",
]
