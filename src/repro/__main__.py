"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``encode FILE.xml`` — parse + binarize, print the code table;
* ``query FILE.xml //a//b`` — evaluate a path query, print matches;
* ``explain FILE.xml //a//b`` — print the cost-based plan ranking;
* ``stats FILE.xml`` — document and coding-space statistics;
* ``save FILE.xml IMAGE`` — encode and persist element sets to a
  disk image;
* ``image-query IMAGE //a//b`` — run a path query against a saved
  image (no XML parsing, pure storage-engine work).
"""

from __future__ import annotations

import argparse
import sys

from .core import pbitree
from .core.binarize import binarize
from .datatree.xml_parser import parse_xml
from .db import ContainmentDatabase

__all__ = [
    "main",
    "cmd_encode",
    "cmd_query",
    "cmd_explain",
    "cmd_stats",
    "cmd_save",
    "cmd_image_query",
]


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read())


def cmd_encode(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    encoding = binarize(tree)
    print(f"# {len(tree)} nodes, PBiTree height H = {encoding.tree_height}")
    print(f"{'node':>6} {'code':>12} {'height':>6} {'level':>6} "
          f"{'start':>12} {'end':>12}  tag")
    limit = args.limit if args.limit > 0 else len(tree)
    for node in list(tree.iter_preorder())[:limit]:
        code = tree.codes[node]
        start, end = pbitree.region_of(code)
        print(
            f"{node:>6} {code:>12} {pbitree.height_of(code):>6} "
            f"{pbitree.level_of(code, encoding.tree_height):>6} "
            f"{start:>12} {end:>12}  {tree.tags[node]}"
        )
    return 0


def _fault_injector(args: argparse.Namespace):
    """Build a FaultInjector from ``--fault-*`` flags, or None."""
    from .storage.faults import FaultConfig, FaultInjector

    if not (args.fault_read_rate or args.fault_write_rate or args.fault_torn_rate):
        return None
    return FaultInjector(
        FaultConfig(
            seed=args.fault_seed,
            read_error_rate=args.fault_read_rate,
            write_error_rate=args.fault_write_rate,
            torn_page_rate=args.fault_torn_rate,
        )
    )


def cmd_query(args: argparse.Namespace) -> int:
    faults = _fault_injector(args)
    db = ContainmentDatabase(
        buffer_pages=args.buffer_pages,
        optimizer="cost" if args.cost_based else "rule",
        faults=faults,
    )
    doc = db.load_tree(_load(args.file), name=args.file)
    result = db.query(doc, args.path)
    for node in result:
        print(f"node {node.id}: <{node.tag}> code={node.code}")
    for index, report in enumerate(result.reports, 1):
        print(
            f"# step {index}: {report.algorithm}, "
            f"{report.result_count} pairs, {report.total_pages} page I/Os",
            file=sys.stderr,
        )
    print(f"# {len(result)} matches", file=sys.stderr)
    if faults is not None:
        io = db.io_stats
        print(
            f"# faults: seed={args.fault_seed} "
            f"injected={faults.stats.total_injected} "
            f"(read={faults.stats.read_errors} write={faults.stats.write_errors} "
            f"torn={faults.stats.torn_reads}), "
            f"retries={io.retries}, giveups={io.giveups}",
            file=sys.stderr,
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    db = ContainmentDatabase(buffer_pages=args.buffer_pages)
    doc = db.load_tree(_load(args.file), name=args.file)
    print(db.explain(doc, args.path))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    encoding = binarize(tree)
    print(f"nodes:            {len(tree)}")
    print(f"document height:  {tree.height()}")
    print(f"max fanout:       {tree.max_fanout()}")
    print(f"PBiTree height H: {encoding.tree_height}")
    print(f"coding space:     [1, {pbitree.max_code(encoding.tree_height)}]")
    print(f"bits per code:    {encoding.bits_per_code}")
    occupancy = len(tree) / pbitree.max_code(encoding.tree_height)
    print(f"occupancy:        {occupancy:.2e} (the rest are virtual nodes)")
    print("top tags:")
    counts = sorted(
        tree.tag_counts().items(), key=lambda item: -item[1]
    )[:args.limit]
    for tag, count in counts:
        print(f"  {tag:<24} {count}")
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from .core.binarize import binarize as _binarize
    from .storage.buffer import BufferManager
    from .storage.disk import DiskManager
    from .storage.elementset import ElementSet
    from .storage.persist import save_image

    tree = _load(args.file)
    encoding = _binarize(tree)
    disk = DiskManager()
    bufmgr = BufferManager(disk, 64)
    wanted = (
        [tag.strip() for tag in args.tags.split(",") if tag.strip()]
        if args.tags
        else sorted(
            tag for tag in tree.tag_counts()
            if not tag.startswith(("@", "#"))
        )
    )
    element_sets = {}
    for tag in wanted:
        element_sets[tag] = ElementSet.from_tree_tag(
            bufmgr, tree, tag, encoding.tree_height, name=tag
        )
    bufmgr.flush_all()
    save_image(disk, args.image, element_sets)
    print(
        f"saved {len(element_sets)} element sets "
        f"({disk.num_allocated} pages) to {args.image}"
    )
    return 0


def cmd_image_query(args: argparse.Namespace) -> int:
    from .datatree.paths import PathQuery
    from .join.pipeline import PathPipeline
    from .storage.persist import load_image

    image = load_image(args.image, buffer_pages=args.buffer_pages)
    query = PathQuery(args.path)
    try:
        steps = [image.element_sets[tag] for tag in query.steps]
    except KeyError as exc:
        print(f"error: element set {exc} not in the image "
              f"(available: {', '.join(sorted(image.element_sets))})",
              file=sys.stderr)
        return 1
    result = PathPipeline(image.bufmgr).execute(steps)
    for code in result.codes:
        print(code)
    print(
        f"# {len(result.codes)} matches, direction={result.direction}, "
        f"{result.total_io} page I/Os",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBiTree containment-join toolkit (ICDE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    enc = sub.add_parser("encode", help="print the PBiTree code table")
    enc.add_argument("file")
    enc.add_argument("--limit", type=int, default=50)
    enc.set_defaults(func=cmd_encode)

    qry = sub.add_parser("query", help="run a //a//b path query")
    qry.add_argument("file")
    qry.add_argument("path")
    qry.add_argument("--buffer-pages", type=int, default=64)
    qry.add_argument("--cost-based", action="store_true")
    qry.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the storage fault injector",
    )
    qry.add_argument(
        "--fault-read-rate", type=float, default=0.0,
        help="probability of a transient error per page read",
    )
    qry.add_argument(
        "--fault-write-rate", type=float, default=0.0,
        help="probability of a transient error per page write",
    )
    qry.add_argument(
        "--fault-torn-rate", type=float, default=0.0,
        help="probability of a torn (checksum-failing) page read",
    )
    qry.set_defaults(func=cmd_query)

    exp = sub.add_parser("explain", help="rank the candidate join plans")
    exp.add_argument("file")
    exp.add_argument("path")
    exp.add_argument("--buffer-pages", type=int, default=64)
    exp.set_defaults(func=cmd_explain)

    sts = sub.add_parser("stats", help="document / coding statistics")
    sts.add_argument("file")
    sts.add_argument("--limit", type=int, default=10)
    sts.set_defaults(func=cmd_stats)

    sav = sub.add_parser("save", help="persist encoded element sets")
    sav.add_argument("file")
    sav.add_argument("image")
    sav.add_argument("--tags", default="", help="comma-separated (default: all)")
    sav.set_defaults(func=cmd_save)

    imq = sub.add_parser("image-query", help="query a saved image")
    imq.add_argument("image")
    imq.add_argument("path")
    imq.add_argument("--buffer-pages", type=int, default=64)
    imq.set_defaults(func=cmd_image_query)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
