"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``encode FILE.xml`` — parse + binarize, print the code table;
* ``query FILE.xml //a//b`` — evaluate a path query, print matches;
* ``explain FILE.xml //a//b`` — print the cost-based plan ranking;
* ``stats FILE.xml`` — document and coding-space statistics;
* ``save FILE.xml IMAGE`` — encode and persist element sets to a
  disk image;
* ``image-query IMAGE //a//b`` — run a path query against a saved
  image (no XML parsing, pure storage-engine work);
* ``shard-build FILE.xml DIR`` — encode and persist element sets as a
  sharded corpus (per-shard disk images + shard map; docs/sharding.md);
* ``bench`` — run an algorithm line-up over a synthetic Table-2
  dataset and (optionally) emit a ``BENCH_*.json`` summary;
  ``--shards N`` runs it scatter-gather over a level-``l`` sharded
  layout instead;
* ``serve`` — run the multi-tenant query server over a loaded corpus
  (see docs/service.md);
* ``remote-query`` — send one path query to a running server.

Global observability flags (before the command): ``--trace`` prints the
span-tree cost breakdown, ``--trace-out FILE`` dumps it as JSON lines,
``--metrics-out FILE`` writes the metrics registry, e.g.
``python -m repro --trace bench --algorithms VPJ``.
"""

from __future__ import annotations

import argparse
import sys

from .core import pbitree
from .core.binarize import binarize
from .datatree.xml_parser import parse_xml
from .db import ContainmentDatabase

__all__ = [
    "main",
    "cmd_encode",
    "cmd_query",
    "cmd_explain",
    "cmd_stats",
    "cmd_save",
    "cmd_image_query",
    "cmd_shard_build",
    "cmd_bench",
    "cmd_update_bench",
    "cmd_serve",
    "cmd_remote_query",
]


def _make_tracer(args: argparse.Namespace):
    """A live Tracer when any tracing flag is set, else None."""
    if args.trace or args.trace_out:
        from .obs.tracer import Tracer

        return Tracer()
    return None


def _emit_observability(args: argparse.Namespace, tracer, metrics) -> None:
    """Print/write whatever the global observability flags asked for."""
    if tracer is not None and args.trace:
        from .obs.export import format_span_tree

        print(file=sys.stderr)
        print(format_span_tree(tracer), file=sys.stderr)
    if tracer is not None and args.trace_out:
        from .obs.export import write_trace_jsonl

        write_trace_jsonl(tracer, args.trace_out)
        print(f"# wrote trace to {args.trace_out}", file=sys.stderr)
    if metrics is not None and args.metrics_out:
        import json

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(metrics.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote metrics to {args.metrics_out}", file=sys.stderr)


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read())


def cmd_encode(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    encoding = binarize(tree)
    print(f"# {len(tree)} nodes, PBiTree height H = {encoding.tree_height}")
    print(f"{'node':>6} {'code':>12} {'height':>6} {'level':>6} "
          f"{'start':>12} {'end':>12}  tag")
    limit = args.limit if args.limit > 0 else len(tree)
    for node in list(tree.iter_preorder())[:limit]:
        code = tree.codes[node]
        start, end = pbitree.region_of(code)
        print(
            f"{node:>6} {code:>12} {pbitree.height_of(code):>6} "
            f"{pbitree.level_of(code, encoding.tree_height):>6} "
            f"{start:>12} {end:>12}  {tree.tags[node]}"
        )
    return 0


def _fault_injector(args: argparse.Namespace):
    """Build a FaultInjector from ``--fault-*`` flags, or None."""
    from .storage.faults import FaultConfig, FaultInjector

    if not (args.fault_read_rate or args.fault_write_rate or args.fault_torn_rate):
        return None
    return FaultInjector(
        FaultConfig(
            seed=args.fault_seed,
            read_error_rate=args.fault_read_rate,
            write_error_rate=args.fault_write_rate,
            torn_page_rate=args.fault_torn_rate,
        )
    )


def cmd_query(args: argparse.Namespace) -> int:
    from .obs.metrics import MetricsRegistry

    faults = _fault_injector(args)
    tracer = _make_tracer(args)
    metrics = MetricsRegistry() if args.metrics_out else None
    db = ContainmentDatabase(
        buffer_pages=args.buffer_pages,
        optimizer="cost" if args.cost_based else "rule",
        faults=faults,
        tracer=tracer,
        metrics=metrics,
    )
    doc = db.load_tree(_load(args.file), name=args.file)
    result = db.query(doc, args.path)
    for node in result:
        print(f"node {node.id}: <{node.tag}> code={node.code}")
    for index, report in enumerate(result.reports, 1):
        print(
            f"# step {index}: {report.algorithm}, "
            f"{report.result_count} pairs, {report.total_pages} page I/Os",
            file=sys.stderr,
        )
    print(f"# {len(result)} matches", file=sys.stderr)
    if faults is not None:
        io = db.io_stats
        print(
            f"# faults: seed={args.fault_seed} "
            f"injected={faults.stats.total_injected} "
            f"(read={faults.stats.read_errors} write={faults.stats.write_errors} "
            f"torn={faults.stats.torn_reads}), "
            f"retries={io.retries}, giveups={io.giveups}",
            file=sys.stderr,
        )
    _emit_observability(args, tracer, metrics)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    db = ContainmentDatabase(buffer_pages=args.buffer_pages)
    doc = db.load_tree(_load(args.file), name=args.file)
    print(db.explain(doc, args.path))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    encoding = binarize(tree)
    print(f"nodes:            {len(tree)}")
    print(f"document height:  {tree.height()}")
    print(f"max fanout:       {tree.max_fanout()}")
    print(f"PBiTree height H: {encoding.tree_height}")
    print(f"coding space:     [1, {pbitree.max_code(encoding.tree_height)}]")
    print(f"bits per code:    {encoding.bits_per_code}")
    occupancy = len(tree) / pbitree.max_code(encoding.tree_height)
    print(f"occupancy:        {occupancy:.2e} (the rest are virtual nodes)")
    print("top tags:")
    counts = sorted(
        tree.tag_counts().items(), key=lambda item: -item[1]
    )[:args.limit]
    for tag, count in counts:
        print(f"  {tag:<24} {count}")
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from .core.binarize import binarize as _binarize
    from .storage.buffer import BufferManager
    from .storage.disk import DiskManager
    from .storage.elementset import ElementSet
    from .storage.persist import save_image

    tree = _load(args.file)
    encoding = _binarize(tree)
    disk = DiskManager()
    bufmgr = BufferManager(disk, 64)
    wanted = (
        [tag.strip() for tag in args.tags.split(",") if tag.strip()]
        if args.tags
        else sorted(
            tag for tag in tree.tag_counts()
            if not tag.startswith(("@", "#"))
        )
    )
    element_sets = {}
    for tag in wanted:
        element_sets[tag] = ElementSet.from_tree_tag(
            bufmgr, tree, tag, encoding.tree_height, name=tag
        )
    bufmgr.flush_all()
    save_image(disk, args.image, element_sets)
    print(
        f"saved {len(element_sets)} element sets "
        f"({disk.num_allocated} pages) to {args.image}"
    )
    return 0


def cmd_image_query(args: argparse.Namespace) -> int:
    from .datatree.paths import PathQuery
    from .join.pipeline import PathPipeline
    from .storage.persist import load_image

    image = load_image(args.image, buffer_pages=args.buffer_pages)
    query = PathQuery(args.path)
    try:
        steps = [image.element_sets[tag] for tag in query.steps]
    except KeyError as exc:
        print(f"error: element set {exc} not in the image "
              f"(available: {', '.join(sorted(image.element_sets))})",
              file=sys.stderr)
        return 1
    result = PathPipeline(image.bufmgr).execute(steps)
    for code in result.codes:
        print(code)
    print(
        f"# {len(result.codes)} matches, direction={result.direction}, "
        f"{result.total_io} page I/Os",
        file=sys.stderr,
    )
    return 0


def cmd_shard_build(args: argparse.Namespace) -> int:
    from .core.binarize import binarize as _binarize
    from .shard import ShardedCorpus

    tree = _load(args.file)
    encoding = _binarize(tree)
    wanted = (
        [tag.strip() for tag in args.tags.split(",") if tag.strip()]
        if args.tags
        else sorted(
            tag for tag in tree.tag_counts()
            if not tag.startswith(("@", "#"))
        )
    )
    corpus = ShardedCorpus(
        encoding.tree_height,
        args.shards,
        level=args.level,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
    )
    for tag in wanted:
        corpus.add_set(
            tag, [tree.codes[node] for node in tree.iter_by_tag(tag)]
        )
    corpus.save(args.directory)
    print(
        f"sharded {len(wanted)} element sets over {corpus.num_shards} "
        f"shards ({corpus.num_slots} level-{corpus.map.level} slots, "
        f"H={corpus.tree_height}) into {args.directory}"
    )
    for index, store in enumerate(corpus.shards):
        print(
            f"  shard {index}: {store.disk.num_allocated} pages, "
            f"{len(corpus.map.slots_of_shard(index))} slots"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .experiments.harness import (
        REGION_ALGORITHMS,
        make_lineup,
        run_lineup,
    )
    from .obs.export import bench_summary, write_bench_summary
    from .obs.metrics import MetricsRegistry
    from .workloads.synthetic import generate, spec_by_name

    try:
        spec = spec_by_name(args.dataset, large=args.large, small=args.small)
    except KeyError:
        print(f"error: unknown dataset {args.dataset!r}", file=sys.stderr)
        return 1
    data = generate(spec, seed=args.seed)
    if args.algorithms:
        algorithms = [
            name.strip() for name in args.algorithms.split(",") if name.strip()
        ]
    else:
        algorithms = make_lineup(single_height=not spec.multi_height)

    tracer = _make_tracer(args)
    metrics = MetricsRegistry()
    lineup = run_lineup(
        args.dataset,
        data.a_codes,
        data.d_codes,
        data.tree_height,
        buffer_pages=args.buffer_pages,
        algorithms=algorithms,
        tracer=tracer,
        metrics=metrics,
        workers=args.workers if args.parallel_scope == "lineup" else 1,
        algorithm_workers=(
            args.workers if args.parallel_scope == "algorithm" else 1
        ),
        batch_size=args.batch_size,
        flat_index=args.flat_index,
        sanitize=args.sanitize,
        shards=args.shards,
        shard_level=args.shard_level,
    )

    have_baseline = any(
        result.name in REGION_ALGORITHMS for result in lineup.results
    )
    print(
        f"{'algorithm':<12} {'io':>8} {'reads':>8} {'writes':>8} "
        f"{'rand':>8} {'wall_ms':>9}" + ("  speedup" if have_baseline else "")
    )
    for result in lineup.results:
        total = result.report.total_io
        line = (
            f"{result.name:<12} {total.total:>8} {total.reads:>8} "
            f"{total.writes:>8} {total.random_reads:>8} "
            f"{result.report.wall_seconds * 1000.0:>9.2f}"
        )
        if have_baseline:
            line += f"  {lineup.speedup(result.name):.2f}x"
        print(line)
    print(
        f"# dataset {args.dataset}: |A|={len(data.a_codes)} "
        f"|D|={len(data.d_codes)} H={data.tree_height} "
        f"results={lineup.result_count}",
        file=sys.stderr,
    )

    _emit_observability(args, tracer, metrics)
    if args.bench_out:
        summary = bench_summary(
            f"bench-{args.dataset}",
            [
                (result.name, args.dataset, result.report)
                for result in lineup.results
            ],
            metrics=metrics.as_dict(),
        )
        write_bench_summary(summary, args.bench_out)
        print(f"# wrote {args.bench_out}", file=sys.stderr)
    return 0


def cmd_update_bench(args: argparse.Namespace) -> int:
    from .core.codec import available_codecs, get_codec
    from .join.base import JoinReport
    from .obs.export import bench_summary, write_bench_summary
    from .obs.metrics import MetricsRegistry
    from .workloads.updates import UpdateWorkloadSpec, run_update_workload

    if args.codec == "all":
        names = available_codecs()
    else:
        names = [n.strip() for n in args.codec.split(",") if n.strip()]
    try:
        codecs = [get_codec(name) for name in names]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1

    spec = UpdateWorkloadSpec(
        nodes=args.nodes,
        updates=args.updates,
        insert_ratio=args.insert_ratio,
        hotspot=args.hotspot,
        seed=args.seed,
        buffer_pages=args.buffer_pages,
    )
    metrics = MetricsRegistry()
    results = [
        run_update_workload(spec, codec, metrics=metrics) for codec in codecs
    ]

    print(
        f"{'codec':<18} {'inserts':>8} {'deletes':>8} {'local_rl':>9} "
        f"{'relabelled':>11} {'growths':>8} {'rl/insert':>10} "
        f"{'skipped':>8} {'log_rec':>8} {'wall_ms':>9}"
    )
    for result in results:
        stats = result.stats
        print(
            f"{result.codec:<18} {stats['inserts']:>8} {stats['deletes']:>8} "
            f"{stats['local_relabels']:>9} {stats['relabelled_nodes']:>11} "
            f"{stats['tree_growths']:>8} {result.relabelled_per_insert:>10.3f} "
            f"{result.skipped_inserts:>8} {result.log_records_applied:>8} "
            f"{result.wall_seconds * 1000.0:>9.2f}"
        )
    print(
        f"# update storm: {spec.nodes} initial nodes, {spec.updates} ops, "
        f"insert ratio {spec.insert_ratio}, hotspot {spec.hotspot}, "
        f"seed {spec.seed}",
        file=sys.stderr,
    )

    _emit_observability(args, None, metrics)
    if args.bench_out:
        bench_metrics: dict[str, object] = {}
        for result in results:
            bench_metrics.update(result.as_metrics())
        summary = bench_summary(
            "update-bench",
            [
                (
                    f"updates:{result.codec}",
                    "update-storm",
                    JoinReport(
                        algorithm=f"updates:{result.codec}",
                        result_count=result.log_records_applied,
                        join_io=result.io,
                        wall_seconds=result.wall_seconds,
                    ),
                )
                for result in results
            ],
            metrics=bench_metrics,
        )
        write_bench_summary(summary, args.bench_out)
        print(f"# wrote {args.bench_out}", file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .datatree.builder import random_tree
    from .obs.metrics import MetricsRegistry
    from .service import ContainmentServer, QueryService, TenantQuota

    metrics = MetricsRegistry()
    db = ContainmentDatabase(
        buffer_pages=args.buffer_pages,
        metrics=metrics,
        shards=args.shards,
        shard_level=args.shard_level,
    )
    if args.file:
        db.load_tree(_load(args.file), name=args.name)
    else:
        db.load_tree(
            random_tree(args.random, max_fanout=5, seed=args.seed),
            name=args.name,
        )
    quota = None
    if args.tenant_max_in_flight:
        quota = TenantQuota(max_in_flight=args.tenant_max_in_flight)
    service = QueryService(
        db,
        max_in_flight=args.max_in_flight,
        session_pages=args.session_pages,
        default_quota=quota,
        plan_cache_size=args.plan_cache,
    )
    server = ContainmentServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(
            f"# serving {args.name!r} on {server.host}:{server.port} "
            f"(max_in_flight={args.max_in_flight}, "
            f"session_pages={service.session_pages})",
            file=sys.stderr,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("# server stopped", file=sys.stderr)
    return 0


def cmd_remote_query(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        # query_all follows continuation cursors, so result sets past
        # the wire cap still print in full
        response = client.query_all(
            args.document, args.path, tenant=args.tenant
        )
    status = response.get("status")
    if status == "ok":
        for code in response.get("codes", []):
            print(code)
        print(
            f"# {response.get('count')} matches, "
            f"direction={response.get('direction')}, "
            f"cache_hit={response.get('cache_hit')}, "
            f"planning_io={response.get('planning_io')}",
            file=sys.stderr,
        )
        return 0
    if status == "rejected":
        print(
            f"# rejected ({response.get('code')}): {response.get('error')} "
            f"— retry after {response.get('retry_after')}s",
            file=sys.stderr,
        )
        return 2
    print(f"# error: {response.get('error')}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBiTree containment-join toolkit (ICDE 2003 reproduction)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="collect a span tree and print the per-phase cost table",
    )
    parser.add_argument(
        "--trace-out", default="",
        help="write the span tree as JSON lines to this file",
    )
    parser.add_argument(
        "--metrics-out", default="",
        help="write the metrics registry as JSON to this file",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    enc = sub.add_parser("encode", help="print the PBiTree code table")
    enc.add_argument("file")
    enc.add_argument("--limit", type=int, default=50)
    enc.set_defaults(func=cmd_encode)

    qry = sub.add_parser("query", help="run a //a//b path query")
    qry.add_argument("file")
    qry.add_argument("path")
    qry.add_argument("--buffer-pages", type=int, default=64)
    qry.add_argument("--cost-based", action="store_true")
    qry.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the storage fault injector",
    )
    qry.add_argument(
        "--fault-read-rate", type=float, default=0.0,
        help="probability of a transient error per page read",
    )
    qry.add_argument(
        "--fault-write-rate", type=float, default=0.0,
        help="probability of a transient error per page write",
    )
    qry.add_argument(
        "--fault-torn-rate", type=float, default=0.0,
        help="probability of a torn (checksum-failing) page read",
    )
    qry.set_defaults(func=cmd_query)

    exp = sub.add_parser("explain", help="rank the candidate join plans")
    exp.add_argument("file")
    exp.add_argument("path")
    exp.add_argument("--buffer-pages", type=int, default=64)
    exp.set_defaults(func=cmd_explain)

    sts = sub.add_parser("stats", help="document / coding statistics")
    sts.add_argument("file")
    sts.add_argument("--limit", type=int, default=10)
    sts.set_defaults(func=cmd_stats)

    sav = sub.add_parser("save", help="persist encoded element sets")
    sav.add_argument("file")
    sav.add_argument("image")
    sav.add_argument("--tags", default="", help="comma-separated (default: all)")
    sav.set_defaults(func=cmd_save)

    imq = sub.add_parser("image-query", help="query a saved image")
    imq.add_argument("image")
    imq.add_argument("path")
    imq.add_argument("--buffer-pages", type=int, default=64)
    imq.set_defaults(func=cmd_image_query)

    shb = sub.add_parser(
        "shard-build",
        help="persist element sets as a sharded corpus directory",
    )
    shb.add_argument("file")
    shb.add_argument("directory")
    shb.add_argument(
        "--shards", type=int, default=2, help="number of shards (>= 1)"
    )
    shb.add_argument(
        "--level", type=int, default=None,
        help="VPJ partitioning level l (default: auto from height/shards)",
    )
    shb.add_argument("--page-size", type=int, default=1024)
    shb.add_argument("--buffer-pages", type=int, default=64)
    shb.add_argument(
        "--tags", default="", help="comma-separated (default: all)"
    )
    shb.set_defaults(func=cmd_shard_build)

    bch = sub.add_parser(
        "bench", help="run an algorithm line-up over a synthetic dataset"
    )
    bch.add_argument(
        "--dataset", default="MSSL",
        help="Table-2 dataset shorthand (e.g. SLSL, SSSL, MSSL)",
    )
    bch.add_argument(
        "--large", type=int, default=5_000,
        help="element count of a 'large' set (paper: 50000)",
    )
    bch.add_argument(
        "--small", type=int, default=500,
        help="element count of a 'small' set",
    )
    bch.add_argument("--buffer-pages", type=int, default=50)
    bch.add_argument("--seed", type=int, default=0)
    bch.add_argument(
        "--algorithms", default="",
        help="comma-separated algorithm names (default: the Figure-6 line-up)",
    )
    bch.add_argument(
        "--bench-out", default="",
        help="write a schema-checked BENCH_*.json summary to this file",
    )
    bch.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel execution (default 1 = serial)",
    )
    bch.add_argument(
        "--parallel-scope", choices=("lineup", "algorithm"), default="lineup",
        help="what --workers fans out: whole per-algorithm line-up runs "
        "(lineup) or each partitioned algorithm's internal partition "
        "tasks (algorithm); see docs/parallel.md",
    )
    bch.add_argument(
        "--batch-size", type=int, default=None,
        help="execution batch size for the vectorized hot path "
        "(0 = scalar oracle; default: REPRO_BATCH_SIZE or 1024)",
    )
    bch.add_argument(
        "--flat-index", action="store_true", default=None,
        help="probe flat-array static indexes instead of the pointer "
        "oracle (default: REPRO_FLAT_INDEX or off)",
    )
    bch.add_argument(
        "--sanitize", action="store_true", default=None,
        help="run under the view-lifetime sanitizer: borrowed page "
        "views are tracked and use-after-unpin raises "
        "(default: REPRO_SANITIZE or off)",
    )
    bch.add_argument(
        "--shards", type=int, default=0,
        help="run the line-up scatter-gather over a level-l sharded "
        "layout (0 = unsharded; merged reports are shard-count-"
        "invariant, see docs/sharding.md)",
    )
    bch.add_argument(
        "--shard-level", type=int, default=None,
        help="VPJ partitioning level l for --shards (default: auto)",
    )
    bch.set_defaults(func=cmd_bench)

    upd = sub.add_parser(
        "update-bench",
        help="relabel cost per insert across containment codecs",
    )
    upd.add_argument(
        "--updates", type=int, default=1_000,
        help="update operations in the storm",
    )
    upd.add_argument(
        "--nodes", type=int, default=400,
        help="initial document size (nodes)",
    )
    upd.add_argument(
        "--codec", default="all",
        help="comma-separated codec names, or 'all' (default)",
    )
    upd.add_argument(
        "--insert-ratio", type=float, default=0.7,
        help="fraction of operations that insert (rest delete)",
    )
    upd.add_argument(
        "--hotspot", type=float, default=0.5,
        help="fraction of inserts aimed at the rotating hot parent",
    )
    upd.add_argument("--buffer-pages", type=int, default=64)
    upd.add_argument("--seed", type=int, default=0)
    upd.add_argument(
        "--bench-out", default="",
        help="write a schema-checked BENCH_updates.json to this file",
    )
    upd.set_defaults(func=cmd_update_bench)

    srv = sub.add_parser(
        "serve", help="run the multi-tenant query server over a corpus"
    )
    srv.add_argument(
        "--file", default="", help="XML corpus file (default: synthetic)"
    )
    srv.add_argument(
        "--random", type=int, default=2_000,
        help="synthetic corpus size in nodes when no --file is given",
    )
    srv.add_argument("--seed", type=int, default=23)
    srv.add_argument("--name", default="corpus", help="document name")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7723)
    srv.add_argument("--buffer-pages", type=int, default=64)
    srv.add_argument(
        "--max-in-flight", type=int, default=4,
        help="global concurrent-join ceiling (bounds frame memory)",
    )
    srv.add_argument(
        "--session-pages", type=int, default=None,
        help="buffer pages per session pool (default: --buffer-pages)",
    )
    srv.add_argument(
        "--tenant-max-in-flight", type=int, default=0,
        help="per-tenant concurrency quota (0 = unlimited)",
    )
    srv.add_argument(
        "--plan-cache", type=int, default=128,
        help="plan cache capacity (0 disables)",
    )
    srv.add_argument(
        "--shards", type=int, default=0,
        help="serve queries scatter-gather over a sharded layout "
        "(0 = session pipelines)",
    )
    srv.add_argument(
        "--shard-level", type=int, default=None,
        help="VPJ partitioning level l for --shards (default: auto)",
    )
    srv.set_defaults(func=cmd_serve)

    rmq = sub.add_parser(
        "remote-query", help="send one path query to a running server"
    )
    rmq.add_argument("document")
    rmq.add_argument("path")
    rmq.add_argument("--host", default="127.0.0.1")
    rmq.add_argument("--port", type=int, default=7723)
    rmq.add_argument("--tenant", default="default")
    rmq.set_defaults(func=cmd_remote_query)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
