"""BinarizeTree (Algorithm 1): embed a data tree into a PBiTree.

The binarization places all children of a node contiguously ``k`` levels
below it, where ``k`` is the smallest integer with ``2**k >= n_children``
(and at least 1 — a child must sit strictly below its parent; the
paper's pseudo-code writes ``ceil(log2 n)`` which would be 0 for an only
child, but its prose makes clear the child level must be *below* the
parent's).  Child ``i`` of a node with top-down code ``(l, alpha)``
receives top-down code ``(l + k, 2**k * alpha + i)``; codes follow from
Lemma 2 once the total tree height ``H`` is known.

The implementation is iterative (two passes), so arbitrarily deep data
trees do not hit Python's recursion limit:

1. a pass assigning PBiTree *levels* and finding the deepest level,
   which fixes ``H``;
2. a pass converting each node's ``(level, alpha)`` to its code via
   :func:`repro.core.pbitree.g_code`.
"""

from __future__ import annotations

from ..datatree.node import DataTree
from .encoding import PBiTreeEncoding
from .pbitree import g_code

__all__ = ["binarize", "levels_for_tree", "placement_k"]


def placement_k(num_children: int) -> int:
    """Levels to descend when placing ``num_children`` children.

    The smallest ``k >= 1`` with ``2**k >= num_children``.
    """
    if num_children < 1:
        raise ValueError("placement_k needs at least one child")
    return max(1, (num_children - 1).bit_length())


def levels_for_tree(tree: DataTree) -> tuple[list[int], list[int], int]:
    """First pass of binarization.

    Returns ``(levels, alphas, tree_height)`` where ``levels[i]`` /
    ``alphas[i]`` form the top-down code of node ``i`` and
    ``tree_height`` is the height ``H`` of the enclosing PBiTree
    (deepest level + 1).
    """
    if not len(tree):
        raise ValueError("cannot binarize an empty tree")
    levels = [0] * len(tree)
    alphas = [0] * len(tree)
    deepest = 0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        kids = tree.children[node]
        if not kids:
            continue
        k = placement_k(len(kids))
        child_level = levels[node] + k
        base_alpha = alphas[node] << k
        if child_level > deepest:
            deepest = child_level
        for i, child in enumerate(kids):
            levels[child] = child_level
            alphas[child] = base_alpha + i
            stack.append(child)
    return levels, alphas, deepest + 1


def binarize(
    tree: DataTree,
    min_height: int = 1,
    validate: bool = False,
) -> PBiTreeEncoding:
    """Assign a PBiTree code to every node of ``tree``.

    Writes the codes into ``tree.codes`` and returns a
    :class:`PBiTreeEncoding` describing the embedding.  ``min_height``
    can force a taller PBiTree than strictly necessary (the paper's
    "durable" coding-space headroom for updates); ``validate`` runs an
    O(n) structural check that the embedding function is injective and
    ancestor-preserving — useful in tests, off by default.
    """
    levels, alphas, needed_height = levels_for_tree(tree)
    tree_height = max(needed_height, min_height)
    codes = tree.codes
    for node in range(len(tree)):
        codes[node] = g_code(alphas[node], levels[node], tree_height)
    encoding = PBiTreeEncoding(tree_height=tree_height, tree=tree)
    if validate:
        encoding.validate()
    return encoding
