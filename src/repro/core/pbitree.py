"""PBiTree code algebra (Section 2 of the paper).

A PBiTree is a *perfect* binary tree whose nodes are tagged with their
in-order traversal number (1-based).  For a PBiTree of height ``H`` the
coding space is ``[1, 2**H - 1]``; leaves have height 0 and the root has
height ``H - 1``.  The *level* of a node counts from the root downwards,
so ``level = H - height - 1``.

All functions in this module are pure integer arithmetic on codes; no
tree object is ever materialised.  This is the property the paper
exploits: the ancestor of a node at any height, its region code, and its
prefix code are all computable from the code alone with shifts and adds.

Terminology used throughout this package:

``code``
    The in-order number of a node in the PBiTree (``int >= 1``).
``height``
    Distance to the leaf level; encoded in the code itself as the
    position of the rightmost set bit (Property 2).
``level``
    Distance from the root; requires knowing the tree height ``H``.
``H``
    Height of the PBiTree, i.e. the number of levels.  A PBiTree of
    height ``H`` has levels ``0 .. H-1``.

Three interchangeable-looking ``int`` representations circulate in this
package — in-order codes, region ``(Start, End)`` boundaries (Lemma 3)
and prefix codes (Lemma 4) — and confusing them is a silent
wrong-answer bug.  They are therefore *distinct static types*
(:data:`PBiCode`, :data:`RegionCode`, :data:`PrefixCode`, plus
:data:`Height`), erased at runtime (``NewType``) so the code algebra
stays pure integer arithmetic.  Only this module (and :mod:`.encoding`)
may mint them; everything outside ``core/`` converts between domains by
calling the Lemma 3/4 helpers below — enforced by the ``code-domain``
checker in :mod:`repro.analysis`.  A few hot one-line helpers return
the raw arithmetic under a ``type: ignore`` minting comment instead of
calling the ``NewType`` constructor: the constructor is a real function
call at runtime and would double their cost.
"""

from __future__ import annotations

from typing import NamedTuple, NewType

#: In-order number of a node in the PBiTree (Section 2.3).  The primary
#: code domain: every element set stores these, and every join algorithm
#: keys on them.
PBiCode = NewType("PBiCode", int)

#: One boundary of a region code — an in-order *leaf* number (Lemma 3).
#: ``Start``/``End`` live in a different coordinate system than
#: :data:`PBiCode` (they are leaf ordinals, not node codes); mixing the
#: two is the silent wrong-answer bug the type distinction prevents.
RegionCode = NewType("RegionCode", int)

#: Prefix code (Lemma 4): the code shifted right by its height, spelling
#: the root-to-node path.  Never comparable with :data:`PBiCode` or
#: :data:`RegionCode`.
PrefixCode = NewType("PrefixCode", int)

#: Height of a node above the leaf level (Property 2).  Distinct from a
#: *level* (distance from the root) and from the tree height ``H``;
#: plain ``int`` is accepted wherever a height is consumed, but values
#: produced by :func:`height_of` carry the tag.
Height = NewType("Height", int)

__all__ = [
    "PBiCode",
    "RegionCode",
    "PrefixCode",
    "Height",
    "Region",
    "TopDownCode",
    "height_of",
    "level_of",
    "f_ancestor",
    "g_code",
    "alpha_of",
    "top_down_of",
    "is_ancestor",
    "is_ancestor_or_self",
    "region_of",
    "start_of",
    "end_of",
    "prefix_of",
    "code_from_region_start",
    "lowest_common_ancestor",
    "coding_space_slice",
    "doc_order_key",
    "parent_of",
    "left_child_of",
    "right_child_of",
    "root_code",
    "max_code",
    "grown_code",
    "subtree_codes_at_height",
    "validate_code",
]


class Region(NamedTuple):
    """A ``(start, end)`` region code (Lemma 3).

    ``start`` and ``end`` are the in-order numbers of the leftmost and
    rightmost leaves of the node's subtree; containment of regions is
    equivalent to the ancestor-descendant relationship.
    """

    start: RegionCode
    end: RegionCode

    def contains(self, other: "Region") -> bool:
        """True if this region contains ``other`` and they differ.

        Unlike Zhang-style region codes (where all Starts are distinct
        and strict inequalities suffice), PBiTree regions share
        boundaries with the leaves of their own subtree: the region of
        a node *equals* its leftmost leaf's start and rightmost leaf's
        end.  Containment must therefore be inclusive; equality of
        regions implies equality of nodes, so excluding it yields the
        proper-ancestor relation (Lemma 3).
        """
        return (
            self.start <= other.start
            and other.end <= self.end
            and self != other
        )

    def contains_point(self, point: RegionCode) -> bool:
        """True if ``point`` lies within this region (inclusive)."""
        return self.start <= point <= self.end


class TopDownCode(NamedTuple):
    """A ``(level, alpha)`` top-down code (Lemma 2).

    ``alpha`` is the zero-based position of the node among the ``2**level``
    nodes of its level, counted left to right.
    """

    level: int
    alpha: int


def validate_code(code: int, tree_height: int | None = None) -> None:
    """Raise ``ValueError`` if ``code`` is not a valid PBiTree code.

    When ``tree_height`` is given, additionally checks that the code fits
    in the coding space ``[1, 2**tree_height - 1]``.
    """
    if code < 1:
        raise ValueError(f"PBiTree codes are positive integers, got {code}")
    if tree_height is not None and code > (1 << tree_height) - 1:
        raise ValueError(
            f"code {code} outside coding space [1, {(1 << tree_height) - 1}] "
            f"of a PBiTree of height {tree_height}"
        )


def height_of(code: PBiCode) -> Height:
    """Height of the node with this code (Property 2).

    The height equals the position of the rightmost '1' bit in the binary
    representation of the code (0-based).  E.g. ``18 = 0b10010`` has its
    rightmost set bit in position 1, so height 1.
    """
    return (code & -code).bit_length() - 1  # type: ignore[return-value]  # mint


def level_of(code: PBiCode, tree_height: int) -> int:
    """Level of the node (root is level 0) in a PBiTree of height ``tree_height``."""
    return tree_height - height_of(code) - 1


def f_ancestor(code: PBiCode, height: int) -> PBiCode:
    """The F function (Property 1): code of the ancestor at ``height``.

    ``F(n, h) = 2**(h+1) * floor(n / 2**(h+1)) + 2**h``, implemented with
    shifts.  For ``height == height_of(code)`` this returns ``code``
    itself (a node is its own "ancestor at its own height").
    """
    shift = height + 1
    return ((code >> shift) << shift) | (1 << height)  # type: ignore[return-value]  # mint


def g_code(alpha: int, level: int, tree_height: int) -> PBiCode:
    """The G function (Lemma 2): PBiTree code from a top-down code.

    ``G(alpha, l) = (1 + 2*alpha) * 2**(H - l - 1)``.
    """
    return PBiCode(((alpha << 1) | 1) << (tree_height - level - 1))


def alpha_of(code: PBiCode) -> int:
    """Zero-based left-to-right position of the node within its level.

    Inverse of :func:`g_code` in the ``alpha`` coordinate:
    ``alpha = (code >> height) >> 1`` since ``code = (2*alpha + 1) << height``.
    """
    return code >> (height_of(code) + 1)


def top_down_of(code: PBiCode, tree_height: int) -> TopDownCode:
    """Top-down ``(level, alpha)`` code of a node (inverse of Lemma 2)."""
    height = height_of(code)
    return TopDownCode(tree_height - height - 1, code >> (height + 1))


def is_ancestor(anc: PBiCode, desc: PBiCode) -> bool:
    """True if ``anc`` is a *proper* ancestor of ``desc`` (Lemma 1).

    ``anc`` is an ancestor of ``desc`` iff ``anc == F(desc, height(anc))``
    and the two nodes differ.
    """
    height = height_of(anc)
    if height <= height_of(desc):
        return False
    shift = height + 1
    return ((desc >> shift) << shift) | (1 << height) == anc


def is_ancestor_or_self(anc: PBiCode, desc: PBiCode) -> bool:
    """True if ``anc`` is ``desc`` or one of its ancestors."""
    return anc == desc or is_ancestor(anc, desc)


def start_of(code: PBiCode) -> RegionCode:
    """The ``Start`` component of the region code (Lemma 3)."""
    return code - ((1 << height_of(code)) - 1)  # type: ignore[return-value]  # mint


def end_of(code: PBiCode) -> RegionCode:
    """The ``End`` component of the region code (Lemma 3)."""
    return code + ((1 << height_of(code)) - 1)  # type: ignore[return-value]  # mint


def region_of(code: PBiCode) -> Region:
    """Region code ``(code - (2**h - 1), code + (2**h - 1))`` (Lemma 3).

    The region spans the in-order numbers of the node's whole subtree, so
    region containment coincides with the ancestor-descendant relation.
    """
    half = (1 << height_of(code)) - 1
    return Region(code - half, code + half)  # type: ignore[arg-type]  # mint


def code_from_region_start(start: RegionCode, height: int) -> PBiCode:
    """Recover a PBiTree code from its region ``start`` and node height.

    Inverse of :func:`start_of`; used when adapting region-based
    algorithms back to PBiTree codes.
    """
    return PBiCode(start + ((1 << height) - 1))


def prefix_of(code: PBiCode) -> PrefixCode:
    """Prefix code (Lemma 4): ``code >> height``.

    Every prefix code ends in a '1' bit (the node's own marker); the
    bits *above* it — ``prefix_of(code) >> 1`` — spell the root-to-node
    path (0 = left turn, 1 = right).  ``a`` is an ancestor-or-self of
    ``d`` iff ``a``'s path is a bit-prefix of ``d``'s::

        height_of(a) >= height_of(d) and
        prefix_of(d) >> (height_of(a) - height_of(d) + 1) == prefix_of(a) >> 1
    """
    return code >> height_of(code)  # type: ignore[return-value]  # mint


def lowest_common_ancestor(x: PBiCode, y: PBiCode) -> PBiCode:
    """Code of the lowest node dominating both ``x`` and ``y``.

    A node is its own ancestor here, so ``lca(x, x) == x`` and
    ``lca(anc, desc) == anc``.  Computed by raising both codes with
    ``F`` until they meet — O(height difference) shifts.
    """
    if x == y:
        return x
    height: int = max(height_of(x), height_of(y))
    while f_ancestor(x, height) != f_ancestor(y, height):
        height += 1
    return f_ancestor(x, height)


def coding_space_slice(code: PBiCode, slice_shift: int) -> int:
    """Positional-histogram slice of a code (Section 6 statistics).

    The coding space ``[1, 2**H - 1]`` is divided into
    ``2**(H - slice_shift)`` equal slices; a code's slice index is its
    high bits.  Equivalently, the slice of a code is the ``alpha``
    coordinate-pair of its ancestor at height ``slice_shift`` — which is
    why ``F`` commutes with this projection (exploited by the
    selectivity estimator).
    """
    return code >> slice_shift


def doc_order_key(code: PBiCode) -> tuple[int, int]:
    """Sort key realising document (pre-) order on codes.

    Ascending region ``Start`` with ties broken by descending ``End``
    (equivalently descending height): on a leftmost chain ancestor and
    descendant share a ``Start``, and document order puts the ancestor
    first.  This is the order the merge-based join algorithms require.
    """
    height = height_of(code)
    return code - ((1 << height) - 1), -height


def parent_of(code: PBiCode, tree_height: int | None = None) -> PBiCode:
    """Code of the parent node inside the PBiTree.

    Raises ``ValueError`` when asked for the parent of the root (the root
    is detected from ``tree_height`` when given, otherwise a root can not
    be detected and the mathematical parent is returned).
    """
    height = height_of(code)
    if tree_height is not None and height == tree_height - 1:
        raise ValueError(f"code {code} is the root of a height-{tree_height} PBiTree")
    return f_ancestor(code, height + 1)


def left_child_of(code: PBiCode) -> PBiCode:
    """Code of the left child inside the PBiTree (height must be > 0)."""
    height = height_of(code)
    if height == 0:
        raise ValueError(f"leaf code {code} has no children")
    return PBiCode(code - (1 << (height - 1)))


def right_child_of(code: PBiCode) -> PBiCode:
    """Code of the right child inside the PBiTree (height must be > 0)."""
    height = height_of(code)
    if height == 0:
        raise ValueError(f"leaf code {code} has no children")
    return PBiCode(code + (1 << (height - 1)))


def root_code(tree_height: int) -> PBiCode:
    """Code of the root of a PBiTree of height ``tree_height``."""
    if tree_height < 1:
        raise ValueError("a PBiTree has height >= 1")
    return PBiCode(1 << (tree_height - 1))


def max_code(tree_height: int) -> PBiCode:
    """Largest code in the coding space of a height-``tree_height`` PBiTree."""
    return PBiCode((1 << tree_height) - 1)


def grown_code(code: PBiCode, delta: int) -> PBiCode:
    """Code of the same node after the PBiTree grows by ``delta`` levels.

    Growing ``H`` preserves every node's top-down ``(level, alpha)``
    coordinates, and ``G(alpha, l)`` scales by ``2**delta`` when ``H``
    grows by ``delta`` — so the new code is one left shift.  This is
    the per-record kernel of the streamed grow rewrite in
    :mod:`repro.storage.docstore`.
    """
    return PBiCode(code << delta)


def subtree_codes_at_height(code: PBiCode, height: int) -> range:
    """All descendant codes of ``code`` that sit at ``height``.

    Returns a ``range`` (codes at one height are an arithmetic
    progression with stride ``2**(height+1)``), so membership tests and
    iteration are O(1)/O(k).  ``height`` must be strictly below the
    node's own height.
    """
    own = height_of(code)
    if height >= own:
        raise ValueError(
            f"height {height} is not below the node's height {own}"
        )
    start, end = region_of(code)
    first = start + ((1 << height) - 1)
    return range(first, end + 1, 1 << (height + 1))
