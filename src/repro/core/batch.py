"""Vectorized code-algebra kernels and the batch-size switch.

Every join in the paper reduces to streaming codes off pages and
applying pure integer algebra — ``F(n, h)`` rollups, Lemma 3/4
region/prefix conversions, and height-from-trailing-zeros.  The scalar
helpers in :mod:`.pbitree` pay one Python function call per element;
in interpreted Python that dispatch dominates wall time.  The kernels
here apply the *same* identities to whole code arrays in single list
comprehensions, with per-height masks precomputed once per batch
instead of once per element:

* ``height(c)            = bit_length(c & -c) - 1``     (Property 2)
* ``F(c, h)              = (c & -(1 << (h+1))) | (1 << h)``  (Property 1)
* ``height(c) >= h      <=> c & ((1 << h) - 1) == 0``
* ``start(c) = c - (c & -c) + 1``, ``end(c) = c + (c & -c) - 1``  (Lemma 3)
* ``prefix(c)            = c // (c & -c)``              (Lemma 4)

The packed document-order key ``start << 6 | (63 - height)`` is
order-equivalent to the tuple ``(start, -height)`` because heights fit
in 6 bits (``MAX_CODE_BITS = 63`` bounds them at 62) and the mapping
``-h -> 63 - h`` is strictly increasing.

Exactness contract: every kernel is a drop-in for the scalar loop it
replaces — same results, in the same order.  The scalar path stays in
the join operators as a differential oracle, selected by setting the
batch size to 0 (:func:`set_batch_size`); tests drive both paths over
the same inputs and assert identical output *and* identical I/O
accounting (see docs/batched-execution.md).

This module is the only place outside :mod:`.pbitree` allowed to spell
the bit algebra: the ``code-domain`` checker confines ``<<``/``>>``/
``&`` on code-named values to ``repro/core``, so operators consume
these kernels by name.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, Sequence, cast

from .pbitree import Height, PBiCode, PrefixCode, RegionCode

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "get_batch_size",
    "set_batch_size",
    "batch_scope",
    "batching_enabled",
    "heights",
    "rollup",
    "rollup_pairs",
    "probe_keys",
    "starts",
    "ends",
    "grow_codes",
    "regions",
    "prefixes",
    "doc_order_keys",
    "sort_doc_order",
    "range_filter",
    "descendants_in",
    "ancestors_in",
    "count_matches",
    "region_probe",
    "build_height_tables",
    "height_probe",
    "height_class_probe",
]

#: Default element count per batch.  Chosen from the batch-size sweep in
#: ``benchmarks/bench_coding_micro.py``: per-element cost flattens out
#: between 256 and 1024, and 1024 covers a whole 1 KiB page of codes.
DEFAULT_BATCH_SIZE = 1024

EmitFn = Callable[[int, int], None]

_batch_default = DEFAULT_BATCH_SIZE

#: per-context override set by :func:`batch_scope`.  A ``ContextVar``
#: instead of a module global: one tenant's scope must not flip another
#: in-flight query's execution mode (threads and asyncio tasks each see
#: their own context), while the process-wide *default* set by the env
#: var / CLI / :func:`set_batch_size` is preserved for every context
#: that has no scope active.
_batch_var: ContextVar[Optional[int]] = ContextVar("repro_batch_size", default=None)


def _env_batch_size() -> Optional[int]:
    raw = os.environ.get("REPRO_BATCH_SIZE", "")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return max(0, value)


_env_override = _env_batch_size()
if _env_override is not None:
    _batch_default = _env_override


def get_batch_size() -> int:
    """Current batch size; 0 selects the scalar differential oracle."""
    override = _batch_var.get()
    return _batch_default if override is None else override


def set_batch_size(size: int) -> None:
    """Set the process-wide default batch size (0 disables batching).

    This is startup configuration (CLI flags, env parsing); code that
    needs a temporary or per-thread/per-task setting must use
    :func:`batch_scope`, which only affects the calling context.
    Worker processes under the ``spawn`` start method do not inherit
    this module state — parallel tasks carry the batch size as an
    explicit field instead (see :mod:`repro.parallel.tasks`).
    """
    if size < 0:
        raise ValueError(f"batch size must be >= 0, got {size}")
    global _batch_default
    _batch_default = size


@contextmanager
def batch_scope(size: int) -> Iterator[None]:
    """Pin the batch size for the calling context only.

    Context-local (``contextvars``): two threads can run in opposing
    scopes concurrently without seeing each other's setting.
    """
    if size < 0:
        raise ValueError(f"batch size must be >= 0, got {size}")
    token = _batch_var.set(size)
    try:
        yield
    finally:
        _batch_var.reset(token)


def batching_enabled() -> bool:
    return get_batch_size() > 0


# ---------------------------------------------------------------------------
# bulk conversions (one comprehension per batch, no per-element calls)
# ---------------------------------------------------------------------------
def heights(codes: Sequence[int]) -> list[Height]:
    """Bulk :func:`~repro.core.pbitree.height_of` (Property 2)."""
    return cast(
        "list[Height]", [(c & -c).bit_length() - 1 for c in codes]
    )


def rollup(codes: Sequence[int], height: int) -> list[PBiCode]:
    """Bulk ``F(c, height)`` with the masks precomputed once.

    Callers must guarantee ``height_of(c) <= height`` for every code
    (the F value of a deeper target is not an ancestor); use
    :func:`rollup_pairs` or :func:`probe_keys` when the batch mixes
    heights.
    """
    keep = -(1 << (height + 1))
    bit = 1 << height
    return cast("list[PBiCode]", [(c & keep) | bit for c in codes])


def rollup_pairs(
    codes: Sequence[int], height: int
) -> list[tuple[PBiCode, PBiCode]]:
    """Bulk ``(effective, original)`` pairs for the MHCJ rollup.

    ``effective`` is ``F(c, height)`` for codes strictly below the
    target height and the code itself otherwise — exactly the serial
    ``effective_height`` of Algorithm 4.  A code sits below ``height``
    iff its low ``height`` bits are not all zero.
    """
    keep = -(1 << (height + 1))
    bit = 1 << height
    low = (1 << height) - 1
    return cast(
        "list[tuple[PBiCode, PBiCode]]",
        [((c & keep) | bit, c) if c & low else (c, c) for c in codes],
    )


def probe_keys(codes: Sequence[int], height: int) -> list[int]:
    """Bulk SHCJ probe keys: ``F(c, height)``, or 0 for filtered codes.

    A descendant at height >= ``height`` cannot have an ancestor at
    ``height``; the scalar key function returns ``None`` for it.  Codes
    are positive, so 0 is a safe in-band "no key" sentinel that keeps
    the kernel a single comprehension.
    """
    keep = -(1 << (height + 1))
    bit = 1 << height
    low = (1 << height) - 1
    return [(c & keep) | bit if c & low else 0 for c in codes]


def starts(codes: Sequence[int]) -> list[RegionCode]:
    """Bulk region ``Start`` (Lemma 3)."""
    return cast("list[RegionCode]", [c - (c & -c) + 1 for c in codes])


def ends(codes: Sequence[int]) -> list[RegionCode]:
    """Bulk region ``End`` (Lemma 3)."""
    return cast("list[RegionCode]", [c + (c & -c) - 1 for c in codes])


def grow_codes(codes: Sequence[int], delta: int) -> list[PBiCode]:
    """Bulk :func:`~repro.core.pbitree.grown_code`: one page of records
    shifted for a tree-growth rewrite (``H`` grew by ``delta``)."""
    return cast("list[PBiCode]", [c << delta for c in codes])


def regions(
    codes: Sequence[int],
) -> list[tuple[RegionCode, RegionCode]]:
    """Bulk ``(Start, End)`` regions (Lemma 3), one tuple per code."""
    return cast(
        "list[tuple[RegionCode, RegionCode]]",
        [(c - b + 1, c + b - 1) for c in codes for b in (c & -c,)],
    )


def prefixes(codes: Sequence[int]) -> list[PrefixCode]:
    """Bulk prefix codes (Lemma 4): ``c >> height(c) == c // lowbit``."""
    return cast("list[PrefixCode]", [c // (c & -c) for c in codes])


def doc_order_keys(codes: Sequence[int]) -> list[int]:
    """Bulk packed document-order keys.

    ``start << 6 | (63 - height)`` sorts identically to the scalar
    ``doc_order_key`` tuple ``(start, -height)``: heights are bounded
    by 62 (``MAX_CODE_BITS``), so ``63 - height`` occupies 6 bits and
    is strictly increasing in ``-height``.
    """
    return [(c - b + 1) << 6 | (63 - (b.bit_length() - 1)) for c in codes for b in (c & -c,)]


def sort_doc_order(codes: Sequence[int]) -> list[PBiCode]:
    """Sort codes into document order via the packed key.

    The packed key is a bijection of the code, so equal keys mean equal
    codes and the sort is trivially stable on distinct elements.
    """
    decorated = sorted(
        (c - b + 1) << 70 | (63 - (b.bit_length() - 1)) << 64 | c
        for c in codes
        for b in (c & -c,)
    )
    low = (1 << 64) - 1
    return cast("list[PBiCode]", [k & low for k in decorated])


def range_filter(
    codes: Sequence[int], low: int, high: int
) -> list[PBiCode]:
    """Codes within ``[low, high]`` inclusive, in input order."""
    return cast(
        "list[PBiCode]", [c for c in codes if low <= c <= high]
    )


def descendants_in(anc: int, codes: Sequence[int]) -> list[PBiCode]:
    """Proper descendants of ``anc`` among ``codes``, in input order.

    Bulk Lemma 1: ``d`` is a proper descendant iff its height is below
    ``anc``'s (low bits of ``d`` not all zero under ``anc``'s height
    mask) and ``F(d, height(anc)) == anc``.
    """
    bit = anc & -anc
    low = bit - 1
    keep = ~(bit * 2 - 1)
    return cast(
        "list[PBiCode]",
        [d for d in codes if d & low and (d & keep) | bit == anc],
    )


def ancestors_in(desc: int, codes: Sequence[int]) -> list[PBiCode]:
    """Proper ancestors of ``desc`` among ``codes``, in input order.

    The dual of :func:`descendants_in` with the mask computed per
    candidate (each ancestor has its own height): ``a`` is a proper
    ancestor iff ``desc`` sits strictly below ``a``'s height and
    ``F(desc, height(a)) == a``.
    """
    return cast(
        "list[PBiCode]",
        [
            a
            for a in codes
            for b in (a & -a,)
            if desc & (b - 1) and (desc & ~(b * 2 - 1)) | b == a
        ],
    )


def count_matches(anc: int, codes: Sequence[int]) -> int:
    """Count of proper descendants of ``anc`` among ``codes``."""
    bit = anc & -anc
    low = bit - 1
    keep = ~(bit * 2 - 1)
    return sum(1 for d in codes if d & low and (d & keep) | bit == anc)


# ---------------------------------------------------------------------------
# join kernels (pure CPU; shared by the serial operators and the
# parallel task payloads in repro.parallel.tasks)
# ---------------------------------------------------------------------------
def region_probe(
    a_codes: Sequence[int],
    d_sorted: Sequence[int],
    emit: EmitFn,
    dedup_above_height: Optional[int] = None,
    seen_high: Optional[set[int]] = None,
) -> None:
    """Algorithm 6, D-fits branch, over one ancestor batch.

    ``d_sorted`` must be sorted ascending; each ancestor's descendants
    form a contiguous code range (Lemma 3) found with two binary
    searches.  ``dedup_above_height`` skips repeated replicated
    ancestors via the caller-owned ``seen_high`` set (shared across
    batches so the dedup window spans the whole stream, exactly like
    the serial loop).  Emission order equals the serial loop's:
    ancestors in input order, descendants ascending.
    """
    if dedup_above_height is None:
        for a in a_codes:
            b = a & -a
            lo = bisect_left(d_sorted, a - b + 1)
            hi = bisect_right(d_sorted, a + b - 1)
            for d in d_sorted[lo:hi]:
                if a != d:
                    emit(a, d)
        return
    if seen_high is None:
        seen_high = set()
    threshold = 1 << dedup_above_height
    for a in a_codes:
        b = a & -a
        if b > threshold:
            if a in seen_high:
                continue
            seen_high.add(a)
        lo = bisect_left(d_sorted, a - b + 1)
        hi = bisect_right(d_sorted, a + b - 1)
        for d in d_sorted[lo:hi]:
            if a != d:
                emit(a, d)


def build_height_tables(
    codes: Sequence[int], tables: dict[int, set[int]]
) -> None:
    """Fold one ancestor batch into per-height hash sets (Algorithm 6).

    The sets de-duplicate replicated ancestors by construction, exactly
    like the serial A-fits branch.
    """
    get = tables.get
    for c in codes:
        h = (c & -c).bit_length() - 1
        bucket = get(h)
        if bucket is None:
            tables[h] = {c}
        else:
            bucket.add(c)


def height_probe(
    by_height: dict[int, set[int]],
    order: Sequence[int],
    d_codes: Sequence[int],
    emit: EmitFn,
) -> None:
    """Algorithm 6, A-fits branch, over one descendant batch.

    ``order`` is the probe order of the heights (descending, as in the
    serial loop); probing stops at the descendant's own height.  The
    per-height ``F`` masks are precomputed once per batch.
    """
    masks = [(h, -(1 << (h + 1)), 1 << h) for h in order]
    for d in d_codes:
        d_bit = d & -d
        for h, keep, bit in masks:
            if bit <= d_bit:
                break
            anc = (d & keep) | bit
            if anc in by_height[h]:
                emit(anc, d)


def height_class_probe(
    table: dict[int, list[int]],
    height: int,
    d_codes: Sequence[int],
    emit: EmitFn,
) -> int:
    """One height class of MHCJ: probe + Lemma-1 verification.

    ``table`` maps an effective (possibly rolled) code at ``height`` to
    the original codes rolled into it.  A match through a rolled record
    is verified against the original; failures are counted and returned
    as false hits, exactly as the serial ``_join_height_class``.
    """
    keep = -(1 << (height + 1))
    bit = 1 << height
    low = (1 << height) - 1
    get = table.get
    false_hits = 0
    for d in d_codes:
        if not d & low:
            continue
        bucket = get((d & keep) | bit)
        if bucket is None:
            continue
        for original in bucket:
            if original == (d & keep) | bit:
                emit(original, d)
                continue
            o_bit = original & -original
            if d & (o_bit - 1) and (d & ~(o_bit * 2 - 1)) | o_bit == original:
                emit(original, d)
            else:
                false_hits += 1
    return false_hits
