"""Updates on PBiTree-encoded trees (Section 2.3.2).

The paper points out that the *virtual nodes* of the PBiTree — code
slots with no data-tree occupant — "may serve as placeholders and thus
be advantageous to update".  This module realises that claim:

* **insert**: a new child takes a free sibling slot on the level its
  siblings already occupy — an O(1) code assignment with no other code
  changing;
* **sibling-level overflow**: when all ``2**k`` slots under a parent
  are taken, the children move one level deeper (``k+1``) and only the
  parent's *subtree* is relabelled — a local operation, counted;
* **tree overflow**: when a subtree relabel would fall below the leaf
  level, the whole PBiTree grows by ``delta`` levels.  Because
  ``G(alpha, l) = (2*alpha + 1) * 2**(H - l - 1)``, growing ``H`` by
  ``delta`` simply multiplies *every* code by ``2**delta`` — a global
  relabel that is one shift per element and never changes relative
  order (the "durable numbering" property the related work seeks);
* **delete**: a subtree's codes return to the virtual-node pool.

All operations preserve the embedding contract (injective and
ancestor-preserving), which the test suite checks after random update
storms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..datatree.node import DataTree
from . import pbitree
from .binarize import placement_k
from .encoding import PBiTreeEncoding

__all__ = [
    "UpdatableEncoding",
    "UpdateStats",
    "CodeSpaceError",
    "ChangeEvent",
    "ChangeListener",
]


class CodeSpaceError(RuntimeError):
    """Raised when an insert cannot be encoded without growing the tree
    and growth was disallowed."""


@dataclass(frozen=True)
class ChangeEvent:
    """One code-level mutation, as seen by storage-layer subscribers.

    ``kind`` is one of:

    * ``"insert"`` — a new node received ``new_code`` (``old_code`` 0);
    * ``"relabel"`` — one *local relabel* moved a whole subtree:
      ``moves`` holds every ``(node, old_code, new_code)``.  Old codes
      inside one batch may collide with other entries' new codes, so a
      listener must free **all** old codes before assigning any new one;
    * ``"delete"`` — a node was tombstoned, freeing ``old_code``;
    * ``"grow"`` — the whole tree grew by ``delta`` levels: *every* code
      (the event carries no node) was shifted left by ``delta``.

    Events fire after the in-memory encoding has already mutated, so a
    listener reading ``tree.codes`` sees the post-change state.  The
    storage-backed update pipeline (:mod:`repro.storage.docstore`)
    turns these into an update log and in-place page patches.
    """

    kind: str
    node: int = -1
    old_code: int = 0
    new_code: int = 0
    delta: int = 0
    moves: tuple[tuple[int, int, int], ...] = ()


ChangeListener = Callable[[ChangeEvent], None]


class UpdateStats:
    """Relabelling work done by updates (for the update benchmarks)."""

    __slots__ = ("inserts", "deletes", "local_relabels", "relabelled_nodes",
                 "global_relabels", "tree_growths")

    def __init__(self) -> None:
        self.inserts = 0
        self.deletes = 0
        self.local_relabels = 0
        self.relabelled_nodes = 0
        self.global_relabels = 0
        self.tree_growths = 0

    def as_dict(self) -> dict[str, int]:
        """Plain mapping for the metrics registry / BENCH exports."""
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def relabelled_per_insert(self) -> float:
        """Amortised structural relabel cost (the update-bench headline)."""
        return self.relabelled_nodes / self.inserts if self.inserts else 0.0

    def __repr__(self) -> str:
        return (
            f"<UpdateStats inserts={self.inserts} deletes={self.deletes} "
            f"local_relabels={self.local_relabels} "
            f"relabelled={self.relabelled_nodes} "
            f"global_relabels={self.global_relabels}>"
        )


class UpdatableEncoding:
    """A PBiTree encoding that supports inserts and deletes.

    Wraps an encoded :class:`DataTree`.  Deleted nodes are tombstoned
    (``is_alive``); their codes become virtual again and can be reused
    by later inserts.
    """

    def __init__(self, encoding: PBiTreeEncoding, allow_growth: bool = True) -> None:
        self.tree = encoding.tree
        self.tree_height = encoding.tree_height
        self.allow_growth = allow_growth
        self.stats = UpdateStats()
        self._alive = [True] * len(self.tree)
        self._occupied: dict[int, int] = {
            self.tree.codes[node]: node for node in range(len(self.tree))
        }
        #: storage-layer subscribers notified of every code mutation
        self.listeners: list[ChangeListener] = []

    def _emit(self, event: ChangeEvent) -> None:
        for listener in self.listeners:
            listener(event)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_alive(self, node: int) -> bool:
        return self._alive[node]

    def node_of(self, code: int) -> Optional[int]:
        return self._occupied.get(code)

    def live_codes(self) -> list[int]:
        return [
            self.tree.codes[node]
            for node in range(len(self.tree))
            if self._alive[node]
        ]

    def level_of(self, node: int) -> int:
        return pbitree.level_of(self.tree.codes[node], self.tree_height)

    def _live_children(self, parent: int) -> list[int]:
        return [
            child for child in self.tree.children[parent] if self._alive[child]
        ]

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert_child(
        self, parent: int, tag: str, text: Optional[str] = None
    ) -> int:
        """Add a child element under ``parent`` and encode it.

        Fast path: a free virtual slot on the siblings' level.  Slow
        paths relabel locally (descend the sibling level) or grow the
        whole tree; both are transparent and counted in ``stats``.
        """
        if not self._alive[parent]:
            raise ValueError(f"parent {parent} is deleted")
        siblings = self._live_children(parent)
        parent_level = self.level_of(parent)
        if siblings:
            k = self.level_of(siblings[0]) - parent_level
        else:
            k = placement_k(1)

        # Encodability check BEFORE any mutation: if the insert would
        # force growth and growth is disallowed, fail atomically — the
        # data tree, _alive and _occupied are exactly as before.  The
        # growth amounts mirror the ones the mutation paths below
        # compute (the new node is a leaf, so it never deepens the
        # relabelled subtree).
        if parent_level + k > self.tree_height - 1:
            self._check_growth(parent_level + k - (self.tree_height - 1))
        elif self._free_slot(parent, parent_level + k) is None:
            overflow = (
                parent_level + (k + 1)
                + max((self._depth_below(c) for c in siblings), default=0)
                - (self.tree_height - 1)
            )
            if overflow > 0:
                self._check_growth(overflow)

        node = self.tree.add_child(parent, tag, text)
        self._alive.append(True)

        if parent_level + k > self.tree_height - 1:
            # leaf parent at the bottom of the PBiTree: grow first
            # (growth preserves every level, so parent_level still holds)
            self._grow_tree(parent_level + k - (self.tree_height - 1))

        slot = self._free_slot(parent, parent_level + k)
        if slot is not None:
            self._assign(node, slot)
            self._emit(ChangeEvent("insert", node=node, new_code=slot))
        else:
            # all 2**k sibling slots taken: push the children one level
            # deeper and relabel the parent's subtree (the new node gets
            # its code during the relabel)
            self._relabel_subtree_children(parent, k + 1)
        self.stats.inserts += 1
        return node

    def _free_slot(self, parent: int, child_level: int) -> Optional[int]:
        """Smallest unoccupied code on ``child_level`` under ``parent``."""
        if child_level > self.tree_height - 1:
            return None
        parent_code = self.tree.codes[parent]
        child_height = self.tree_height - child_level - 1
        for code in pbitree.subtree_codes_at_height(parent_code, child_height):
            if code not in self._occupied:
                return code
        return None

    def _assign(self, node: int, code: int) -> None:
        self.tree.codes[node] = code
        self._occupied[code] = node

    def _release(self, node: int) -> None:
        code = self.tree.codes[node]
        if self._occupied.get(code) == node:
            del self._occupied[code]

    # ------------------------------------------------------------------
    # relabelling
    # ------------------------------------------------------------------
    def _relabel_subtree_children(self, parent: int, k: int) -> None:
        """Move ``parent``'s children to ``k`` levels below and re-encode
        their subtrees (grows the whole tree first if they no longer fit)."""
        children = self._live_children(parent)
        deepest_child = max(
            (self._depth_below(child) for child in children), default=0
        )
        overflow = (
            self.level_of(parent) + k + deepest_child - (self.tree_height - 1)
        )
        if overflow > 0:
            self._grow_tree(overflow)

        parent_level = self.level_of(parent)
        parent_alpha = pbitree.alpha_of(self.tree.codes[parent])
        self.stats.local_relabels += 1
        moves: list[tuple[int, int, int]] = []
        fresh: list[tuple[int, int]] = []
        for index, child in enumerate(children):
            self._relabel_recursive(
                child, parent_level + k, (parent_alpha << k) + index,
                moves, fresh,
            )
        # one batched event per local relabel: listeners free every old
        # code before assigning any new one, so intra-batch collisions
        # (node A's new code == node B's not-yet-vacated old code) are
        # safe; fresh nodes follow, after the codes they may reuse are
        # released
        if moves:
            self._emit(ChangeEvent("relabel", moves=tuple(moves)))
        for node, code in fresh:
            self._emit(ChangeEvent("insert", node=node, new_code=code))

    def _relabel_recursive(
        self,
        node: int,
        level: int,
        alpha: int,
        moves: list[tuple[int, int, int]],
        fresh: list[tuple[int, int]],
    ) -> None:
        """Re-run BinarizeTree's placement for one subtree (iterative)."""
        stack = [(node, level, alpha)]
        while stack:
            current, cur_level, cur_alpha = stack.pop()
            old_code = self.tree.codes[current]
            self._release(current)
            self._assign(
                current, pbitree.g_code(cur_alpha, cur_level, self.tree_height)
            )
            new_code = self.tree.codes[current]
            if old_code:
                if new_code != old_code:
                    moves.append((current, old_code, new_code))
            else:
                # a freshly inserted node receives its first code here
                fresh.append((current, new_code))
            self.stats.relabelled_nodes += 1
            kids = self._live_children(current)
            if kids:
                k = placement_k(len(kids))
                for index, kid in enumerate(kids):
                    stack.append(
                        (kid, cur_level + k, (cur_alpha << k) + index)
                    )

    def _depth_below(self, node: int) -> int:
        """PBiTree levels the subtree below ``node`` needs (0 for a leaf)."""
        best = 0
        stack = [(node, 0)]
        while stack:
            current, depth = stack.pop()
            kids = self._live_children(current)
            if not kids:
                if depth > best:
                    best = depth
                continue
            k = placement_k(len(kids))
            for kid in kids:
                stack.append((kid, depth + k))
        return best

    def _grow_tree(self, delta: int) -> None:
        """Grow the PBiTree by ``delta`` levels: every code shifts left.

        ``G(alpha, l)`` scales by ``2**delta`` when ``H`` grows by
        ``delta``, so the global relabel is one shift per element and
        preserves every ancestor relationship and the document order.
        """
        self._check_growth(delta)
        self.tree_height += delta
        self.stats.tree_growths += 1
        self.stats.global_relabels += 1
        codes = self.tree.codes
        # rebuild the occupancy map from *live* nodes only — shifting a
        # tombstoned node's stale code must not resurrect it as
        # occupied, or codes freed by delete_subtree would leak forever
        self._occupied = {}
        for node in range(len(self.tree)):
            codes[node] <<= delta
            if self._alive[node]:
                self._occupied[codes[node]] = node
        self._emit(ChangeEvent("grow", delta=delta))

    def _check_growth(self, delta: int) -> None:
        """Raise :class:`CodeSpaceError` if growing by ``delta`` is not allowed."""
        if not self.allow_growth:
            raise CodeSpaceError(
                f"insert needs {delta} more levels and growth is disabled"
            )

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def delete_subtree(self, node: int) -> int:
        """Tombstone ``node`` and its descendants; frees their codes.

        Returns the number of elements removed.  Deleting the root is
        rejected (an empty document has no encoding).
        """
        if self.tree.parents[node] < 0:
            raise ValueError("cannot delete the root")
        if not self._alive[node]:
            return 0
        removed = 0
        stack = [node]
        while stack:
            current = stack.pop()
            if not self._alive[current]:
                continue
            self._alive[current] = False
            self._release(current)
            self._emit(ChangeEvent(
                "delete", node=current, old_code=self.tree.codes[current]
            ))
            removed += 1
            stack.extend(self.tree.children[current])
        self.stats.deletes += 1
        return removed

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check the embedding contract over the live nodes."""
        seen: dict[int, int] = {}
        for node in range(len(self.tree)):
            if not self._alive[node]:
                continue
            code = self.tree.codes[node]
            pbitree.validate_code(code, self.tree_height)
            if code in seen:
                raise ValueError(f"nodes {seen[code]} and {node} share {code}")
            seen[code] = node
        for node in range(len(self.tree)):
            if not self._alive[node]:
                continue
            parent = self.tree.parents[node]
            if parent < 0:
                continue
            if not self._alive[parent]:
                raise ValueError(f"live node {node} under deleted parent")
            if not pbitree.is_ancestor(
                self.tree.codes[parent], self.tree.codes[node]
            ):
                raise ValueError(
                    f"parent {parent} does not dominate child {node}"
                )
            # nothing else may sit between child and parent on the path
            child_code = self.tree.codes[node]
            parent_height = pbitree.height_of(self.tree.codes[parent])
            for height in range(
                pbitree.height_of(child_code) + 1, parent_height
            ):
                between = pbitree.f_ancestor(child_code, height)
                if between in seen:
                    raise ValueError(
                        f"node {seen[between]} intrudes between {node} "
                        f"and its parent {parent}"
                    )

    def __repr__(self) -> str:
        live = sum(self._alive)
        return (
            f"<UpdatableEncoding H={self.tree_height} live={live} "
            f"stats={self.stats!r}>"
        )
