"""Encoding metadata: the result of embedding a data tree in a PBiTree.

A :class:`PBiTreeEncoding` ties together the encoded :class:`DataTree`
and the height ``H`` of the enclosing PBiTree, and offers decode
facilities (code -> node) plus the structural validation used in tests.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..datatree.node import DataTree
from . import pbitree
from .pbitree import Height, PBiCode, PrefixCode, RegionCode

__all__ = [
    "PBiTreeEncoding",
    "EncodingError",
    "PBiCode",
    "RegionCode",
    "PrefixCode",
    "Height",
]


class EncodingError(ValueError):
    """Raised when an embedding violates the injective/ancestor-preserving contract."""


class PBiTreeEncoding:
    """An embedding of a :class:`DataTree` into a PBiTree of height ``H``.

    The embedding function ``h`` of Section 2.2 is realised by
    ``tree.codes``; this class adds the reverse direction and documents
    the coding space.
    """

    def __init__(self, tree_height: int, tree: DataTree) -> None:
        self.tree_height = tree_height
        self.tree = tree
        self._code_to_node: Optional[dict[PBiCode, int]] = None

    # ------------------------------------------------------------------
    @property
    def coding_space(self) -> tuple[PBiCode, PBiCode]:
        """Inclusive code range ``[1, 2**H - 1]`` (Section 2.3.3)."""
        return PBiCode(1), pbitree.max_code(self.tree_height)

    @property
    def bits_per_code(self) -> int:
        """Bits needed to store one code: ``H``."""
        return self.tree_height

    def codes(self) -> Iterator[PBiCode]:
        """All assigned codes, in node-id order."""
        return iter(self.tree.codes)

    # ------------------------------------------------------------------
    def node_of(self, code: PBiCode) -> int:
        """Node id carrying ``code`` (builds a reverse map on first use).

        Raises ``KeyError`` for virtual nodes — codes in the coding
        space with no corresponding data-tree node.
        """
        if self._code_to_node is None:
            self._code_to_node = {
                code: node for node, code in enumerate(self.tree.codes)
            }
        return self._code_to_node[code]

    def is_virtual(self, code: PBiCode) -> bool:
        """True if ``code`` is valid in the coding space but unoccupied."""
        pbitree.validate_code(code, self.tree_height)
        if self._code_to_node is None:
            self.node_of(self.tree.codes[self.tree.root])  # build map
        assert self._code_to_node is not None
        return code not in self._code_to_node

    def level_of_node(self, node_id: int) -> int:
        """PBiTree level of a data-tree node."""
        return pbitree.level_of(self.tree.codes[node_id], self.tree_height)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the two conditions of the embedding function ``h``.

        1. injectivity: distinct nodes get distinct codes;
        2. order-embedding: ``h(u)`` is an ancestor of ``h(v)`` in the
           PBiTree iff ``u`` is an ancestor of ``v`` in the data tree.

        Condition 2 is verified in O(n) by checking, for every non-root
        node, that the code of its *parent* is the nearest encoded
        proper ancestor of its own code — which, together with
        injectivity, implies the full iff.
        """
        tree = self.tree
        seen: dict[int, int] = {}
        for node, code in enumerate(tree.codes):
            pbitree.validate_code(code, self.tree_height)
            if code in seen:
                raise EncodingError(
                    f"nodes {seen[code]} and {node} share code {code}"
                )
            seen[code] = node
        for node, parent in enumerate(tree.parents):
            if parent < 0:
                continue
            if not pbitree.is_ancestor(tree.codes[parent], tree.codes[node]):
                raise EncodingError(
                    f"parent {parent} (code {tree.codes[parent]}) does not "
                    f"dominate child {node} (code {tree.codes[node]})"
                )
            # No *other* encoded node may sit strictly between parent and
            # child on the PBiTree path, otherwise "ancestor in PBiTree"
            # would not imply "ancestor in data tree".
            parent_height = pbitree.height_of(tree.codes[parent])
            child_code = tree.codes[node]
            for height in range(pbitree.height_of(child_code) + 1, parent_height):
                between = pbitree.f_ancestor(child_code, height)
                if between in seen:
                    raise EncodingError(
                        f"node {seen[between]} (code {between}) sits between "
                        f"child {node} and its parent {parent} in the PBiTree"
                    )

    def __repr__(self) -> str:
        return (
            f"<PBiTreeEncoding H={self.tree_height} nodes={len(self.tree)} "
            f"space=[1, {pbitree.max_code(self.tree_height)}]>"
        )
