"""Pluggable containment codecs over one PBiCode domain.

The join algorithms, the paged storage engine and the indexes all
consume plain :data:`~repro.core.pbitree.PBiCode` integers — nothing
outside ``core/`` knows how a document was *encoded*.  This module
makes that boundary explicit: a :class:`ContainmentCodec` turns a
:class:`~repro.datatree.node.DataTree` into a *mutable encoding* (the
:class:`MutableEncoding` protocol), and every encoding projects its
native labels into the PBiCode domain so the rest of the system runs
unchanged on any backend.

Two backends ship:

* :class:`PBiTreeCodec` — the paper's own scheme: ``BinarizeTree``
  placement plus the §2.3.2 virtual-node update rules
  (:class:`~repro.core.update.UpdatableEncoding`).  Inserts are O(1)
  when a virtual sibling slot is free, but a full sibling level forces
  a *local relabel* of the parent's subtree.

* :class:`NestedIntervalCodec` — Tropashko's nested intervals with
  continued fractions, realised over binary materialised paths (the
  Stern-Brocot tree and the binary path tree are isomorphic: each
  mediant descent step is one path bit).  A child with 0-based sibling
  ordinal ``o`` appends the bits ``1``\\ *×o* ``0`` to its parent's
  path; the unary termination makes sibling segments prefix-free, so
  *data-tree ancestor ⟺ path prefix*.  New children always take a
  fresh ordinal, therefore **an insert never relabels any existing
  node** — the property the update benchmarks contrast with the
  PBiTree codec.  The only global event is projection growth, a
  one-shift-per-code rewrite exactly like PBiTree tree growth.

Projection (Lemma 4 read backwards): a path of length ``L`` with bits
``alpha`` is the node at top-down coordinates ``(level=L, alpha)`` of a
PBiTree of height ``H``, i.e. code ``G(alpha, L, H)``.  The projection
is exact: a mid-segment path prefix always ends in a ``1`` bit and no
node's path does (every non-root path ends in the ``0`` terminator), so
the PBiTree-ancestor relation among projected codes coincides with the
data-tree ancestor relation — every join algorithm is correct on
either backend without change.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Protocol

from ..datatree.node import DataTree
from . import pbitree
from .binarize import binarize
from .update import (
    ChangeEvent,
    ChangeListener,
    CodeSpaceError,
    UpdatableEncoding,
    UpdateStats,
)

__all__ = [
    "MutableEncoding",
    "ContainmentCodec",
    "PBiTreeCodec",
    "NestedIntervalCodec",
    "NestedIntervalEncoding",
    "register_codec",
    "available_codecs",
    "get_codec",
]


class MutableEncoding(Protocol):
    """What the database and document store need from an encoding.

    Satisfied structurally by :class:`UpdatableEncoding` and
    :class:`NestedIntervalEncoding`; ``tree.codes`` always holds the
    PBiCode-domain projection, and every mutation is announced to
    ``listeners`` as :class:`~repro.core.update.ChangeEvent`\\ s.
    """

    tree: DataTree
    tree_height: int
    allow_growth: bool
    stats: UpdateStats
    listeners: list[ChangeListener]

    def insert_child(
        self, parent: int, tag: str, text: Optional[str] = None
    ) -> int: ...

    def delete_subtree(self, node: int) -> int: ...

    def is_alive(self, node: int) -> bool: ...

    def node_of(self, code: int) -> Optional[int]: ...

    def live_codes(self) -> list[int]: ...

    def validate(self) -> None: ...


class ContainmentCodec(ABC):
    """Factory turning a data tree into a :class:`MutableEncoding`."""

    #: registry key, CLI value and BENCH label of this backend
    name: str = "abstract"

    @abstractmethod
    def encode(
        self,
        tree: DataTree,
        *,
        min_height: int = 1,
        allow_growth: bool = True,
    ) -> MutableEncoding:
        """Encode ``tree`` in place (fills ``tree.codes``)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PBiTreeCodec(ContainmentCodec):
    """The paper's BinarizeTree placement + virtual-node updates."""

    name = "pbitree"

    def encode(
        self,
        tree: DataTree,
        *,
        min_height: int = 1,
        allow_growth: bool = True,
    ) -> MutableEncoding:
        encoding = binarize(tree, min_height=min_height)
        return UpdatableEncoding(encoding, allow_growth=allow_growth)


class NestedIntervalEncoding:
    """Tropashko nested intervals over binary materialised paths.

    Native label of a node: its root-to-node path stored as the
    integer ``(1 << len) | bits`` (a leading sentinel bit keeps
    zero-length and zero-valued paths distinct; the root is ``1``).
    ``tree.codes`` holds the Lemma-4 projection of the paths into the
    PBiCode domain of a height-``tree_height`` PBiTree; paths never
    change once assigned, so the projection of an existing node only
    moves when ``tree_height`` itself grows (one shift per code).
    """

    def __init__(
        self,
        tree: DataTree,
        *,
        min_height: int = 1,
        allow_growth: bool = True,
    ) -> None:
        self.tree = tree
        self.allow_growth = allow_growth
        self.stats = UpdateStats()
        #: storage-layer subscribers notified of every code mutation
        self.listeners: list[ChangeListener] = []
        size = len(tree)
        self._alive = [True] * size
        self._paths = [0] * size
        self._next_ordinal = [0] * size
        self._paths[tree.root] = 1
        deepest = 0
        for node in tree.iter_preorder():
            kids = tree.children[node]
            self._next_ordinal[node] = len(kids)
            for ordinal, child in enumerate(kids):
                path = _extend_path(self._paths[node], ordinal)
                self._paths[child] = path
                length = path.bit_length() - 1
                if length > deepest:
                    deepest = length
        self.tree_height = max(min_height, deepest + 1)
        self._occupied: dict[int, int] = {}
        for node in range(size):
            code = self._project(self._paths[node])
            tree.codes[node] = code
            self._occupied[code] = node

    def _emit(self, event: ChangeEvent) -> None:
        for listener in self.listeners:
            listener(event)

    def _project(self, path: int) -> int:
        level = path.bit_length() - 1
        return pbitree.g_code(path - (1 << level), level, self.tree_height)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_alive(self, node: int) -> bool:
        return self._alive[node]

    def node_of(self, code: int) -> Optional[int]:
        return self._occupied.get(code)

    def path_of(self, node: int) -> int:
        """Native sentinel-form path label (stable across growth)."""
        return self._paths[node]

    def live_codes(self) -> list[int]:
        return [
            self.tree.codes[node]
            for node in range(len(self.tree))
            if self._alive[node]
        ]

    def level_of(self, node: int) -> int:
        return pbitree.level_of(self.tree.codes[node], self.tree_height)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert_child(
        self, parent: int, tag: str, text: Optional[str] = None
    ) -> int:
        """Append a child; never relabels an existing node.

        The child takes the next free sibling ordinal (ordinals are
        never reused, so no existing path can collide).  If its path
        outgrows the current projection height the projection grows
        first — a global one-shift-per-code event, but *not* a
        structural relabel: every native path is untouched.
        """
        if not self._alive[parent]:
            raise ValueError(f"parent {parent} is deleted")
        ordinal = self._next_ordinal[parent]
        path = _extend_path(self._paths[parent], ordinal)
        level = path.bit_length() - 1
        delta = level - (self.tree_height - 1)
        if delta > 0 and not self.allow_growth:
            # atomic failure: nothing has been mutated yet
            raise CodeSpaceError(
                f"insert needs {delta} more levels and growth is disabled"
            )
        node = self.tree.add_child(parent, tag, text)
        self._alive.append(True)
        self._paths.append(path)
        self._next_ordinal.append(0)
        self._next_ordinal[parent] = ordinal + 1
        if delta > 0:
            self._grow(delta)
        code = self._project(path)
        self.tree.codes[node] = code
        self._occupied[code] = node
        self.stats.inserts += 1
        self._emit(ChangeEvent("insert", node=node, new_code=code))
        return node

    def _grow(self, delta: int) -> None:
        self.tree_height += delta
        self.stats.tree_growths += 1
        self.stats.global_relabels += 1
        codes = self.tree.codes
        self._occupied = {}
        for node in range(len(self.tree)):
            codes[node] = pbitree.grown_code(
                pbitree.PBiCode(codes[node]), delta
            )
            if self._alive[node]:
                self._occupied[codes[node]] = node
        self._emit(ChangeEvent("grow", delta=delta))

    def delete_subtree(self, node: int) -> int:
        """Tombstone ``node`` and its descendants (the root is kept)."""
        if self.tree.parents[node] < 0:
            raise ValueError("cannot delete the root")
        if not self._alive[node]:
            return 0
        removed = 0
        stack = [node]
        while stack:
            current = stack.pop()
            if not self._alive[current]:
                continue
            self._alive[current] = False
            code = self.tree.codes[current]
            if self._occupied.get(code) == current:
                del self._occupied[code]
            self._emit(ChangeEvent("delete", node=current, old_code=code))
            removed += 1
            stack.extend(self.tree.children[current])
        self.stats.deletes += 1
        return removed

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check paths, the projection and the embedding contract.

        Path prefix-freeness makes a between-node intrusion (a live
        code strictly between parent and child on the PBiTree path)
        structurally impossible — a mid-segment prefix ends in a ``1``
        bit and no node's path does — so unlike
        :meth:`UpdatableEncoding.validate` no intrusion scan is needed.
        """
        seen: dict[int, int] = {}
        for node in range(len(self.tree)):
            if not self._alive[node]:
                continue
            path = self._paths[node]
            code = self.tree.codes[node]
            if code != self._project(path):
                raise ValueError(
                    f"node {node}: code {code} is not the projection of "
                    f"path {path:b}"
                )
            pbitree.validate_code(code, self.tree_height)
            if code in seen:
                raise ValueError(f"nodes {seen[code]} and {node} share {code}")
            seen[code] = node
            parent = self.tree.parents[node]
            if parent < 0:
                continue
            if not self._alive[parent]:
                raise ValueError(f"live node {node} under deleted parent")
            parent_path = self._paths[parent]
            shift = path.bit_length() - parent_path.bit_length()
            if shift <= 0 or path >> shift != parent_path:
                raise ValueError(
                    f"parent path {parent_path:b} is not a prefix of "
                    f"{node}'s path {path:b}"
                )
            if not pbitree.is_ancestor(
                pbitree.PBiCode(self.tree.codes[parent]),
                pbitree.PBiCode(code),
            ):
                raise ValueError(
                    f"projection broke ancestry of {parent} over {node}"
                )

    def __repr__(self) -> str:
        live = sum(self._alive)
        return (
            f"<NestedIntervalEncoding H={self.tree_height} live={live} "
            f"stats={self.stats!r}>"
        )


def _extend_path(path: int, ordinal: int) -> int:
    """Append the sibling segment ``1``*ordinal* ``0`` to a path."""
    return (path << (ordinal + 1)) | (((1 << ordinal) - 1) << 1)


class NestedIntervalCodec(ContainmentCodec):
    """Nested intervals with continued fractions (Tropashko)."""

    name = "nested-intervals"

    def encode(
        self,
        tree: DataTree,
        *,
        min_height: int = 1,
        allow_growth: bool = True,
    ) -> MutableEncoding:
        return NestedIntervalEncoding(
            tree, min_height=min_height, allow_growth=allow_growth
        )


_CODECS: dict[str, ContainmentCodec] = {}


def register_codec(codec: ContainmentCodec) -> ContainmentCodec:
    """Add a codec to the registry (keyed on ``codec.name``)."""
    _CODECS[codec.name] = codec
    return codec


def available_codecs() -> list[str]:
    """Registered codec names, sorted (CLI choices, BENCH axes)."""
    return sorted(_CODECS)


def get_codec(name: str) -> ContainmentCodec:
    """Look up a codec by name; raises ``KeyError`` with the choices."""
    try:
        return _CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None


register_codec(PBiTreeCodec())
register_codec(NestedIntervalCodec())
