"""PBiTree coding core: the paper's primary contribution."""

from . import pbitree
from .binarize import binarize, levels_for_tree, placement_k
from .encoding import EncodingError, PBiTreeEncoding
from .pbitree import Height, PBiCode, PrefixCode, RegionCode
from .update import CodeSpaceError, UpdatableEncoding, UpdateStats

__all__ = [
    "pbitree",
    "PBiCode",
    "RegionCode",
    "PrefixCode",
    "Height",
    "binarize",
    "levels_for_tree",
    "placement_k",
    "PBiTreeEncoding",
    "EncodingError",
    "UpdatableEncoding",
    "UpdateStats",
    "CodeSpaceError",
]
