"""PBiTree coding core: the paper's primary contribution."""

from . import pbitree
from .binarize import binarize, levels_for_tree, placement_k
from .codec import (
    ContainmentCodec,
    MutableEncoding,
    NestedIntervalCodec,
    NestedIntervalEncoding,
    PBiTreeCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from .encoding import EncodingError, PBiTreeEncoding
from .pbitree import Height, PBiCode, PrefixCode, RegionCode
from .update import (
    ChangeEvent,
    ChangeListener,
    CodeSpaceError,
    UpdatableEncoding,
    UpdateStats,
)

__all__ = [
    "pbitree",
    "PBiCode",
    "RegionCode",
    "PrefixCode",
    "Height",
    "binarize",
    "levels_for_tree",
    "placement_k",
    "PBiTreeEncoding",
    "EncodingError",
    "UpdatableEncoding",
    "UpdateStats",
    "CodeSpaceError",
    "ChangeEvent",
    "ChangeListener",
    "ContainmentCodec",
    "MutableEncoding",
    "PBiTreeCodec",
    "NestedIntervalCodec",
    "NestedIntervalEncoding",
    "register_codec",
    "available_codecs",
    "get_codec",
]
