"""Scale-out sharded storage and shard-parallel containment joins.

The paper's VPJ (vertical partitioning join, §5.3) partitions the
coding space into subtrees rooted at level ``l`` and replicates
ancestors across the partitions they span.  This package promotes
that scatter rule from one join's in-memory phase to a *storage
layout*: :class:`~repro.shard.corpus.ShardedCorpus` persists each
element set as per-slot heap files spread over per-shard disks and
buffer pools, and :class:`~repro.shard.executor.ShardedJoinExecutor`
runs any existing join algorithm slot-by-slot through the
:mod:`repro.parallel` worker pool, merging the per-slot
:class:`~repro.join.base.JoinReport`s deterministically.

The merged accounting is *shard-count-invariant*: the unit of work is
the level-``l`` slot, whose population depends only on the tree
height, the partitioning level and the data — never on how slots are
grouped onto shards or how many workers run them.  ``shards=1`` vs
``shards=N`` is therefore a differential oracle, exactly like
``workers=`` today.
"""

from .corpus import SHARDMAP_FORMAT, ShardedCorpus, ShardMap, default_shard_level
from .executor import ShardedJoinExecutor, SlotInputs

__all__ = [
    "SHARDMAP_FORMAT",
    "ShardMap",
    "ShardedCorpus",
    "ShardedJoinExecutor",
    "SlotInputs",
    "default_shard_level",
]
